"""Execution counters collected by the local MapReduce engine.

Counters mirror the dataflow statistics Hadoop exposes and Starfish profiles:
records and bytes entering/leaving the map phase, spilled to local disk,
shuffled across the network, entering/leaving the reduce phase, plus
per-operator record counts used to derive selectivities for profile
annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class OperatorCounters:
    """Record counts observed for one operator (function) during execution."""

    records_in: int = 0
    records_out: int = 0

    @property
    def selectivity(self) -> float:
        """Output records per input record (1.0 when nothing was observed)."""
        if self.records_in <= 0:
            return 1.0
        return self.records_out / self.records_in


@dataclass
class ExecutionCounters:
    """Aggregate dataflow statistics of one job execution."""

    map_input_records: int = 0
    map_input_bytes: float = 0.0
    map_output_records: int = 0
    map_output_bytes: float = 0.0
    combine_input_records: int = 0
    combine_output_records: int = 0
    spilled_records: int = 0
    spilled_bytes: float = 0.0
    shuffle_bytes: float = 0.0
    reduce_input_groups: int = 0
    reduce_input_records: int = 0
    reduce_output_records: int = 0
    reduce_output_bytes: float = 0.0
    output_records: int = 0
    output_bytes: float = 0.0
    num_map_tasks: int = 0
    num_reduce_tasks: int = 0
    operators: Dict[str, OperatorCounters] = field(default_factory=dict)
    #: distinct shuffle-key counts per field tuple, e.g. {("O","Z"): 812}
    key_cardinalities: Dict[tuple, int] = field(default_factory=dict)

    def operator(self, name: str) -> OperatorCounters:
        """The (auto-created) counters for a named operator."""
        if name not in self.operators:
            self.operators[name] = OperatorCounters()
        return self.operators[name]

    @property
    def map_selectivity(self) -> float:
        """Map output records per map input record."""
        if self.map_input_records <= 0:
            return 1.0
        return self.map_output_records / self.map_input_records

    @property
    def reduce_selectivity(self) -> float:
        """Reduce output records per reduce input record."""
        if self.reduce_input_records <= 0:
            return 1.0
        return self.reduce_output_records / self.reduce_input_records

    @property
    def bytes_per_map_output_record(self) -> float:
        """Average serialized size of a map output record."""
        if self.map_output_records <= 0:
            return 0.0
        return self.map_output_bytes / self.map_output_records

    @property
    def bytes_per_output_record(self) -> float:
        """Average serialized size of a final output record."""
        if self.output_records <= 0:
            return 0.0
        return self.output_bytes / self.output_records

    def merge(self, other: "ExecutionCounters") -> None:
        """Accumulate another job's counters into this one (workflow totals)."""
        self.map_input_records += other.map_input_records
        self.map_input_bytes += other.map_input_bytes
        self.map_output_records += other.map_output_records
        self.map_output_bytes += other.map_output_bytes
        self.combine_input_records += other.combine_input_records
        self.combine_output_records += other.combine_output_records
        self.spilled_records += other.spilled_records
        self.spilled_bytes += other.spilled_bytes
        self.shuffle_bytes += other.shuffle_bytes
        self.reduce_input_groups += other.reduce_input_groups
        self.reduce_input_records += other.reduce_input_records
        self.reduce_output_records += other.reduce_output_records
        self.reduce_output_bytes += other.reduce_output_bytes
        self.output_records += other.output_records
        self.output_bytes += other.output_bytes
        self.num_map_tasks += other.num_map_tasks
        self.num_reduce_tasks += other.num_reduce_tasks
        for name, op_counters in other.operators.items():
            mine = self.operator(name)
            mine.records_in += op_counters.records_in
            mine.records_out += op_counters.records_out
        for fields, count in other.key_cardinalities.items():
            self.key_cardinalities[fields] = max(self.key_cardinalities.get(fields, 0), count)

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view of the aggregate counters (no per-operator data)."""
        return {
            "map_input_records": self.map_input_records,
            "map_input_bytes": self.map_input_bytes,
            "map_output_records": self.map_output_records,
            "map_output_bytes": self.map_output_bytes,
            "spilled_bytes": self.spilled_bytes,
            "shuffle_bytes": self.shuffle_bytes,
            "reduce_input_groups": self.reduce_input_groups,
            "reduce_input_records": self.reduce_input_records,
            "reduce_output_records": self.reduce_output_records,
            "output_records": self.output_records,
            "output_bytes": self.output_bytes,
            "num_map_tasks": self.num_map_tasks,
            "num_reduce_tasks": self.num_reduce_tasks,
        }
