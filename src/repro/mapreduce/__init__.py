"""Local MapReduce execution engine.

This package is the substrate standing in for Hadoop: it really executes
MapReduce programs (map, combine, reduce, partition functions) over in-memory
datasets, including the pipelined and tagged "packed" jobs that Stubby's
vertical and horizontal packing transformations produce.  Execution yields
:class:`~repro.mapreduce.counters.ExecutionCounters` which feed both the
profiler (to build profile annotations) and the cluster cost simulator (to
derive "actual" runtimes for the experiments).
"""

from repro.mapreduce.config import JobConfig, ConfigurationSpace
from repro.mapreduce.counters import ExecutionCounters, OperatorCounters
from repro.mapreduce.engine import JobExecutionResult, LocalEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import PartitionFunction
from repro.mapreduce.pipeline import Operator, Pipeline, map_operator, reduce_operator

__all__ = [
    "JobConfig",
    "ConfigurationSpace",
    "ExecutionCounters",
    "OperatorCounters",
    "JobExecutionResult",
    "LocalEngine",
    "MapReduceJob",
    "PartitionFunction",
    "Operator",
    "Pipeline",
    "map_operator",
    "reduce_operator",
]
