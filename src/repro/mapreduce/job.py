"""The executable MapReduce job: pipelines + partition function + configuration.

A :class:`MapReduceJob` corresponds to the paper's job descriptor
``J = <p, c, a>`` minus the annotations ``a``, which live on the workflow
vertex (see :mod:`repro.workflow.annotations`).  The program ``p`` is the set
of tagged pipelines plus the partition function; ``c`` is the
:class:`~repro.mapreduce.config.JobConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError
from repro.mapreduce.config import JobConfig
from repro.mapreduce.partitioner import PartitionFunction
from repro.mapreduce.pipeline import Operator, Pipeline, map_operator, reduce_operator


@dataclass
class MapReduceJob:
    """An executable (possibly packed) MapReduce job."""

    name: str
    pipelines: List[Pipeline]
    partitioner: Optional[PartitionFunction] = None
    config: JobConfig = field(default_factory=JobConfig)

    def __post_init__(self) -> None:
        if not self.pipelines:
            raise ExecutionError(f"job {self.name!r} has no pipelines")
        tags = [p.tag for p in self.pipelines]
        if len(tags) != len(set(tags)):
            raise ExecutionError(f"job {self.name!r} has duplicate pipeline tags")
        if self.is_map_only and not self.config.is_map_only:
            self.config = self.config.replace(num_reduce_tasks=0)
        if not self.is_map_only and self.config.is_map_only:
            self.config = self.config.replace(num_reduce_tasks=1)

    # ------------------------------------------------------------ properties
    @property
    def is_map_only(self) -> bool:
        """True when no pipeline needs a reduce phase."""
        return all(p.is_map_only for p in self.pipelines)

    @property
    def input_datasets(self) -> Tuple[str, ...]:
        """All input dataset names read by any pipeline, in first-seen order."""
        names: List[str] = []
        for pipeline in self.pipelines:
            for dataset in pipeline.input_datasets:
                if dataset not in names:
                    names.append(dataset)
        return tuple(names)

    @property
    def output_datasets(self) -> Tuple[str, ...]:
        """All output dataset names, in pipeline order."""
        names: List[str] = []
        for pipeline in self.pipelines:
            if pipeline.output_dataset not in names:
                names.append(pipeline.output_dataset)
        return tuple(names)

    @property
    def has_combiner(self) -> bool:
        """True when at least one pipeline exposes a combine function."""
        return any(p.map_side_combiner is not None for p in self.pipelines)

    @property
    def effective_partitioner(self) -> PartitionFunction:
        """The partition function actually used at execution time.

        Defaults to hash partitioning on the (union of) shuffle group fields
        when none was set explicitly — MapReduce's default behaviour.
        """
        if self.partitioner is not None:
            return self.partitioner
        group_fields: List[str] = []
        for pipeline in self.pipelines:
            for field_name in pipeline.shuffle_group_fields:
                if field_name not in group_fields:
                    group_fields.append(field_name)
        return PartitionFunction.default_hash(group_fields)

    def pipeline_by_tag(self, tag: str) -> Pipeline:
        """Fetch a pipeline by its tag."""
        for pipeline in self.pipelines:
            if pipeline.tag == tag:
                return pipeline
        raise ExecutionError(f"job {self.name!r} has no pipeline tagged {tag!r}")

    # ------------------------------------------------------------- mutation
    def with_config(self, config: JobConfig) -> "MapReduceJob":
        """Copy of this job with a different configuration.

        The pipeline *objects* are shared with the source job (fresh list,
        same pipelines): configurations live on the job, so a config-only
        derivation needs no pipeline copies — the allocation that used to
        dominate the RRS sampling loop.  Nothing mutates pipelines in place
        except the partition-function transformation, which goes through the
        workflow CoW layer (:meth:`repro.workflow.graph.Workflow.mutate_job`)
        and receives privately copied pipelines first.
        """
        return MapReduceJob(
            name=self.name,
            pipelines=list(self.pipelines),
            partitioner=self.partitioner,
            config=config,
        )

    def with_partitioner(self, partitioner: PartitionFunction) -> "MapReduceJob":
        """Copy of this job with a different partition function.

        Shares pipeline objects with the source, like :meth:`with_config`.
        """
        return MapReduceJob(
            name=self.name,
            pipelines=list(self.pipelines),
            partitioner=partitioner,
            config=self.config,
        )

    def copy(self, name: Optional[str] = None) -> "MapReduceJob":
        """Deep-enough copy of the job (operators themselves are immutable)."""
        return MapReduceJob(
            name=name or self.name,
            pipelines=[p.copy() for p in self.pipelines],
            partitioner=self.partitioner,
            config=self.config,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shape = "map-only" if self.is_map_only else f"{self.config.num_reduce_tasks} reducers"
        return f"MapReduceJob(name={self.name!r}, pipelines={len(self.pipelines)}, {shape})"


def simple_job(
    name: str,
    input_dataset: str,
    output_dataset: str,
    map_fn,
    reduce_fn=None,
    group_fields: Sequence[str] = (),
    combiner=None,
    map_cpu_cost: float = 1.0,
    reduce_cpu_cost: float = 1.0,
    config: Optional[JobConfig] = None,
    map_name: Optional[str] = None,
    reduce_name: Optional[str] = None,
) -> MapReduceJob:
    """Build a classic single-pipeline MapReduce job.

    This is the "program-based interface": the user provides plain map and
    reduce callables, exactly as they would write Hadoop jobs by hand.
    """
    map_ops: List[Operator] = [
        map_operator(map_name or f"{name}.map", map_fn, cpu_cost_per_record=map_cpu_cost)
    ]
    reduce_ops: List[Operator] = []
    if reduce_fn is not None:
        if not group_fields:
            raise ExecutionError(f"job {name!r}: reduce function requires group_fields")
        reduce_ops.append(
            reduce_operator(
                reduce_name or f"{name}.reduce",
                reduce_fn,
                group_fields=group_fields,
                cpu_cost_per_record=reduce_cpu_cost,
                combiner=combiner,
            )
        )
    pipeline = Pipeline(
        tag=name,
        input_datasets=(input_dataset,),
        map_ops=map_ops,
        reduce_ops=reduce_ops,
        output_dataset=output_dataset,
    )
    job_config = config or JobConfig(num_reduce_tasks=0 if reduce_fn is None else 1)
    return MapReduceJob(name=name, pipelines=[pipeline], config=job_config)
