"""The local MapReduce execution engine.

:class:`LocalEngine` executes a :class:`~repro.mapreduce.job.MapReduceJob`
against datasets stored in an :class:`~repro.dfs.filesystem.InMemoryFileSystem`,
faithfully following the MapReduce execution model:

1. the input datasets are divided into map splits (one split per stored
   partition, in order, when the job carries the chaining constraint from an
   intra-job vertical packing);
2. each map task streams its records through every pipeline that reads the
   record's dataset — this is where horizontal packing's scan sharing
   happens: the record is *read once* but processed by several pipelines;
3. map-only pipelines write their output directly; shuffled pipelines tag,
   optionally combine, partition, and sort their map output;
4. reduce tasks group the sorted pairs per tag and stream the groups through
   the pipeline's reduce-side operator chain (which, after vertical packing,
   may contain further map and grouped-reduce stages);
5. outputs are written back to the filesystem with a layout derived from the
   job's partition function, so downstream jobs can rely on partitioning,
   ordering, and partition pruning.

Execution produces :class:`~repro.mapreduce.counters.ExecutionCounters` used
by the profiler and by the cluster cost simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError
from repro.common.records import Record, merge, record_size_bytes, sort_key_for
from repro.dfs.dataset import Dataset
from repro.dfs.filesystem import InMemoryFileSystem
from repro.dfs.layout import DataLayout, PartitionScheme
from repro.mapreduce.counters import ExecutionCounters
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.pipeline import (
    OperatorStats,
    Pipeline,
    run_map_chain,
    run_reduce_chain,
)


@dataclass
class JobExecutionResult:
    """Outcome of executing a single job."""

    job_name: str
    counters: ExecutionCounters
    output_datasets: Tuple[str, ...]
    per_output_records: Dict[str, int] = field(default_factory=dict)
    #: Snapshot of the records written per output dataset, filled only when
    #: the engine was built with ``collect_outputs=True``.  The snapshot is
    #: taken from the written dataset in stored (partition, offset) order, so
    #: it is deterministic for a given input filesystem state.
    output_records: Dict[str, List[Record]] = field(default_factory=dict)

    def output(self, filesystem: InMemoryFileSystem, name: Optional[str] = None) -> Dataset:
        """Convenience accessor for one of the job's output datasets."""
        target = name or self.output_datasets[0]
        return filesystem.get(target)


# A tagged map-output entry: (tag, sort_key, key, value)
_ShuffleEntry = Tuple[str, tuple, Record, Record]


class LocalEngine:
    """Executes MapReduce jobs over in-memory datasets."""

    def __init__(
        self,
        target_records_per_split: int = 2_000,
        max_exec_reduce_tasks: int = 4,
        collect_outputs: bool = False,
    ) -> None:
        if target_records_per_split <= 0:
            raise ValueError("target_records_per_split must be positive")
        if max_exec_reduce_tasks <= 0:
            raise ValueError("max_exec_reduce_tasks must be positive")
        self.target_records_per_split = target_records_per_split
        self.max_exec_reduce_tasks = max_exec_reduce_tasks
        self.collect_outputs = collect_outputs

    # ------------------------------------------------------------------ API
    def execute_job(self, job: MapReduceJob, filesystem: InMemoryFileSystem) -> JobExecutionResult:
        """Execute ``job`` reading inputs from and writing outputs to ``filesystem``."""
        counters = ExecutionCounters()
        stats = OperatorStats()

        splits, input_scale = self._build_splits(job, filesystem, counters)

        map_only_outputs: Dict[str, List[Record]] = {}
        shuffle_buffer: List[_ShuffleEntry] = []
        sort_fields_by_tag = self._sort_fields_by_tag(job)

        for split in splits:
            self._run_map_task(job, split, stats, counters, map_only_outputs, shuffle_buffer, sort_fields_by_tag)
        counters.num_map_tasks = max(1, len(splits))

        reduce_outputs: Dict[str, List[Record]] = {}
        if not job.is_map_only:
            self._run_shuffle_and_reduce(job, shuffle_buffer, stats, counters, reduce_outputs, sort_fields_by_tag)

        self._record_key_cardinalities(job, shuffle_buffer, counters)
        self._merge_operator_stats(stats, counters)

        written = self._write_outputs(job, filesystem, map_only_outputs, reduce_outputs, counters, input_scale)
        per_output = {name: filesystem.get(name).num_records for name in written}
        output_records: Dict[str, List[Record]] = {}
        if self.collect_outputs:
            output_records = {name: filesystem.get(name).all_records() for name in written}
        return JobExecutionResult(
            job_name=job.name,
            counters=counters,
            output_datasets=tuple(written),
            per_output_records=per_output,
            output_records=output_records,
        )

    # ------------------------------------------------------------ map phase
    def _build_splits(
        self,
        job: MapReduceJob,
        filesystem: InMemoryFileSystem,
        counters: ExecutionCounters,
    ) -> Tuple[List[List[Tuple[str, Record]]], float]:
        """Build map splits as lists of (dataset_name, record) pairs.

        Records are tagged with their source dataset so that, inside a map
        task, only the pipelines reading that dataset process them.
        """
        allowed_partitions = self._allowed_partitions_per_dataset(job)
        splits: List[List[Tuple[str, Record]]] = []
        max_scale = 1.0

        for dataset_name in job.input_datasets:
            dataset = filesystem.get(dataset_name)
            max_scale = max(max_scale, dataset.scale_factor)
            allowed = allowed_partitions.get(dataset_name)
            if job.config.chained_input:
                # One split per stored partition, records in stored order
                # (postcondition 2 of intra-job vertical packing).
                for partition in dataset.partitions:
                    if allowed is not None and partition.index not in allowed:
                        continue
                    split = [(dataset_name, dict(record)) for record in partition.records]
                    if split:
                        splits.append(split)
                    self._count_input(split, counters)
            else:
                records = [
                    (dataset_name, record)
                    for record in dataset.records(partition_indexes=allowed)
                ]
                self._count_input(records, counters)
                for chunk_start in range(0, len(records), self.target_records_per_split):
                    chunk = records[chunk_start : chunk_start + self.target_records_per_split]
                    if chunk:
                        splits.append(chunk)
        if not splits:
            splits = [[]]
        return splits, max_scale

    def _allowed_partitions_per_dataset(self, job: MapReduceJob) -> Dict[str, Optional[Tuple[int, ...]]]:
        """Union partition-pruning filters across pipelines per dataset.

        A dataset is pruned only if *every* pipeline reading it restricts its
        partitions; otherwise the full dataset must be scanned.
        """
        allowed: Dict[str, Optional[Tuple[int, ...]]] = {}
        for dataset_name in job.input_datasets:
            filters = []
            unrestricted = False
            for pipeline in job.pipelines:
                if not pipeline.reads(dataset_name):
                    continue
                pipeline_filter = pipeline.allowed_partitions(dataset_name)
                if pipeline_filter is None:
                    unrestricted = True
                else:
                    filters.append(set(pipeline_filter))
            if unrestricted or not filters:
                allowed[dataset_name] = None
            else:
                union = set()
                for f in filters:
                    union |= f
                allowed[dataset_name] = tuple(sorted(union))
        return allowed

    @staticmethod
    def _count_input(records: Sequence[Tuple[str, Record]], counters: ExecutionCounters) -> None:
        counters.map_input_records += len(records)
        counters.map_input_bytes += sum(record_size_bytes(record) for _, record in records)

    def _run_map_task(
        self,
        job: MapReduceJob,
        split: Sequence[Tuple[str, Record]],
        stats: OperatorStats,
        counters: ExecutionCounters,
        map_only_outputs: Dict[str, List[Record]],
        shuffle_buffer: List[_ShuffleEntry],
        sort_fields_by_tag: Dict[str, Tuple[str, ...]],
    ) -> None:
        task_shuffle: Dict[str, List[Tuple[Record, Record]]] = {}
        for pipeline in job.pipelines:
            pairs = self._pipeline_input_pairs(pipeline, split)
            produced = run_map_chain(pipeline.map_ops, pairs, stats)
            if pipeline.is_map_only:
                bucket = map_only_outputs.setdefault(pipeline.output_dataset, [])
                for key, value in produced:
                    record = merge(key, value)
                    bucket.append(record)
                    counters.output_records += 1
                    counters.output_bytes += record_size_bytes(record)
            else:
                outputs = task_shuffle.setdefault(pipeline.tag, [])
                outputs.extend(produced)

        # Combine (per map task, per tag), then count and buffer for shuffle.
        for pipeline in job.pipelines:
            if pipeline.is_map_only or pipeline.tag not in task_shuffle:
                continue
            pairs = task_shuffle[pipeline.tag]
            counters.map_output_records += len(pairs)
            counters.map_output_bytes += sum(
                record_size_bytes(k) + record_size_bytes(v) for k, v in pairs
            )
            combiner = pipeline.map_side_combiner
            if combiner is not None and job.config.combiner_enabled and pairs:
                pairs = self._apply_combiner(pipeline, combiner, pairs, counters)
            sort_fields = sort_fields_by_tag[pipeline.tag]
            for key, value in pairs:
                counters.spilled_records += 1
                size = record_size_bytes(key) + record_size_bytes(value)
                counters.spilled_bytes += size
                counters.shuffle_bytes += size
                shuffle_buffer.append((pipeline.tag, sort_key_for(key, sort_fields), key, value))

    @staticmethod
    def _pipeline_input_pairs(
        pipeline: Pipeline, split: Sequence[Tuple[str, Record]]
    ) -> Iterator[Tuple[Record, Record]]:
        for dataset_name, record in split:
            if pipeline.reads(dataset_name):
                yield {}, dict(record)

    @staticmethod
    def _apply_combiner(
        pipeline: Pipeline,
        combiner,
        pairs: List[Tuple[Record, Record]],
        counters: ExecutionCounters,
    ) -> List[Tuple[Record, Record]]:
        group_fields = pipeline.shuffle_group_fields
        grouped: Dict[tuple, Tuple[Record, List[Record]]] = {}
        for key, value in pairs:
            group_key = sort_key_for(key, group_fields)
            if group_key not in grouped:
                grouped[group_key] = ({f: key.get(f) for f in group_fields}, [])
            grouped[group_key][1].append(value)
        counters.combine_input_records += len(pairs)
        combined: List[Tuple[Record, Record]] = []
        for key, values in grouped.values():
            for out_key, out_value in combiner(dict(key), values):
                combined.append((out_key, out_value))
        counters.combine_output_records += len(combined)
        return combined

    # --------------------------------------------------------- reduce phase
    def _sort_fields_by_tag(self, job: MapReduceJob) -> Dict[str, Tuple[str, ...]]:
        partitioner = job.effective_partitioner
        sort_fields: Dict[str, Tuple[str, ...]] = {}
        explicit = job.partitioner is not None and len(job.pipelines) == 1
        for pipeline in job.pipelines:
            if explicit:
                sort_fields[pipeline.tag] = partitioner.effective_sort_fields
            else:
                sort_fields[pipeline.tag] = pipeline.shuffle_group_fields
        return sort_fields

    def _run_shuffle_and_reduce(
        self,
        job: MapReduceJob,
        shuffle_buffer: List[_ShuffleEntry],
        stats: OperatorStats,
        counters: ExecutionCounters,
        reduce_outputs: Dict[str, List[Record]],
        sort_fields_by_tag: Dict[str, Tuple[str, ...]],
    ) -> None:
        partitioner = job.effective_partitioner
        num_exec_reduces = self._execution_reduce_tasks(job)
        counters.num_reduce_tasks = job.config.num_reduce_tasks

        partitions: Dict[int, List[_ShuffleEntry]] = {i: [] for i in range(num_exec_reduces)}
        for entry in shuffle_buffer:
            _, _, key, _ = entry
            index = partitioner.partition_index(key, num_exec_reduces)
            partitions[index].append(entry)

        pipelines_by_tag = {p.tag: p for p in job.pipelines}
        for index in range(num_exec_reduces):
            entries = partitions[index]
            entries.sort(key=lambda e: (e[0], e[1]))
            counters.reduce_input_records += len(entries)
            # Process each tag's run of entries through its pipeline.
            start = 0
            while start < len(entries):
                tag = entries[start][0]
                end = start
                while end < len(entries) and entries[end][0] == tag:
                    end += 1
                pipeline = pipelines_by_tag.get(tag)
                if pipeline is None:
                    raise ExecutionError(f"shuffle produced unknown tag {tag!r}")
                groups = self._group_entries(entries[start:end], pipeline.shuffle_group_fields)
                group_list = list(groups)
                counters.reduce_input_groups += len(group_list)
                bucket = reduce_outputs.setdefault(pipeline.output_dataset, [])
                for key, value in run_reduce_chain(pipeline.reduce_ops, group_list, stats):
                    record = merge(key, value)
                    bucket.append(record)
                    counters.reduce_output_records += 1
                    size = record_size_bytes(record)
                    counters.reduce_output_bytes += size
                    counters.output_records += 1
                    counters.output_bytes += size
                start = end

    def _execution_reduce_tasks(self, job: MapReduceJob) -> int:
        if job.config.forced_single_reduce:
            return 1
        return max(1, min(job.config.num_reduce_tasks, self.max_exec_reduce_tasks))

    @staticmethod
    def _group_entries(
        entries: Sequence[_ShuffleEntry], group_fields: Tuple[str, ...]
    ) -> Iterator[Tuple[Record, List[Record]]]:
        current_key_tuple: Optional[tuple] = None
        current_key: Optional[Record] = None
        values: List[Record] = []
        for _, _, key, value in entries:
            key_tuple = sort_key_for(key, group_fields)
            if current_key_tuple is None or key_tuple != current_key_tuple:
                if current_key is not None:
                    yield current_key, values
                current_key_tuple = key_tuple
                current_key = {f: key.get(f) for f in group_fields}
                values = []
            values.append(value)
        if current_key is not None:
            yield current_key, values

    # ------------------------------------------------------------- counters
    def _record_key_cardinalities(
        self,
        job: MapReduceJob,
        shuffle_buffer: List[_ShuffleEntry],
        counters: ExecutionCounters,
    ) -> None:
        partitioner = job.effective_partitioner
        field_sets: List[Tuple[str, ...]] = []
        for pipeline in job.pipelines:
            if pipeline.shuffle_group_fields and pipeline.shuffle_group_fields not in field_sets:
                field_sets.append(pipeline.shuffle_group_fields)
        if partitioner.fields and tuple(partitioner.fields) not in field_sets:
            field_sets.append(tuple(partitioner.fields))
        for fields in field_sets:
            distinct = {sort_key_for(key, fields) for _, _, key, _ in shuffle_buffer}
            counters.key_cardinalities[tuple(fields)] = len(distinct)

    @staticmethod
    def _merge_operator_stats(stats: OperatorStats, counters: ExecutionCounters) -> None:
        for name, count in stats.records_in.items():
            counters.operator(name).records_in += count
        for name, count in stats.records_out.items():
            counters.operator(name).records_out += count

    # --------------------------------------------------------------- output
    def _write_outputs(
        self,
        job: MapReduceJob,
        filesystem: InMemoryFileSystem,
        map_only_outputs: Dict[str, List[Record]],
        reduce_outputs: Dict[str, List[Record]],
        counters: ExecutionCounters,
        input_scale: float,
    ) -> List[str]:
        written: List[str] = []
        for pipeline in job.pipelines:
            name = pipeline.output_dataset
            if name in written:
                continue
            records: List[Record] = []
            records.extend(map_only_outputs.get(name, []))
            records.extend(reduce_outputs.get(name, []))
            layout = self._output_layout(job, pipeline, filesystem)
            dataset = Dataset(name, layout=layout, scale_factor=input_scale)
            dataset.load(records)
            filesystem.put(dataset)
            written.append(name)
        # Keep counters' output byte view consistent with compression.
        if job.config.compress_output:
            counters.output_bytes *= 0.35
        return written

    def _output_layout(
        self,
        job: MapReduceJob,
        pipeline: Pipeline,
        filesystem: InMemoryFileSystem,
    ) -> DataLayout:
        partitioner = job.effective_partitioner
        if pipeline.is_map_only:
            # A map-only job's output inherits the physical partitioning of
            # its (single) input: map task i reads partition i and writes
            # output file i.
            source = filesystem.peek(pipeline.input_datasets[0])
            partitioning = (
                source.layout.partitioning if source is not None else PartitionScheme.unpartitioned()
            )
            sort_fields: Tuple[str, ...] = ()
            if source is not None and job.config.chained_input:
                sort_fields = source.layout.sort_fields
            return DataLayout(
                partitioning=partitioning,
                sort_fields=sort_fields,
                compressed=job.config.compress_output,
            )
        if partitioner.kind == "range":
            partitioning = PartitionScheme.ranged(partitioner.fields[0], partitioner.split_points)
        elif partitioner.fields:
            partitioning = PartitionScheme.hashed(*partitioner.fields)
        else:
            partitioning = PartitionScheme.unpartitioned()
        return DataLayout(
            partitioning=partitioning,
            sort_fields=partitioner.effective_sort_fields,
            compressed=job.config.compress_output,
        )
