"""Operators and pipelines: the executable shape of (packed) MapReduce jobs.

A vanilla MapReduce job has one pipeline whose map side is ``[map_fn]`` and
whose reduce side is ``[reduce_fn]``.  Stubby's transformations produce more
interesting shapes:

* intra-job vertical packing turns the consumer into a map-only job whose map
  side is ``[Mc, Rc]`` — the reduce function runs inside the map task as a
  *grouped stream operator* relying on the producer's sort order (Figure 4);
* inter-job vertical packing appends a map-only job's pipeline onto the
  producer's reduce side, e.g. ``[R5, M7, R7]``;
* horizontal packing gives a job several tagged parallel pipelines, one per
  original job, sharing the map-side scan (Figure 6).

Operators therefore come in two kinds — ``map`` and ``reduce`` — and a
pipeline is a list of operators on the map side plus a list on the reduce
side, with a tag, input datasets, and an output dataset.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ExecutionError
from repro.common.records import KeyValue, Record, sort_key_for

MapCallable = Callable[[Record, Record], Iterable[KeyValue]]
ReduceCallable = Callable[[Record, List[Record]], Iterable[KeyValue]]


@dataclass(frozen=True)
class Operator:
    """One stage of a pipeline.

    Attributes
    ----------
    name:
        Unique name within the job; used for per-operator counters and for
        profile annotations ("the CPU cost of M7").
    kind:
        ``"map"`` or ``"reduce"``.
    fn:
        The user function.  Map operators receive ``(key, value)`` and yield
        zero or more ``(key, value)`` pairs.  Reduce operators receive
        ``(key, [values])`` for each group and yield ``(key, value)`` pairs.
    group_fields:
        For reduce operators, the key fields that define a group (the K2 of
        the original job).  Required for reduce operators.
    cpu_cost_per_record:
        Relative CPU cost of one invocation-record, in abstract "cost units"
        that the cluster spec converts to time.  Declared by workloads and
        carried into profile annotations.
    combiner:
        Optional combine function associated with a reduce operator, usable
        on the map side when the job configuration enables the combiner.
    """

    name: str
    kind: str
    fn: Callable
    group_fields: Tuple[str, ...] = ()
    cpu_cost_per_record: float = 1.0
    combiner: Optional[ReduceCallable] = None

    def __post_init__(self) -> None:
        if self.kind not in ("map", "reduce"):
            raise ValueError(f"operator kind must be 'map' or 'reduce', got {self.kind!r}")
        if self.kind == "reduce" and not self.group_fields:
            raise ValueError(f"reduce operator {self.name!r} needs group_fields")
        if self.cpu_cost_per_record < 0:
            raise ValueError("cpu_cost_per_record must be non-negative")

    def renamed(self, name: str) -> "Operator":
        """Copy of this operator with a different name."""
        return replace(self, name=name)


def map_operator(
    name: str,
    fn: MapCallable,
    cpu_cost_per_record: float = 1.0,
) -> Operator:
    """Convenience constructor for a map operator."""
    return Operator(name=name, kind="map", fn=fn, cpu_cost_per_record=cpu_cost_per_record)


def reduce_operator(
    name: str,
    fn: ReduceCallable,
    group_fields: Sequence[str],
    cpu_cost_per_record: float = 1.0,
    combiner: Optional[ReduceCallable] = None,
) -> Operator:
    """Convenience constructor for a reduce operator."""
    return Operator(
        name=name,
        kind="reduce",
        fn=fn,
        group_fields=tuple(group_fields),
        cpu_cost_per_record=cpu_cost_per_record,
        combiner=combiner,
    )


def identity_map(key: Record, value: Record) -> Iterable[KeyValue]:
    """A map function that forwards its input unchanged."""
    yield key, value


@dataclass
class Pipeline:
    """A tagged chain of operators from input dataset(s) to an output dataset.

    ``map_ops`` run inside map tasks over the pipeline's input datasets.
    ``reduce_ops`` run inside reduce tasks over the shuffled, sorted map
    output carrying this pipeline's tag.  A pipeline with no reduce
    operators is *map-only*: its map-side output is written directly to the
    output dataset without the partition/sort/shuffle machinery.
    """

    tag: str
    input_datasets: Tuple[str, ...]
    map_ops: List[Operator] = field(default_factory=list)
    reduce_ops: List[Operator] = field(default_factory=list)
    output_dataset: str = ""
    #: Optional partition pruning: dataset name -> partition indexes to read.
    input_partition_filter: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.input_datasets:
            raise ValueError(f"pipeline {self.tag!r} has no input datasets")
        if not self.output_dataset:
            raise ValueError(f"pipeline {self.tag!r} has no output dataset")
        for op in self.map_ops + self.reduce_ops:
            if not isinstance(op, Operator):
                raise TypeError("pipeline stages must be Operator instances")

    @property
    def is_map_only(self) -> bool:
        """True when this pipeline performs no reduce-side work."""
        return not self.reduce_ops

    @property
    def shuffle_group_fields(self) -> Tuple[str, ...]:
        """Key fields the shuffle must group on for this pipeline.

        This is the ``group_fields`` of the first reduce-side operator; it
        determines the default partition and sort keys.
        """
        if not self.reduce_ops:
            return ()
        return self.reduce_ops[0].group_fields

    @property
    def all_operators(self) -> List[Operator]:
        """Map-side then reduce-side operators."""
        return list(self.map_ops) + list(self.reduce_ops)

    @property
    def map_side_combiner(self) -> Optional[ReduceCallable]:
        """Combiner usable on the map side (from the first reduce operator)."""
        if not self.reduce_ops:
            return None
        return self.reduce_ops[0].combiner

    def reads(self, dataset_name: str) -> bool:
        """True if this pipeline consumes the named dataset."""
        return dataset_name in self.input_datasets

    def allowed_partitions(self, dataset_name: str) -> Optional[Tuple[int, ...]]:
        """Partition indexes to read for ``dataset_name`` (None = all)."""
        return self.input_partition_filter.get(dataset_name)

    def copy(self) -> "Pipeline":
        """Deep-enough copy (operators are immutable and shared)."""
        return Pipeline(
            tag=self.tag,
            input_datasets=tuple(self.input_datasets),
            map_ops=list(self.map_ops),
            reduce_ops=list(self.reduce_ops),
            output_dataset=self.output_dataset,
            input_partition_filter=dict(self.input_partition_filter),
        )


# ---------------------------------------------------------------------------
# Stream execution of operator chains
# ---------------------------------------------------------------------------

class OperatorStats:
    """Mutable per-operator record counts collected during execution."""

    def __init__(self) -> None:
        self.records_in: Dict[str, int] = {}
        self.records_out: Dict[str, int] = {}

    def count_in(self, op_name: str, n: int = 1) -> None:
        self.records_in[op_name] = self.records_in.get(op_name, 0) + n

    def count_out(self, op_name: str, n: int = 1) -> None:
        self.records_out[op_name] = self.records_out.get(op_name, 0) + n

    def merge(self, other: "OperatorStats") -> None:
        for name, count in other.records_in.items():
            self.count_in(name, count)
        for name, count in other.records_out.items():
            self.count_out(name, count)


def run_map_chain(
    operators: Sequence[Operator],
    pairs: Iterable[KeyValue],
    stats: Optional[OperatorStats] = None,
) -> Iterator[KeyValue]:
    """Stream ``pairs`` through a chain of operators on the map side.

    Reduce operators in the chain (from vertical packing) group *consecutive*
    pairs whose projected group key is equal — valid because the producing
    side guarantees the required sort order (paper §3.1 postconditions).
    """
    stream: Iterator[KeyValue] = iter(pairs)
    for op in operators:
        if op.kind == "map":
            stream = _apply_map(op, stream, stats)
        else:
            stream = _apply_grouped_reduce(op, stream, stats)
    return stream


def run_reduce_chain(
    operators: Sequence[Operator],
    groups: Iterable[Tuple[Record, List[Record]]],
    stats: Optional[OperatorStats] = None,
) -> Iterator[KeyValue]:
    """Stream shuffled groups through a chain of operators on the reduce side.

    The first operator must be a reduce operator (it consumes the shuffle's
    groups); subsequent operators are applied to its output stream, with any
    further reduce operators grouping consecutive equal keys as above.
    """
    ops = list(operators)
    if not ops:
        raise ExecutionError("reduce chain must contain at least one operator")
    first = ops[0]
    if first.kind != "reduce":
        raise ExecutionError("the first reduce-side operator must be a reduce operator")

    def first_stage() -> Iterator[KeyValue]:
        for key, values in groups:
            if stats is not None:
                stats.count_in(first.name, len(values))
            for out_key, out_value in first.fn(dict(key), values):
                if stats is not None:
                    stats.count_out(first.name)
                yield out_key, out_value

    stream: Iterator[KeyValue] = first_stage()
    for op in ops[1:]:
        if op.kind == "map":
            stream = _apply_map(op, stream, stats)
        else:
            stream = _apply_grouped_reduce(op, stream, stats)
    return stream


def _apply_map(
    op: Operator,
    stream: Iterator[KeyValue],
    stats: Optional[OperatorStats],
) -> Iterator[KeyValue]:
    for key, value in stream:
        if stats is not None:
            stats.count_in(op.name)
        # A pipelined map function sees the record exactly as it would have
        # read it from the DFS had the upstream stage written it out: the key
        # and value fields merged into one record (paper §2.1 footnote — the
        # producer's output pairs are input "as is" to the consumer's map).
        record = dict(key)
        record.update(value)
        for out_key, out_value in op.fn(key, record):
            if stats is not None:
                stats.count_out(op.name)
            yield out_key, out_value


def _apply_grouped_reduce(
    op: Operator,
    stream: Iterator[KeyValue],
    stats: Optional[OperatorStats],
) -> Iterator[KeyValue]:
    """Group consecutive pairs with equal projected keys and reduce each group."""
    current_group_key: Optional[tuple] = None
    current_key: Optional[Record] = None
    buffered: List[Record] = []

    def flush() -> Iterator[KeyValue]:
        if current_key is None:
            return
        if stats is not None:
            stats.count_in(op.name, len(buffered))
        for out_key, out_value in op.fn(dict(current_key), buffered):
            if stats is not None:
                stats.count_out(op.name)
            yield out_key, out_value

    for key, value in stream:
        group_key = sort_key_for(key, op.group_fields)
        if current_group_key is None or group_key != current_group_key:
            for item in flush():
                yield item
            current_group_key = group_key
            current_key = {f: key.get(f) for f in op.group_fields}
            buffered = []
        buffered.append(value)
    for item in flush():
        yield item


def unique_operator_names(pipelines: Sequence[Pipeline]) -> List[str]:
    """All operator names across pipelines, preserving order, without dupes."""
    seen = set()
    names = []
    for op in itertools.chain.from_iterable(p.all_operators for p in pipelines):
        if op.name not in seen:
            seen.add(op.name)
            names.append(op.name)
    return names
