"""Job configuration and the configuration search space.

The configuration transformation (§3.5) changes settings such as the number
of reduce tasks, the map-output sort buffer, and output compression.  Stubby
searches this space with Recursive Random Search, so the space itself is
modelled explicitly as :class:`ConfigurationSpace`: a list of named
dimensions, each either numeric (with bounds) or boolean, from which points
can be sampled and clamped.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.rng import DeterministicRNG


@dataclass(frozen=True)
class JobConfig:
    """Execution configuration of a single MapReduce job.

    Attributes
    ----------
    num_reduce_tasks:
        Reduce-side parallelism.  ``0`` for map-only jobs.
    split_size_mb:
        Map input split size; determines map-side parallelism together with
        the input size.
    io_sort_mb:
        Map-output sort buffer.  Smaller buffers cause more spill/merge
        passes, which the cost model charges for.
    combiner_enabled:
        Whether the combine function (if any) runs on the map side.
    compress_map_output / compress_output:
        Compression of intermediate (shuffle) data and of the job output.
    max_parallel_maps_per_producer_reduce:
        Chaining constraint set by intra-job vertical packing: when ``1``,
        every producer reduce task's output must be consumed, in order, by a
        single map task of this job (paper §3.1 postcondition 2).
    forced_single_reduce:
        Set for jobs that must run a single reduce task for correctness
        (e.g. global top-K); the optimizer must not override it.
    """

    num_reduce_tasks: int = 1
    split_size_mb: int = 64
    io_sort_mb: int = 128
    combiner_enabled: bool = False
    compress_map_output: bool = False
    compress_output: bool = False
    max_parallel_maps_per_producer_reduce: int = 0
    forced_single_reduce: bool = False

    def __post_init__(self) -> None:
        if self.num_reduce_tasks < 0:
            raise ValueError("num_reduce_tasks cannot be negative")
        if self.split_size_mb <= 0:
            raise ValueError("split_size_mb must be positive")
        if self.io_sort_mb <= 0:
            raise ValueError("io_sort_mb must be positive")

    @property
    def is_map_only(self) -> bool:
        """True when the job runs no reduce tasks."""
        return self.num_reduce_tasks == 0

    @property
    def chained_input(self) -> bool:
        """True when the chaining constraint from vertical packing applies."""
        return self.max_parallel_maps_per_producer_reduce == 1

    def replace(self, **changes: object) -> "JobConfig":
        """Functional update preserving immutability."""
        return replace(self, **changes)

    def with_settings(self, settings: Mapping[str, object]) -> "JobConfig":
        """Apply a point from a :class:`ConfigurationSpace` to this config.

        Constraints already present on the config (forced single reduce,
        chained input) are preserved regardless of the sampled settings —
        this is how configuration transformations "satisfy all current
        conditions" on the configuration (paper §3.5).
        """
        allowed = {}
        for name, value in settings.items():
            if name == "num_reduce_tasks":
                if self.forced_single_reduce or self.is_map_only:
                    continue
                allowed[name] = max(1, int(round(float(value))))
            elif name in ("split_size_mb", "io_sort_mb"):
                allowed[name] = max(8, int(round(float(value))))
            elif name in ("combiner_enabled", "compress_map_output", "compress_output"):
                allowed[name] = bool(value)
        return self.replace(**allowed)

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view used for reporting and for RRS seeding."""
        return {
            "num_reduce_tasks": self.num_reduce_tasks,
            "split_size_mb": self.split_size_mb,
            "io_sort_mb": self.io_sort_mb,
            "combiner_enabled": self.combiner_enabled,
            "compress_map_output": self.compress_map_output,
            "compress_output": self.compress_output,
        }

    @classmethod
    def rule_of_thumb(cls, cluster_reduce_slots: int, map_only: bool = False) -> "JobConfig":
        """The manually tuned configuration used by the Baseline (§7).

        Follows the usual rules of thumb: number of reduce tasks slightly
        below one reduce wave, a mid-sized sort buffer, no compression.
        """
        reduces = 0 if map_only else max(1, int(cluster_reduce_slots * 0.9))
        return cls(num_reduce_tasks=reduces, split_size_mb=64, io_sort_mb=128)


@dataclass(frozen=True)
class ConfigDimension:
    """One searchable configuration dimension."""

    name: str
    kind: str  # "int", "bool"
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in ("int", "bool"):
            raise ValueError(f"unsupported dimension kind {self.kind!r}")
        if self.kind == "int" and self.high < self.low:
            raise ValueError(f"dimension {self.name!r} has empty range")

    def sample(self, rng: DeterministicRNG) -> object:
        """Sample a value uniformly from this dimension."""
        if self.kind == "bool":
            return rng.random() < 0.5
        return int(round(rng.uniform(self.low, self.high)))

    def clamp(self, value: object) -> object:
        """Clamp/convert a value into this dimension's domain."""
        if self.kind == "bool":
            return bool(value)
        return int(round(min(max(float(value), self.low), self.high)))

    def sample_near(self, center: object, radius: float, rng: DeterministicRNG) -> object:
        """Sample within a scaled neighbourhood of ``center`` (for RRS exploit)."""
        if self.kind == "bool":
            if rng.random() < radius:
                return rng.random() < 0.5
            return bool(center)
        span = (self.high - self.low) * radius
        return self.clamp(rng.uniform(float(center) - span, float(center) + span))


@dataclass
class ConfigurationSpace:
    """The set of dimensions searched by configuration transformations."""

    dimensions: List[ConfigDimension] = field(default_factory=list)

    @classmethod
    def for_job(
        cls,
        max_reduce_tasks: int,
        map_only: bool = False,
        has_combiner: bool = False,
    ) -> "ConfigurationSpace":
        """Build the standard configuration space for one job.

        Map-only jobs have no reduce-task or shuffle-compression dimensions;
        jobs without a combine function have no combiner dimension.
        """
        dims: List[ConfigDimension] = [
            ConfigDimension("split_size_mb", "int", 32, 256),
            ConfigDimension("io_sort_mb", "int", 64, 512),
            ConfigDimension("compress_output", "bool"),
        ]
        if not map_only:
            dims.insert(0, ConfigDimension("num_reduce_tasks", "int", 1, max(1, max_reduce_tasks)))
            dims.append(ConfigDimension("compress_map_output", "bool"))
        if has_combiner and not map_only:
            dims.append(ConfigDimension("combiner_enabled", "bool"))
        return cls(dimensions=dims)

    @property
    def names(self) -> List[str]:
        """Dimension names in declaration order."""
        return [dim.name for dim in self.dimensions]

    def sample(self, rng: DeterministicRNG) -> Dict[str, object]:
        """One uniformly random point."""
        return {dim.name: dim.sample(rng) for dim in self.dimensions}

    def sample_near(
        self,
        center: Mapping[str, object],
        radius: float,
        rng: DeterministicRNG,
    ) -> Dict[str, object]:
        """One point in the neighbourhood of ``center`` of relative size ``radius``."""
        point = {}
        for dim in self.dimensions:
            if dim.name in center:
                point[dim.name] = dim.sample_near(center[dim.name], radius, rng)
            else:
                point[dim.name] = dim.sample(rng)
        return point

    def clamp(self, point: Mapping[str, object]) -> Dict[str, object]:
        """Clamp a point into the space's domain, dropping unknown names."""
        by_name = {dim.name: dim for dim in self.dimensions}
        return {name: by_name[name].clamp(value) for name, value in point.items() if name in by_name}

    def size_estimate(self) -> float:
        """Rough cardinality of the (discretized) space, for reporting."""
        size = 1.0
        for dim in self.dimensions:
            size *= 2 if dim.kind == "bool" else max(1.0, dim.high - dim.low + 1)
        return size
