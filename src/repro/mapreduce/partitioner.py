"""Partition functions for map output key-value pairs.

The paper's partition-function transformation (§3.4) can change a job's
partition function from the default hash partitioning to range partitioning,
change range split points, and change the fields used for per-partition
sorting (which is how intra-job vertical packing satisfies the grouping needs
of both producer and consumer with a single shuffle — Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.common.hashing import stable_hash
from repro.common.records import Record, sort_key_for


@dataclass(frozen=True)
class PartitionFunction:
    """Specification of how a job partitions and sorts its map output.

    Attributes
    ----------
    kind:
        ``"hash"`` (default in MapReduce) or ``"range"``.
    fields:
        The key fields partitioning is computed on.  With vertical packing
        this becomes ``Jp.K2 ∩ Jc.K2`` rather than the full key.
    sort_fields:
        The per-partition sort key.  Defaults to ``fields`` when empty; with
        vertical packing it becomes the combined key ``{∩, ∪ − ∩}``.
    split_points:
        Range boundaries when ``kind == "range"``, interpreted as lower
        bounds on the *first* field in ``fields``.
    """

    kind: str = "hash"
    fields: Tuple[str, ...] = ()
    sort_fields: Tuple[str, ...] = ()
    split_points: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("hash", "range"):
            raise ValueError(f"unknown partition function kind: {self.kind!r}")
        if self.kind == "range" and not self.split_points:
            raise ValueError("range partitioning requires split points")
        if self.kind == "range" and not self.fields:
            raise ValueError("range partitioning requires a partition field")

    @property
    def effective_sort_fields(self) -> Tuple[str, ...]:
        """Sort fields, defaulting to the partition fields."""
        return self.sort_fields if self.sort_fields else self.fields

    def partition_index(self, key: Record, num_partitions: int) -> int:
        """Compute the reduce partition for a map output key."""
        if num_partitions <= 1:
            return 0
        if self.kind == "range":
            value = key.get(self.fields[0])
            index = 0
            for point in self.split_points:
                if value is not None and _numeric(value) >= point:
                    index += 1
                else:
                    break
            return min(index, num_partitions - 1)
        material = tuple(str(key.get(f)) for f in self.fields) if self.fields else tuple(
            sorted((k, str(v)) for k, v in key.items())
        )
        # A stable, python-hash-independent partitioner so runs are reproducible.
        return _stable_hash(material) % num_partitions

    def sort_key(self, key: Record) -> tuple:
        """Sort key tuple used to order pairs inside a partition."""
        return sort_key_for(key, self.effective_sort_fields)

    def satisfies(self, other: Optional["PartitionFunction"]) -> bool:
        """Whether this function satisfies the constraints imposed by ``other``.

        A constraint (e.g. placed by a previous intra-job packing on the
        producer's partition function) is satisfied when partitioning fields
        match and the constrained sort fields are a prefix of ours.
        """
        if other is None:
            return True
        if other.fields and tuple(other.fields) != tuple(self.fields):
            return False
        required = other.effective_sort_fields
        ours = self.effective_sort_fields
        return tuple(ours[: len(required)]) == tuple(required)

    def with_sort_fields(self, sort_fields: Sequence[str]) -> "PartitionFunction":
        """Copy with a different per-partition sort key."""
        return replace(self, sort_fields=tuple(sort_fields))

    def with_split_points(self, split_points: Sequence[float]) -> "PartitionFunction":
        """Copy converted to range partitioning with the given split points."""
        return replace(self, kind="range", split_points=tuple(split_points))

    @classmethod
    def default_hash(cls, fields: Sequence[str]) -> "PartitionFunction":
        """MapReduce's default: hash partition and sort on the full key K2."""
        return cls(kind="hash", fields=tuple(fields), sort_fields=tuple(fields))

    @classmethod
    def ranged(
        cls,
        field: str,
        split_points: Sequence[float],
        sort_fields: Sequence[str] = (),
    ) -> "PartitionFunction":
        """Range partitioning on ``field``."""
        return cls(
            kind="range",
            fields=(field,),
            sort_fields=tuple(sort_fields) if sort_fields else (field,),
            split_points=tuple(split_points),
        )


def _numeric(value: object) -> float:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    try:
        return float(str(value))
    except ValueError:
        return float(_stable_hash((str(value),)) % 10_000_000)


#: Backwards-compatible alias; the implementation lives in common.hashing so
#: the DFS layer can use the same function without importing mapreduce.
_stable_hash = stable_hash
