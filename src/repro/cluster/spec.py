"""Cluster specification.

The paper's evaluation (§7) uses a Hadoop cluster of 51 Amazon EC2 m1.large
nodes, each with 7.5 GB memory, 2 virtual cores, 850 GB of local storage, and
configured for 3 concurrent map tasks and 2 concurrent reduce tasks.  The
cluster can therefore run 150 concurrent map tasks and 100 concurrent reduce
tasks ("waves").  :meth:`ClusterSpec.paper_cluster` reproduces that setup.

The spec also carries the raw device speeds the What-if cost model needs:
local-disk read/write bandwidth, network bandwidth, and a CPU speed factor
that scales the per-record CPU costs recorded in profile annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class NodeSpec:
    """Resources of a single worker node."""

    memory_mb: int = 7_680
    cores: int = 2
    map_slots: int = 3
    reduce_slots: int = 2
    disk_read_mb_per_s: float = 90.0
    disk_write_mb_per_s: float = 70.0
    task_slot_memory_mb: int = 1_024

    def validate(self) -> None:
        """Raise ``ValueError`` when the node configuration is not sensible."""
        if self.map_slots <= 0 or self.reduce_slots <= 0:
            raise ValueError("a node needs at least one map and one reduce slot")
        if self.memory_mb <= 0 or self.cores <= 0:
            raise ValueError("memory and cores must be positive")
        if self.disk_read_mb_per_s <= 0 or self.disk_write_mb_per_s <= 0:
            raise ValueError("disk bandwidths must be positive")


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`NodeSpec` workers.

    Attributes
    ----------
    num_nodes:
        Worker node count (the paper uses 51, of which 50 run tasks; we keep
        the full count and treat every node as a worker for simplicity).
    node:
        Per-node resources.
    network_mb_per_s:
        Effective point-to-point shuffle bandwidth per node.
    cpu_speed_factor:
        Multiplier applied to profiled per-record CPU costs; 1.0 means the
        cluster runs CPU work at the same speed as the profiling run.
    task_startup_s:
        Fixed scheduling/JVM-start overhead charged per task, which is what
        makes eliminating whole jobs (vertical packing) and map waves
        worthwhile even for small inputs.
    job_startup_s:
        Fixed per-job submission/setup/cleanup overhead.
    """

    num_nodes: int = 51
    node: NodeSpec = field(default_factory=NodeSpec)
    network_mb_per_s: float = 60.0
    cpu_speed_factor: float = 1.0
    task_startup_s: float = 2.0
    job_startup_s: float = 8.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("cluster must have at least one node")
        self.node.validate()
        if self.network_mb_per_s <= 0:
            raise ValueError("network bandwidth must be positive")
        if self.cpu_speed_factor <= 0:
            raise ValueError("cpu_speed_factor must be positive")

    @property
    def total_map_slots(self) -> int:
        """Cluster-wide concurrent map task capacity (one map wave)."""
        return self.num_nodes * self.node.map_slots

    @property
    def total_reduce_slots(self) -> int:
        """Cluster-wide concurrent reduce task capacity (one reduce wave)."""
        return self.num_nodes * self.node.reduce_slots

    @property
    def total_memory_mb(self) -> int:
        """Aggregate memory across the cluster."""
        return self.num_nodes * self.node.memory_mb

    def map_waves(self, num_map_tasks: int) -> int:
        """Number of sequential map waves needed for ``num_map_tasks``."""
        if num_map_tasks <= 0:
            return 0
        return -(-num_map_tasks // self.total_map_slots)

    def reduce_waves(self, num_reduce_tasks: int) -> int:
        """Number of sequential reduce waves needed for ``num_reduce_tasks``."""
        if num_reduce_tasks <= 0:
            return 0
        return -(-num_reduce_tasks // self.total_reduce_slots)

    def scaled(self, num_nodes: int) -> "ClusterSpec":
        """Return a copy of this spec with a different node count."""
        return replace(self, num_nodes=num_nodes)

    @classmethod
    def paper_cluster(cls) -> "ClusterSpec":
        """The 51-node EC2 m1.large cluster from the paper's §7."""
        return cls(num_nodes=51, node=NodeSpec())

    @classmethod
    def small_test_cluster(cls) -> "ClusterSpec":
        """A 4-node cluster used by unit tests to exercise multi-wave behaviour."""
        return cls(
            num_nodes=4,
            node=NodeSpec(memory_mb=4_096, map_slots=2, reduce_slots=2),
            task_startup_s=1.0,
            job_startup_s=4.0,
        )
