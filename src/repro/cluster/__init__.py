"""Cluster resource model used by the execution simulator and cost model."""

from repro.cluster.spec import ClusterSpec, NodeSpec

__all__ = ["ClusterSpec", "NodeSpec"]
