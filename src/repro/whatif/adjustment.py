"""Annotation adjustment for packed jobs (paper §5).

Packing transformations change the jobs of the workflow, so the profile
annotations attached to the original jobs no longer describe the new jobs
directly.  Stubby *adjusts* them: for a vertical packing, the new map-task
record selectivity is the product of the packed functions' selectivities and
the new CPU cost is their sum; for a horizontal packing, the packed job's
statistics are the union of the original jobs' statistics.

Because this package stores per-operator profiles (operator identities are
preserved by packing), the primary adjustment is simply merging the operator
profile maps; the job-level aggregate statistics are then recomputed with the
paper's multiply-selectivities / sum-costs rules so that consumers which only
look at job-level numbers (e.g. the fallback cost model and reports) stay
meaningful.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.workflow.annotations import ProfileAnnotation


def adjust_profile_for_intra_job_packing(
    producer: ProfileAnnotation,
    consumer: ProfileAnnotation,
) -> ProfileAnnotation:
    """Adjusted profile of the *consumer* after intra-job vertical packing.

    The consumer becomes a map-only job whose map task runs ``Mc`` followed by
    ``Rc``:  its record selectivity is the product of the old map and reduce
    selectivities and its CPU cost their sum (weighted by the records that
    reach the reduce function).
    """
    merged = consumer.merged_with(producer)
    map_selectivity = consumer.map_selectivity * consumer.reduce_selectivity
    map_cpu = (
        consumer.map_cpu_cost_per_record
        + consumer.map_selectivity * consumer.reduce_cpu_cost_per_record
    )
    return replace(
        merged,
        map_selectivity=map_selectivity,
        reduce_selectivity=1.0,
        map_cpu_cost_per_record=map_cpu,
        reduce_cpu_cost_per_record=0.0,
        output_record_bytes=consumer.output_record_bytes,
        map_output_record_bytes=consumer.output_record_bytes,
        input_record_bytes=consumer.input_record_bytes,
    )


def adjust_profile_for_inter_job_packing(
    surviving: ProfileAnnotation,
    absorbed: ProfileAnnotation,
    absorbed_into_map_side: bool,
) -> ProfileAnnotation:
    """Adjusted profile of the surviving job after inter-job vertical packing.

    ``absorbed`` is the profile of the (map-only) job that disappears; its
    selectivity multiplies into the surviving job's map or reduce side and
    its CPU cost adds to the same side.
    """
    merged = surviving.merged_with(absorbed)
    if absorbed_into_map_side:
        return replace(
            merged,
            map_selectivity=surviving.map_selectivity * absorbed.map_selectivity,
            map_cpu_cost_per_record=(
                surviving.map_cpu_cost_per_record
                + surviving.map_selectivity * absorbed.map_cpu_cost_per_record
            ),
            map_output_record_bytes=absorbed.output_record_bytes,
        )
    return replace(
        merged,
        reduce_selectivity=surviving.reduce_selectivity * absorbed.map_selectivity,
        reduce_cpu_cost_per_record=(
            surviving.reduce_cpu_cost_per_record
            + surviving.reduce_selectivity * absorbed.map_cpu_cost_per_record
        ),
        output_record_bytes=absorbed.output_record_bytes,
    )


def adjust_profile_for_horizontal_packing(
    profiles: Sequence[ProfileAnnotation],
) -> ProfileAnnotation:
    """Adjusted profile of a horizontally packed job.

    The packed job reads the shared input once; every pipeline processes each
    input record, so record selectivities add (each input record produces the
    sum of the pipelines' outputs) and CPU costs add as well.
    """
    if not profiles:
        raise ValueError("horizontal packing needs at least one profile")
    merged: Optional[ProfileAnnotation] = None
    for profile in profiles:
        merged = profile if merged is None else merged.merged_with(profile)
    assert merged is not None
    return replace(
        merged,
        map_selectivity=sum(p.map_selectivity for p in profiles),
        reduce_selectivity=(
            sum(p.map_selectivity * p.reduce_selectivity for p in profiles)
            / max(1e-12, sum(p.map_selectivity for p in profiles))
        ),
        map_cpu_cost_per_record=sum(p.map_cpu_cost_per_record for p in profiles),
        reduce_cpu_cost_per_record=max(p.reduce_cpu_cost_per_record for p in profiles),
        input_record_bytes=max(p.input_record_bytes for p in profiles),
        map_output_record_bytes=max(p.map_output_record_bytes for p in profiles),
        output_record_bytes=max(p.output_record_bytes for p in profiles),
    )
