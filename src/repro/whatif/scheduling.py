"""Workflow-level scheduling model.

Jobs on the same topological level of the workflow DAG are concurrently
runnable and share the cluster's task slots.  The makespan of a level is
bounded below by (a) the slot-constrained total work of the level and (b) the
longest critical path of any single job in the level; we take the maximum of
the two bounds, which captures the behaviour the paper's Post-processing Jobs
workload relies on: two small jobs that fit in the cluster simultaneously run
in ``max(t1, t2)``, so packing them into a single job (whose time is roughly
``t1 + t2``) is a loss.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster import ClusterSpec
from repro.whatif.jobmodel import JobTimeEstimate


def level_makespan(estimates: Sequence[JobTimeEstimate], cluster: ClusterSpec) -> float:
    """Makespan of one level of concurrently runnable jobs."""
    if not estimates:
        return 0.0
    if len(estimates) == 1:
        return estimates[0].total_s

    # Bound (a): slot-constrained aggregate work.
    map_slot_seconds = sum(e.num_map_tasks * (e.map_task_s + cluster.task_startup_s) for e in estimates)
    reduce_slot_seconds = sum(
        e.num_reduce_tasks * (e.reduce_task_s + cluster.task_startup_s) for e in estimates
    )
    aggregate_bound = (
        map_slot_seconds / cluster.total_map_slots
        + reduce_slot_seconds / cluster.total_reduce_slots
        + max(e.shuffle_s for e in estimates)
        + max(e.startup_s for e in estimates)
    )

    # Bound (b): the slowest individual job run with the whole cluster.
    individual_bound = max(e.total_s for e in estimates)

    return max(aggregate_bound, individual_bound)


def workflow_makespan(
    per_level_estimates: Sequence[Sequence[JobTimeEstimate]],
    cluster: ClusterSpec,
) -> float:
    """Total workflow runtime: levels run one after another."""
    return sum(level_makespan(level, cluster) for level in per_level_estimates)


def per_job_breakdown(
    estimates_by_name: Dict[str, JobTimeEstimate],
) -> Dict[str, float]:
    """Convenience view: job name -> standalone estimated seconds."""
    return {name: estimate.total_s for name, estimate in estimates_by_name.items()}
