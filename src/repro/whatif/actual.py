"""Ground-truth ("actual") cost from measured execution counters.

The evaluation needs two cost figures for every plan:

* the **estimated** cost, produced by the What-if engine from profile
  annotations (possibly collected on a sample, with noise); and
* the **actual** cost — what the plan really costs on the cluster.

Since our substrate is a simulator, the actual cost is obtained by executing
the plan with the local engine (which yields exact dataflow counters) and
feeding those *measured* counters — scaled to the logical dataset size —
through the same per-phase job model.  The two paths share the model but
differ in their inputs, exactly like Starfish's predictions vs. Hadoop's
measured runtimes differ in the paper's Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster import ClusterSpec
from repro.common.errors import CostModelError
from repro.dfs.filesystem import InMemoryFileSystem
from repro.mapreduce.counters import ExecutionCounters
from repro.mapreduce.job import MapReduceJob
from repro.whatif.dataflow import JobDataflow
from repro.whatif.jobmodel import JobTimeEstimate, estimate_job_time
from repro.whatif.scheduling import workflow_makespan
from repro.workflow.executor import WorkflowExecutionResult
from repro.workflow.graph import JobVertex, Workflow


@dataclass
class ActualWorkflowCost:
    """Simulated runtime of an executed workflow, from measured counters."""

    total_s: float
    per_job: Dict[str, JobTimeEstimate] = field(default_factory=dict)

    def job_seconds(self, name: str) -> float:
        """Simulated seconds of one job."""
        if name not in self.per_job:
            raise CostModelError(f"no actual cost recorded for job {name!r}")
        return self.per_job[name].total_s


class ActualCostModel:
    """Converts measured execution counters into simulated cluster runtimes."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster

    def workflow_cost(
        self,
        workflow: Workflow,
        execution: WorkflowExecutionResult,
        filesystem: InMemoryFileSystem,
    ) -> ActualWorkflowCost:
        """Cost a fully executed workflow.

        Walks the same cached ``topological_levels()`` the What-if engine
        uses (the workflow's topology index — usually already warm from the
        execution that produced ``execution``), so actual-cost accounting
        stays cheap on wide DAGs.
        """
        per_job: Dict[str, JobTimeEstimate] = {}
        per_level: List[List[JobTimeEstimate]] = []
        for level in workflow.topological_levels():
            level_estimates: List[JobTimeEstimate] = []
            for vertex in level:
                counters = execution.counters_for(vertex.name)
                dataflow = self.dataflow_from_counters(vertex, workflow, counters, filesystem)
                estimate = estimate_job_time(dataflow, vertex.job.config, self.cluster)
                per_job[vertex.name] = estimate
                level_estimates.append(estimate)
            per_level.append(level_estimates)
        total = workflow_makespan(per_level, self.cluster)
        return ActualWorkflowCost(total_s=total, per_job=per_job)

    def dataflow_from_counters(
        self,
        vertex: JobVertex,
        workflow: Workflow,
        counters: ExecutionCounters,
        filesystem: InMemoryFileSystem,
    ) -> JobDataflow:
        """Build the logical-scale dataflow of one executed job."""
        job = vertex.job
        scale = self._input_scale(job, filesystem)

        map_cpu_units, reduce_cpu_units = self._cpu_units(job, counters)
        input_records = max(1.0, counters.map_input_records * scale)
        reduce_input_records = max(0.0, counters.reduce_input_records * scale)
        # CPU-per-record ratios are scale invariant: divide the (unscaled)
        # cost units by the (unscaled) record counts they were measured over.
        map_cpu_per_record = (
            map_cpu_units / counters.map_input_records if counters.map_input_records else 1.0
        )
        reduce_cpu_per_record = (
            reduce_cpu_units / counters.reduce_input_records
            if counters.reduce_input_records
            else 1.0
        )

        distinct_groups = self._distinct(counters, self._group_field_sets(job))
        distinct_partition_keys = self._distinct(
            counters, [tuple(job.effective_partitioner.fields)] if job.effective_partitioner.fields else []
        )

        chained_map_tasks: Optional[int] = None
        if job.config.chained_input:
            chained_map_tasks = self._producer_reduce_tasks(vertex, workflow)

        return JobDataflow(
            input_bytes=max(1.0, counters.map_input_bytes * scale),
            input_records=input_records,
            map_output_records=counters.map_output_records * scale,
            map_output_bytes=counters.map_output_bytes * scale,
            shuffle_records=counters.spilled_records * scale,
            shuffle_bytes=counters.shuffle_bytes * scale,
            reduce_input_records=reduce_input_records,
            output_records=counters.output_records * scale,
            output_bytes=counters.output_bytes * scale,
            map_cpu_cost_per_record=map_cpu_per_record,
            reduce_cpu_cost_per_record=reduce_cpu_per_record,
            map_only=job.is_map_only,
            pipeline_count=len(job.pipelines),
            distinct_reduce_groups=distinct_groups,
            distinct_partition_keys=distinct_partition_keys,
            chained_map_tasks=chained_map_tasks,
        )

    # ------------------------------------------------------------- helpers
    @staticmethod
    def _input_scale(job: MapReduceJob, filesystem: InMemoryFileSystem) -> float:
        scales = []
        for dataset_name in job.input_datasets:
            dataset = filesystem.peek(dataset_name)
            if dataset is not None:
                scales.append(dataset.scale_factor)
        return max(scales) if scales else 1.0

    @staticmethod
    def _cpu_units(job: MapReduceJob, counters: ExecutionCounters) -> tuple:
        map_units = 0.0
        reduce_units = 0.0
        for pipeline in job.pipelines:
            for op in pipeline.map_ops:
                observed = counters.operators.get(op.name)
                if observed is not None:
                    map_units += observed.records_in * op.cpu_cost_per_record
            for op in pipeline.reduce_ops:
                observed = counters.operators.get(op.name)
                if observed is not None:
                    reduce_units += observed.records_in * op.cpu_cost_per_record
        return map_units, reduce_units

    @staticmethod
    def _group_field_sets(job: MapReduceJob) -> List[tuple]:
        field_sets = []
        for pipeline in job.pipelines:
            if pipeline.shuffle_group_fields:
                field_sets.append(tuple(pipeline.shuffle_group_fields))
        return field_sets

    @staticmethod
    def _distinct(counters: ExecutionCounters, field_sets: List[tuple]) -> Optional[float]:
        total = 0.0
        found = False
        for fields in field_sets:
            if fields in counters.key_cardinalities:
                total += counters.key_cardinalities[fields]
                found = True
        return total if found else None

    @staticmethod
    def _producer_reduce_tasks(vertex: JobVertex, workflow: Workflow) -> Optional[int]:
        for dataset_name in vertex.job.input_datasets:
            producer = workflow.producer_of(dataset_name)
            if producer is not None and not producer.job.is_map_only:
                return max(1, producer.job.config.num_reduce_tasks)
        return None
