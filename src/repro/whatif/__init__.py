"""Starfish-style What-if engine: analytical costing of MapReduce workflows.

The What-if engine answers "how long would this (possibly hypothetical) plan
take on this cluster?" from four inputs (paper §5): the jobs' profile
annotations, the candidate configurations, the input datasets' size/layout,
and the cluster specification.  The same per-phase job model is reused by the
*actual* cost path, which feeds it measured execution counters instead of
profile-derived estimates — giving the estimated-vs-actual comparison of
Figure 14.
"""

from repro.whatif.dataflow import JobDataflow
from repro.whatif.jobmodel import JobTimeEstimate, estimate_job_time
from repro.whatif.scheduling import workflow_makespan
from repro.whatif.model import COST_MODEL_VERSION, VertexCost, WhatIfEngine, WorkflowCostEstimate
from repro.whatif.service import (
    CacheLoadReport,
    CostService,
    CostServiceStats,
    cluster_cache_key,
    resolve_cache_path,
)
from repro.whatif.actual import ActualCostModel
from repro.whatif.adjustment import (
    adjust_profile_for_horizontal_packing,
    adjust_profile_for_inter_job_packing,
    adjust_profile_for_intra_job_packing,
)

__all__ = [
    "JobDataflow",
    "JobTimeEstimate",
    "estimate_job_time",
    "workflow_makespan",
    "VertexCost",
    "WhatIfEngine",
    "WorkflowCostEstimate",
    "CacheLoadReport",
    "COST_MODEL_VERSION",
    "CostService",
    "CostServiceStats",
    "cluster_cache_key",
    "resolve_cache_path",
    "ActualCostModel",
    "adjust_profile_for_intra_job_packing",
    "adjust_profile_for_inter_job_packing",
    "adjust_profile_for_horizontal_packing",
]
