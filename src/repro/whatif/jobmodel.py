"""Per-phase analytical model of a MapReduce job's execution time.

The model follows the structure of the Starfish What-if engine [8]: a job is
costed phase by phase — read, map, collect/spill/sort, shuffle, merge,
reduce, write — from its dataflow summary, its configuration, and the cluster
specification.  Task-level times are turned into phase times through the wave
model (tasks per concurrent wave = cluster slots), which is what makes the
number of reduce tasks, the chaining constraint of vertical packing, and
narrow partition keys show up in the final runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster import ClusterSpec
from repro.mapreduce.config import JobConfig
from repro.whatif.dataflow import JobDataflow

MB = 1024.0 * 1024.0

#: Seconds of CPU time represented by one "cost unit" applied to one record.
#: Workload operators declare costs in the 1–30 range, so a cost of 4 means
#: roughly one microsecond of CPU per record — keeping the CPU:I/O balance in
#: the regime where MapReduce jobs are I/O- and shuffle-bound, as on the
#: paper's cluster, so that eliminating intermediate data movement (what the
#: packing transformations do) has the dominant effect.
CPU_COST_UNIT_SECONDS = 2.5e-7

#: Compression behaviour used when map/reduce output compression is enabled.
COMPRESSION_RATIO = 0.35
COMPRESSION_CPU_S_PER_MB = 0.012
DECOMPRESSION_CPU_S_PER_MB = 0.006

#: Extra CPU charged per (record, extra pipeline) for packed jobs, modelling
#: the task-slot resource contention discussed in §3.1/§3.3.
PIPELINE_CONTENTION_FACTOR = 0.04


@dataclass(frozen=True, slots=True)
class JobTimeEstimate:
    """Phase-by-phase time estimate of one job (slots: hot-loop allocation)."""

    map_phase_s: float
    shuffle_s: float
    reduce_phase_s: float
    startup_s: float
    num_map_tasks: int
    num_reduce_tasks: int
    map_task_s: float
    reduce_task_s: float
    details: Dict[str, float]

    @property
    def total_s(self) -> float:
        """Total estimated job runtime in seconds."""
        return self.startup_s + self.map_phase_s + self.shuffle_s + self.reduce_phase_s


def estimate_job_time(
    dataflow: JobDataflow,
    config: JobConfig,
    cluster: ClusterSpec,
) -> JobTimeEstimate:
    """Estimate the runtime of one job from its dataflow, config, and cluster."""
    details: Dict[str, float] = {}

    num_map_tasks = _num_map_tasks(dataflow, config)
    details["num_map_tasks"] = num_map_tasks

    map_task_s = _map_task_time(dataflow, config, cluster, num_map_tasks, details)
    map_waves = cluster.map_waves(num_map_tasks)
    map_phase_s = map_waves * (map_task_s + cluster.task_startup_s)
    details["map_waves"] = map_waves

    if dataflow.map_only or config.is_map_only:
        return JobTimeEstimate(
            map_phase_s=map_phase_s,
            shuffle_s=0.0,
            reduce_phase_s=0.0,
            startup_s=cluster.job_startup_s,
            num_map_tasks=num_map_tasks,
            num_reduce_tasks=0,
            map_task_s=map_task_s,
            reduce_task_s=0.0,
            details=details,
        )

    num_reduce_tasks = max(1, config.num_reduce_tasks)
    effective_reducers = _effective_reducers(dataflow, num_reduce_tasks)
    details["effective_reducers"] = effective_reducers

    shuffle_bytes = dataflow.shuffle_bytes
    if config.compress_map_output:
        shuffle_bytes *= COMPRESSION_RATIO
    shuffle_s = _shuffle_time(shuffle_bytes, num_reduce_tasks, cluster)
    details["shuffle_bytes"] = shuffle_bytes

    reduce_task_s = _reduce_task_time(
        dataflow, config, cluster, effective_reducers, shuffle_bytes, details
    )
    reduce_waves = cluster.reduce_waves(num_reduce_tasks)
    reduce_phase_s = reduce_waves * cluster.task_startup_s + reduce_task_s
    details["reduce_waves"] = reduce_waves

    return JobTimeEstimate(
        map_phase_s=map_phase_s,
        shuffle_s=shuffle_s,
        reduce_phase_s=reduce_phase_s,
        startup_s=cluster.job_startup_s,
        num_map_tasks=num_map_tasks,
        num_reduce_tasks=num_reduce_tasks,
        map_task_s=map_task_s,
        reduce_task_s=reduce_task_s,
        details=details,
    )


# ---------------------------------------------------------------------------
# Phase helpers
# ---------------------------------------------------------------------------


def _num_map_tasks(dataflow: JobDataflow, config: JobConfig) -> int:
    if dataflow.chained_map_tasks:
        return max(1, int(dataflow.chained_map_tasks))
    split_bytes = config.split_size_mb * MB
    return max(1, int(math.ceil(dataflow.input_bytes / split_bytes)))


def _map_task_time(
    dataflow: JobDataflow,
    config: JobConfig,
    cluster: ClusterSpec,
    num_map_tasks: int,
    details: Dict[str, float],
) -> float:
    node = cluster.node
    input_bytes_per_task = dataflow.input_bytes / num_map_tasks
    input_records_per_task = dataflow.input_records / num_map_tasks

    read_s = input_bytes_per_task / (node.disk_read_mb_per_s * MB)

    contention = 1.0 + PIPELINE_CONTENTION_FACTOR * (dataflow.pipeline_count - 1)
    cpu_s = (
        input_records_per_task
        * dataflow.map_cpu_cost_per_record
        * CPU_COST_UNIT_SECONDS
        * cluster.cpu_speed_factor
        * contention
    )

    # Collect / spill / sort of the map output (skipped for map-only jobs,
    # whose output is written straight back to the DFS).
    map_output_bytes_per_task = dataflow.map_output_bytes / num_map_tasks
    if dataflow.map_only or config.is_map_only:
        write_bytes = dataflow.output_bytes / num_map_tasks
        compress_cpu = 0.0
        if config.compress_output:
            compress_cpu = (write_bytes / MB) * COMPRESSION_CPU_S_PER_MB
            write_bytes *= COMPRESSION_RATIO
        spill_s = write_bytes / (node.disk_write_mb_per_s * MB) + compress_cpu
        details["map_sort_spill_s"] = 0.0
    else:
        # Memory available to the sort buffer is shared by packed pipelines.
        effective_sort_mb = max(8.0, config.io_sort_mb / dataflow.pipeline_count)
        spill_passes = max(
            1.0, math.ceil((map_output_bytes_per_task / MB) / effective_sort_mb)
        )
        sort_factor = 1.0 + 0.25 * math.log2(max(1.0, spill_passes))
        spill_bytes = map_output_bytes_per_task * sort_factor
        compress_cpu = 0.0
        if config.compress_map_output:
            compress_cpu = (spill_bytes / MB) * COMPRESSION_CPU_S_PER_MB
            spill_bytes *= COMPRESSION_RATIO
        spill_s = (
            spill_bytes / (node.disk_write_mb_per_s * MB)
            + spill_bytes / (node.disk_read_mb_per_s * MB) * 0.5
            + compress_cpu
        )
        details["map_sort_spill_s"] = spill_s

    details["map_read_s"] = read_s
    details["map_cpu_s"] = cpu_s
    return read_s + cpu_s + spill_s


def _effective_reducers(dataflow: JobDataflow, num_reduce_tasks: int) -> float:
    cap = dataflow.parallelism_cap
    if cap is None:
        return float(num_reduce_tasks)
    return float(max(1.0, min(float(num_reduce_tasks), cap)))


def _shuffle_time(shuffle_bytes: float, num_reduce_tasks: int, cluster: ClusterSpec) -> float:
    parallel_streams = max(1, min(num_reduce_tasks, cluster.total_reduce_slots, cluster.num_nodes))
    effective_bandwidth = cluster.network_mb_per_s * MB * parallel_streams
    return shuffle_bytes / effective_bandwidth


def _reduce_task_time(
    dataflow: JobDataflow,
    config: JobConfig,
    cluster: ClusterSpec,
    effective_reducers: float,
    shuffle_bytes: float,
    details: Dict[str, float],
) -> float:
    node = cluster.node
    records_per_reducer = dataflow.reduce_input_records / effective_reducers
    bytes_per_reducer = shuffle_bytes / effective_reducers
    output_bytes_per_reducer = dataflow.output_bytes / effective_reducers

    decompress_cpu = 0.0
    if config.compress_map_output:
        decompress_cpu = (bytes_per_reducer / MB) * DECOMPRESSION_CPU_S_PER_MB

    merge_s = (
        bytes_per_reducer / (node.disk_write_mb_per_s * MB) * 0.5
        + bytes_per_reducer / (node.disk_read_mb_per_s * MB)
        + decompress_cpu
    )

    contention = 1.0 + PIPELINE_CONTENTION_FACTOR * (dataflow.pipeline_count - 1)
    cpu_s = (
        records_per_reducer
        * dataflow.reduce_cpu_cost_per_record
        * CPU_COST_UNIT_SECONDS
        * cluster.cpu_speed_factor
        * contention
    )

    compress_cpu = 0.0
    write_bytes = output_bytes_per_reducer
    if config.compress_output:
        compress_cpu = (write_bytes / MB) * COMPRESSION_CPU_S_PER_MB
        write_bytes *= COMPRESSION_RATIO
    write_s = write_bytes / (node.disk_write_mb_per_s * MB) + compress_cpu

    details["reduce_merge_s"] = merge_s
    details["reduce_cpu_s"] = cpu_s
    details["reduce_write_s"] = write_s
    return merge_s + cpu_s + write_s
