"""The What-if engine: estimate workflow cost from annotations alone.

Given a plan (an annotated workflow), a cluster spec, and the configurations
chosen for each job, the engine derives each job's expected dataflow from the
profile annotations and the (estimated) sizes of its input datasets, costs it
with the per-phase job model, propagates the estimated output sizes to
downstream jobs, and combines per-level makespans into the workflow estimate.

Costing is exposed as composable per-vertex steps — :meth:`WhatIfEngine.cost_vertex`
produces one job's time estimate together with its output-size contributions,
:meth:`WhatIfEngine.apply_output_contributions` advances the size state, and
:meth:`WhatIfEngine.vertex_cost_signature` captures every input the per-vertex
step reads — so :class:`repro.whatif.service.CostService` can memoize unchanged
jobs and re-cost only the mutated cone of a workflow.
:meth:`WhatIfEngine.estimate_workflow` is the cold (uncached) composition of
those steps.

When a job carries no profile annotation the engine falls back to the simple
"number of jobs" cost model used by rule-based optimizers such as YSmart [11]
(paper §5), flagged through ``WorkflowCostEstimate.cost_basis``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster import ClusterSpec
from repro.common.errors import CostModelError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.pipeline import Pipeline
from repro.whatif.dataflow import JobDataflow
from repro.whatif.jobmodel import JobTimeEstimate, estimate_job_time
from repro.whatif.scheduling import workflow_makespan
from repro.workflow.annotations import OperatorProfile, ProfileAnnotation
from repro.workflow.graph import JobVertex, Workflow

#: Simulated seconds charged per job under the fallback job-count cost model.
JOB_COUNT_COST_SECONDS = 1_000.0

#: Version of the analytical cost model as a whole (dataflow derivation, job
#: model, makespan combination).  Persisted cost caches are stamped with this
#: value and rejected on mismatch — bump it whenever a change can alter any
#: estimate, so stale caches self-invalidate instead of serving estimates a
#: current computation would not produce.
COST_MODEL_VERSION = 1

#: Cap on the per-engine profile-content-key memo (see ``_profile_key``).
_MAX_PROFILE_KEYS = 16_384

#: Cap on the per-engine vertex local-signature memo (see
#: ``_vertex_local_key``); entries pin their vertex, so the cap also bounds
#: how many otherwise-dead vertices the memo keeps alive.
_MAX_VERTEX_KEYS = 65_536


@dataclass
class WorkflowCostEstimate:
    """Estimated cost of a whole workflow."""

    total_s: float
    per_job: Dict[str, JobTimeEstimate] = field(default_factory=dict)
    dataset_sizes: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    cost_basis: str = "whatif"

    @property
    def num_jobs(self) -> int:
        """Number of jobs that were costed."""
        return len(self.per_job)

    def job_seconds(self, name: str) -> float:
        """Standalone estimated seconds of one job."""
        if name not in self.per_job:
            raise CostModelError(f"no estimate available for job {name!r}")
        return self.per_job[name].total_s


@dataclass(frozen=True, slots=True)
class _PipelineFlow:
    """Intermediate per-pipeline dataflow derived while costing a job."""

    map_output_records: float
    map_output_bytes: float
    output_records: float
    output_bytes: float
    map_cpu_units: float
    reduce_cpu_units: float
    is_map_only: bool
    output_dataset: str


@dataclass(frozen=True, slots=True)
class VertexCost:
    """Result of costing one job vertex: the estimate plus its size effects.

    ``output_contributions`` lists, in pipeline order, the
    ``(dataset_name, bytes, records)`` each pipeline adds to its output
    dataset.  Keeping them ordered makes replaying a cached entry reproduce
    the engine's floating-point accumulation *exactly*.
    """

    estimate: JobTimeEstimate
    output_contributions: Tuple[Tuple[str, float, float], ...]


@dataclass(frozen=True, slots=True)
class _PipelineLocalKey:
    """The vertex-content half of one pipeline's signature part.

    ``inputs`` keeps ``(dataset_name, allowed_partitions)`` pairs; the
    query-dependent facts (current dataset sizes, producer partition counts)
    are filled in per query by :meth:`WhatIfEngine.vertex_dataflow_signature`.
    """

    inputs: Tuple[Tuple[str, Optional[Tuple[int, ...]]], ...]
    map_ops: Tuple[Tuple[str, float], ...]
    reduce_ops: Tuple[Tuple[str, float, Tuple[str, ...]], ...]
    output_dataset: str


@dataclass(frozen=True, slots=True)
class _VertexLocalKey:
    """Everything a vertex's dataflow signature reads from the vertex itself.

    Memoized per shared-vertex identity: under copy-on-write plans an
    unchanged vertex is literally the same object across candidate plans, so
    its local key — the expensive part of the signature, walking every
    pipeline and operator — is derived once and reused by every candidate
    costing query.  Only the cheap query context (dataset sizes, producer
    partition counts, the chaining constraint's task count) is recomputed.
    """

    pipelines: Tuple[_PipelineLocalKey, ...]
    partitioner_fields: Tuple[str, ...]
    combiner_active: bool
    profile_key: Optional[Tuple]
    chained_input: bool


class WhatIfEngine:
    """Analytical cost estimation for annotated MapReduce workflows."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        #: id(profile) -> (pinned profile, content key); see ``_profile_key``.
        self._profile_keys: Dict[int, Tuple[ProfileAnnotation, Tuple]] = {}
        #: id(vertex) -> (pinned vertex, pinned job, pinned profile, local
        #: key); the whole-vertex extension of the ``_profile_key`` pattern.
        #: Valid while the pinned vertex still carries the pinned job and
        #: profile objects — any CoW privatization produces a new vertex (new
        #: id), and the rebind guards catch in-place ``.job`` / ``.profile``
        #: swaps on a surviving vertex.
        self._vertex_keys: Dict[int, Tuple[JobVertex, MapReduceJob, object, _VertexLocalKey]] = {}
        #: id(pipeline) -> (pinned pipeline, pipeline local key).  Pipelines
        #: are shared across config-only job derivations
        #: (:meth:`~repro.mapreduce.job.MapReduceJob.with_config`), so the
        #: per-pipeline keys survive RRS configuration samples even though
        #: each sample privatizes (re-creates) the tuned job's vertex.
        self._pipeline_keys: Dict[int, Tuple[object, _PipelineLocalKey]] = {}
        #: Incremental-signature counters (the ``BENCH_plan_cow.json``
        #: contract): how many vertex signatures were derived by walking the
        #: vertex (``signature_derivations``) vs. served from the identity
        #: memo (``signature_memo_hits``).
        self.signature_derivations = 0
        self.signature_memo_hits = 0
        #: Benchmark baseline switch: with the memo off every signature pays
        #: the full derivation walk (the pre-incremental behaviour); results
        #: are identical either way.
        self.signature_memo_enabled = True

    # ------------------------------------------------------------------ API
    def estimate_workflow(self, workflow: Workflow) -> WorkflowCostEstimate:
        """Estimate the total runtime of ``workflow`` on the engine's cluster."""
        if any(not vertex.annotations.has_profile for vertex in workflow.jobs):
            return self._job_count_estimate(workflow)
        return self.run_costing(workflow, self.cost_vertex)

    def run_costing(self, workflow: Workflow, cost_vertex_fn) -> WorkflowCostEstimate:
        """The one workflow-costing traversal, parameterized by per-vertex costing.

        Walks the topological levels, calls ``cost_vertex_fn(vertex,
        workflow, sizes)`` for each job (the cold :meth:`cost_vertex` here;
        a cache-aware wrapper in the cost service), propagates the returned
        output-size contributions, and combines per-level makespans.
        Sharing this single driver is what keeps the memoized service
        *exactly* equal to a cold estimation by construction.

        ``topological_levels()`` and ``base_datasets()`` answer from the
        workflow's cached topology index, so the per-query topology tax is
        O(jobs) — and amortizes to the cache lookup across the repeated
        costing of candidate plans, whose CoW copies share the index with
        the plan they were cloned from (see ``docs/costing.md``).
        """
        sizes = self._base_dataset_sizes(workflow)
        per_job: Dict[str, JobTimeEstimate] = {}
        per_level: List[List[JobTimeEstimate]] = []

        for level in workflow.topological_levels():
            level_estimates: List[JobTimeEstimate] = []
            for vertex in level:
                costed = cost_vertex_fn(vertex, workflow, sizes)
                per_job[vertex.name] = costed.estimate
                level_estimates.append(costed.estimate)
                self.apply_output_contributions(sizes, costed.output_contributions)
            per_level.append(level_estimates)

        total = workflow_makespan(per_level, self.cluster)
        return WorkflowCostEstimate(total_s=total, per_job=per_job, dataset_sizes=dict(sizes))

    # ------------------------------------------------------ per-vertex steps
    def cost_vertex(
        self,
        vertex: JobVertex,
        workflow: Workflow,
        sizes: Dict[str, Tuple[float, float]],
    ) -> VertexCost:
        """Cost one job given the dataset sizes known so far.

        The composable unit of workflow estimation: derives the job's
        pipeline flows once, turns them into both the time estimate and the
        output-size contributions the caller must apply (via
        :meth:`apply_output_contributions`) before costing downstream jobs.
        """
        dataflow, contributions = self.derive_vertex_dataflow(vertex, workflow, sizes)
        estimate = estimate_job_time(dataflow, vertex.job.config, self.cluster)
        return VertexCost(estimate=estimate, output_contributions=contributions)

    def derive_vertex_dataflow(
        self,
        vertex: JobVertex,
        workflow: Workflow,
        sizes: Dict[str, Tuple[float, float]],
    ) -> Tuple[JobDataflow, Tuple[Tuple[str, float, float], ...]]:
        """Derive one job's dataflow and output-size contributions together.

        The expensive half of :meth:`cost_vertex` — the operator-chain and
        selectivity arithmetic — separated out so the cost service can cache
        it under :meth:`vertex_dataflow_signature` and reuse it across
        configuration samples that only move job-model knobs.
        """
        profile = vertex.annotations.profile
        if profile is None:
            raise CostModelError(f"job {vertex.name!r} has no profile annotation")
        flows = self._vertex_flows(vertex, workflow, sizes, profile)
        dataflow = self._dataflow_from_flows(vertex, workflow, sizes, profile, flows)
        contributions = tuple(
            (flow.output_dataset, flow.output_bytes, flow.output_records) for flow in flows
        )
        return dataflow, contributions

    @staticmethod
    def apply_output_contributions(
        sizes: Dict[str, Tuple[float, float]],
        contributions: Tuple[Tuple[str, float, float], ...],
    ) -> None:
        """Add a costed vertex's output sizes into the size state, in order."""
        for dataset_name, out_bytes, out_records in contributions:
            previous = sizes.get(dataset_name, (0.0, 0.0))
            sizes[dataset_name] = (previous[0] + out_bytes, previous[1] + out_records)

    def vertex_dataflow_signature(
        self,
        vertex: JobVertex,
        workflow: Workflow,
        sizes: Dict[str, Tuple[float, float]],
    ) -> Tuple:
        """Everything the *dataflow derivation* of a vertex reads, hashable.

        Two vertices (possibly across different plan copies or even different
        workflows) with equal signatures derive identical
        :class:`~repro.whatif.dataflow.JobDataflow` and output-size
        contributions, so the signature is the coarse memoization key of the
        incremental :class:`~repro.whatif.service.CostService`.  Deliberately
        excludes the job *name* (structurally identical jobs share cache
        entries) and the configuration dimensions only the per-phase job
        model reads (reduce tasks, split size, sort buffer, compression) —
        those live in :meth:`jobmodel_config_key` — so RRS samples that only
        move job-model knobs still reuse the derived dataflow.

        Producer-dependent facts are only included where the derivation
        reads them — partition counts only for inputs with a
        partition-pruning filter, chained map tasks only under the chaining
        constraint — so a config change on a producer does not spuriously
        invalidate consumers.

        The signature is assembled **incrementally**: the vertex-content half
        (pipelines, operators, partitioner, profile key) is memoized per
        vertex identity (``_vertex_local_key``), so under copy-on-write plans
        only a candidate's *dirty* vertices — the ones its rewrite privatized
        — ever pay the full derivation walk.  The assembled tuple is
        bit-identical to a from-scratch derivation, so cache keys (and
        persisted caches) are unaffected by where the parts came from.
        """
        local = self._vertex_local_key(vertex)
        pipeline_parts = []
        for pipeline_key in local.pipelines:
            inputs = []
            for dataset_name, allowed in pipeline_key.inputs:
                partition_count = (
                    self._dataset_partition_count(dataset_name, workflow)
                    if allowed is not None
                    else None
                )
                inputs.append(
                    (dataset_name, sizes.get(dataset_name), allowed, partition_count)
                )
            pipeline_parts.append(
                (
                    tuple(inputs),
                    pipeline_key.map_ops,
                    pipeline_key.reduce_ops,
                    pipeline_key.output_dataset,
                )
            )
        chained_map_tasks = (
            self._chained_map_tasks(vertex, workflow) if local.chained_input else None
        )
        return (
            tuple(pipeline_parts),
            local.partitioner_fields,
            local.combiner_active,
            local.profile_key,
            (local.chained_input, chained_map_tasks),
        )

    def vertex_content_key(self, vertex: JobVertex) -> _VertexLocalKey:
        """Public content key of one job vertex's local half of the signature.

        Hashable, picklable, and content-equal across plan copies: pipelines
        (operators, inputs, outputs), partitioner fields, combiner activity,
        profile content, and the chaining flag.  Served by the incremental
        memo (:meth:`_vertex_local_key`), so deriving it for every vertex of
        a mostly-shared CoW plan is O(dirty vertices) — the decision cache
        (:mod:`repro.core.decision_cache`) builds unit signatures from it.
        """
        return self._vertex_local_key(vertex)

    def _vertex_local_key(self, vertex: JobVertex) -> _VertexLocalKey:
        """The vertex-content half of the signature, memoized by identity.

        Two memo levels, mirroring what copy-on-write plans actually share:

        * **vertex level** — an unchanged vertex is the *same object* across
          CoW plan copies, so its complete local key is served by identity
          (pinning the vertex keeps the id stable; the job/profile rebind
          guards catch in-place swaps on a surviving owned vertex);
        * **pipeline level** — a config-only derivation
          (:meth:`~repro.mapreduce.job.MapReduceJob.with_config`, the RRS
          sampling loop) creates a fresh vertex but *shares* the pipeline
          objects, so the expensive operator walks are reused per pipeline
          and only the cheap job-level facts (partitioner fields, combiner
          flag, profile key, chaining) are re-read.

        ``signature_derivations`` counts the vertices whose key required at
        least one real pipeline walk — the dirty cone; everything else is a
        ``signature_memo_hits``.
        """
        memo = self.signature_memo_enabled
        entry = self._vertex_keys.get(id(vertex)) if memo else None
        if (
            entry is not None
            and entry[0] is vertex
            and entry[1] is vertex.job
            and entry[2] is vertex.annotations.profile
        ):
            self.signature_memo_hits += 1
            return entry[3]

        job = vertex.job
        config = job.config
        walked = False
        pipeline_keys = []
        for pipeline in job.pipelines:
            pipeline_entry = self._pipeline_keys.get(id(pipeline)) if memo else None
            if pipeline_entry is not None and pipeline_entry[0] is pipeline:
                pipeline_keys.append(pipeline_entry[1])
                continue
            walked = True
            key = _PipelineLocalKey(
                inputs=tuple(
                    (dataset_name, pipeline.allowed_partitions(dataset_name))
                    for dataset_name in pipeline.input_datasets
                ),
                map_ops=tuple((op.name, op.cpu_cost_per_record) for op in pipeline.map_ops),
                reduce_ops=tuple(
                    (op.name, op.cpu_cost_per_record, op.group_fields)
                    for op in pipeline.reduce_ops
                ),
                output_dataset=pipeline.output_dataset,
            )
            pipeline_keys.append(key)
            if memo:
                if len(self._pipeline_keys) >= _MAX_VERTEX_KEYS:
                    self._pipeline_keys.clear()
                self._pipeline_keys[id(pipeline)] = (pipeline, key)

        if walked:
            self.signature_derivations += 1
        else:
            self.signature_memo_hits += 1
        local = _VertexLocalKey(
            pipelines=tuple(pipeline_keys),
            partitioner_fields=tuple(job.effective_partitioner.fields),
            combiner_active=job.has_combiner and config.combiner_enabled,
            profile_key=self._profile_key(vertex.annotations.profile),
            chained_input=config.chained_input,
        )
        if memo:
            if len(self._vertex_keys) >= _MAX_VERTEX_KEYS:
                self._vertex_keys.clear()
            self._vertex_keys[id(vertex)] = (vertex, job, vertex.annotations.profile, local)
        return local

    @staticmethod
    def jobmodel_config_key(config) -> Tuple:
        """The configuration dimensions read only by the per-phase job model."""
        return (
            config.num_reduce_tasks,
            config.split_size_mb,
            config.io_sort_mb,
            config.compress_map_output,
            config.compress_output,
        )

    def vertex_cost_signature(
        self,
        vertex: JobVertex,
        workflow: Workflow,
        sizes: Dict[str, Tuple[float, float]],
    ) -> Tuple[Tuple, Tuple]:
        """Full per-vertex cost key: (dataflow signature, job-model config key).

        Equal full signatures imply an identical :meth:`cost_vertex` result;
        equal first components alone imply an identical derived dataflow.
        """
        return (
            self.vertex_dataflow_signature(vertex, workflow, sizes),
            self.jobmodel_config_key(vertex.job.config),
        )

    def _profile_key(self, profile: Optional[ProfileAnnotation]) -> Optional[Tuple]:
        """Content-based key of a profile annotation, memoized by identity.

        Profiles are immutable and shared across plan copies, so keying the
        memo on ``id`` is safe as long as the profile object is pinned (kept
        referenced) by the memo itself — which also keeps the id stable.
        """
        if profile is None:
            return None
        entry = self._profile_keys.get(id(profile))
        if entry is not None and entry[0] is profile:
            return entry[1]
        key = (
            profile.map_selectivity,
            profile.reduce_selectivity,
            profile.map_output_record_bytes,
            profile.output_record_bytes,
            profile.input_record_bytes,
            profile.combine_reduction,
            profile.map_cpu_cost_per_record,
            profile.reduce_cpu_cost_per_record,
            tuple(sorted(profile.key_cardinalities.items())),
            tuple(
                sorted(
                    (name, op.selectivity, op.cpu_cost_per_record, op.output_record_bytes)
                    for name, op in profile.operator_profiles.items()
                )
            ),
        )
        if len(self._profile_keys) >= _MAX_PROFILE_KEYS:
            self._profile_keys.clear()
        self._profile_keys[id(profile)] = (profile, key)
        return key

    def estimate_job(
        self,
        vertex: JobVertex,
        workflow: Workflow,
        dataset_sizes: Optional[Dict[str, Tuple[float, float]]] = None,
    ) -> JobTimeEstimate:
        """Estimate a single job in the context of its workflow."""
        sizes = dataset_sizes if dataset_sizes is not None else self._estimate_sizes_until(workflow, vertex.name)
        dataflow = self.derive_job_dataflow(vertex, workflow, sizes)
        return estimate_job_time(dataflow, vertex.job.config, self.cluster)

    # --------------------------------------------------------- size tracking
    def base_dataset_sizes(self, workflow: Workflow) -> Dict[str, Tuple[float, float]]:
        """Initial size state: the (bytes, records) of every base dataset."""
        return self._base_dataset_sizes(workflow)

    def job_count_estimate(self, workflow: Workflow) -> WorkflowCostEstimate:
        """The profile-free fallback estimate (cost basis ``job_count``)."""
        return self._job_count_estimate(workflow)

    def _base_dataset_sizes(self, workflow: Workflow) -> Dict[str, Tuple[float, float]]:
        sizes: Dict[str, Tuple[float, float]] = {}
        for dataset_vertex in workflow.base_datasets():
            annotation = dataset_vertex.annotation
            if annotation is not None and annotation.size_bytes is not None:
                records = annotation.num_records or max(
                    1.0, annotation.size_bytes / 100.0
                )
                sizes[dataset_vertex.name] = (annotation.size_bytes, records)
            elif dataset_vertex.dataset is not None:
                dataset = dataset_vertex.dataset
                sizes[dataset_vertex.name] = (
                    max(1.0, dataset.logical_bytes),
                    max(1.0, dataset.logical_records),
                )
            else:
                raise CostModelError(
                    f"base dataset {dataset_vertex.name!r} has neither a size annotation "
                    "nor materialized data; the What-if engine cannot cost the workflow"
                )
        return sizes

    def _estimate_sizes_until(self, workflow: Workflow, job_name: str) -> Dict[str, Tuple[float, float]]:
        sizes = self._base_dataset_sizes(workflow)
        for vertex in workflow.topological_order():
            if vertex.name == job_name:
                break
            self._propagate_outputs(vertex, workflow, sizes)
        return sizes

    def _propagate_outputs(
        self,
        vertex: JobVertex,
        workflow: Workflow,
        sizes: Dict[str, Tuple[float, float]],
    ) -> None:
        profile = vertex.annotations.profile
        if profile is None:
            return
        for pipeline in vertex.job.pipelines:
            in_bytes, in_records = self._pipeline_input(vertex, pipeline, workflow, sizes)
            flow = self._pipeline_flow(pipeline, profile, in_bytes, in_records)
            previous = sizes.get(pipeline.output_dataset, (0.0, 0.0))
            sizes[pipeline.output_dataset] = (
                previous[0] + flow.output_bytes,
                previous[1] + flow.output_records,
            )

    # ------------------------------------------------------ dataflow derive
    def derive_job_dataflow(
        self,
        vertex: JobVertex,
        workflow: Workflow,
        sizes: Dict[str, Tuple[float, float]],
    ) -> JobDataflow:
        """Derive the expected dataflow of one job from annotations and sizes."""
        profile = vertex.annotations.profile
        if profile is None:
            raise CostModelError(f"job {vertex.name!r} has no profile annotation")
        flows = self._vertex_flows(vertex, workflow, sizes, profile)
        return self._dataflow_from_flows(vertex, workflow, sizes, profile, flows)

    def _vertex_flows(
        self,
        vertex: JobVertex,
        workflow: Workflow,
        sizes: Dict[str, Tuple[float, float]],
        profile: ProfileAnnotation,
    ) -> List[_PipelineFlow]:
        flows: List[_PipelineFlow] = []
        for pipeline in vertex.job.pipelines:
            p_bytes, p_records = self._pipeline_input(vertex, pipeline, workflow, sizes)
            flows.append(self._pipeline_flow(pipeline, profile, p_bytes, p_records))
        return flows

    def _dataflow_from_flows(
        self,
        vertex: JobVertex,
        workflow: Workflow,
        sizes: Dict[str, Tuple[float, float]],
        profile: ProfileAnnotation,
        flows: List[_PipelineFlow],
    ) -> JobDataflow:
        job = vertex.job
        input_bytes, input_records = self._job_input(vertex, workflow, sizes)

        map_output_records = sum(f.map_output_records for f in flows if not f.is_map_only)
        map_output_bytes = sum(f.map_output_bytes for f in flows if not f.is_map_only)
        output_records = sum(f.output_records for f in flows)
        output_bytes = sum(f.output_bytes for f in flows)
        map_cpu_units = sum(f.map_cpu_units for f in flows)
        reduce_cpu_units = sum(f.reduce_cpu_units for f in flows)

        shuffle_records = map_output_records
        shuffle_bytes = map_output_bytes
        if job.has_combiner and job.config.combiner_enabled and map_output_records > 0:
            reduction = max(0.0, min(1.0, profile.combine_reduction))
            shuffle_records = map_output_records * reduction
            shuffle_bytes = map_output_bytes * reduction

        reduce_input_records = shuffle_records
        map_cpu_per_record = map_cpu_units / input_records if input_records > 0 else 1.0
        reduce_cpu_per_record = (
            reduce_cpu_units / reduce_input_records if reduce_input_records > 0 else 1.0
        )

        distinct_groups = self._distinct_reduce_groups(job, profile)
        distinct_partition_keys = self._distinct_partition_keys(job, profile)
        chained_map_tasks = self._chained_map_tasks(vertex, workflow)

        return JobDataflow(
            input_bytes=max(input_bytes, 1.0),
            input_records=max(input_records, 1.0),
            map_output_records=map_output_records,
            map_output_bytes=map_output_bytes,
            shuffle_records=shuffle_records,
            shuffle_bytes=shuffle_bytes,
            reduce_input_records=reduce_input_records,
            output_records=output_records,
            output_bytes=output_bytes,
            map_cpu_cost_per_record=map_cpu_per_record,
            reduce_cpu_cost_per_record=reduce_cpu_per_record,
            map_only=job.is_map_only,
            pipeline_count=len(job.pipelines),
            distinct_reduce_groups=distinct_groups,
            distinct_partition_keys=distinct_partition_keys,
            chained_map_tasks=chained_map_tasks,
        )

    # ------------------------------------------------------------- internals
    def _job_input(
        self,
        vertex: JobVertex,
        workflow: Workflow,
        sizes: Dict[str, Tuple[float, float]],
    ) -> Tuple[float, float]:
        total_bytes = 0.0
        total_records = 0.0
        for dataset_name in vertex.job.input_datasets:
            d_bytes, d_records = self._dataset_size(dataset_name, sizes, vertex)
            fraction = self._job_prune_fraction(vertex.job, dataset_name, workflow)
            total_bytes += d_bytes * fraction
            total_records += d_records * fraction
        return total_bytes, total_records

    def _pipeline_input(
        self,
        vertex: JobVertex,
        pipeline: Pipeline,
        workflow: Workflow,
        sizes: Dict[str, Tuple[float, float]],
    ) -> Tuple[float, float]:
        total_bytes = 0.0
        total_records = 0.0
        for dataset_name in pipeline.input_datasets:
            d_bytes, d_records = self._dataset_size(dataset_name, sizes, vertex)
            fraction = self._prune_fraction(pipeline, dataset_name, workflow)
            total_bytes += d_bytes * fraction
            total_records += d_records * fraction
        return total_bytes, total_records

    def _dataset_size(
        self,
        dataset_name: str,
        sizes: Dict[str, Tuple[float, float]],
        vertex: JobVertex,
    ) -> Tuple[float, float]:
        if dataset_name in sizes:
            return sizes[dataset_name]
        raise CostModelError(
            f"size of dataset {dataset_name!r} (input of job {vertex.name!r}) is unknown; "
            "was the workflow traversed out of topological order?"
        )

    def _job_prune_fraction(self, job: MapReduceJob, dataset_name: str, workflow: Workflow) -> float:
        fractions = []
        for pipeline in job.pipelines:
            if pipeline.reads(dataset_name):
                fractions.append(self._prune_fraction(pipeline, dataset_name, workflow))
        if not fractions:
            return 1.0
        return max(fractions)

    def _prune_fraction(self, pipeline: Pipeline, dataset_name: str, workflow: Workflow) -> float:
        allowed = pipeline.allowed_partitions(dataset_name)
        if allowed is None:
            return 1.0
        total = self._dataset_partition_count(dataset_name, workflow)
        if total is None or total <= 0:
            return 1.0
        return max(0.0, min(1.0, len(allowed) / total))

    @staticmethod
    def _dataset_partition_count(dataset_name: str, workflow: Workflow) -> Optional[int]:
        producer = workflow.producer_of(dataset_name)
        if producer is not None:
            partitioner = producer.job.effective_partitioner
            if partitioner.kind == "range":
                return len(partitioner.split_points) + 1
            if not producer.job.is_map_only:
                return max(1, producer.job.config.num_reduce_tasks)
            return None
        if workflow.has_dataset(dataset_name):
            annotation = workflow.dataset(dataset_name).annotation
            if annotation is not None and annotation.split_points is not None:
                return len(annotation.split_points) + 1
        return None

    def _pipeline_flow(
        self,
        pipeline: Pipeline,
        profile: ProfileAnnotation,
        input_bytes: float,
        input_records: float,
    ) -> _PipelineFlow:
        record_bytes = input_bytes / input_records if input_records > 0 else profile.input_record_bytes
        records = input_records
        map_cpu_units = 0.0
        for op in pipeline.map_ops:
            op_profile = profile.operator(op.name) or OperatorProfile(
                selectivity=1.0,
                cpu_cost_per_record=op.cpu_cost_per_record,
                output_record_bytes=record_bytes,
            )
            map_cpu_units += records * op_profile.cpu_cost_per_record
            records *= op_profile.selectivity
            record_bytes = op_profile.output_record_bytes
        map_output_records = records
        map_output_bytes = records * record_bytes

        if pipeline.is_map_only:
            return _PipelineFlow(
                map_output_records=map_output_records,
                map_output_bytes=map_output_bytes,
                output_records=map_output_records,
                output_bytes=map_output_bytes,
                map_cpu_units=map_cpu_units,
                reduce_cpu_units=0.0,
                is_map_only=True,
                output_dataset=pipeline.output_dataset,
            )

        reduce_cpu_units = 0.0
        for op in pipeline.reduce_ops:
            op_profile = profile.operator(op.name) or OperatorProfile(
                selectivity=1.0,
                cpu_cost_per_record=op.cpu_cost_per_record,
                output_record_bytes=record_bytes,
            )
            reduce_cpu_units += records * op_profile.cpu_cost_per_record
            records *= op_profile.selectivity
            record_bytes = op_profile.output_record_bytes
        return _PipelineFlow(
            map_output_records=map_output_records,
            map_output_bytes=map_output_bytes,
            output_records=records,
            output_bytes=records * record_bytes,
            map_cpu_units=map_cpu_units,
            reduce_cpu_units=reduce_cpu_units,
            is_map_only=False,
            output_dataset=pipeline.output_dataset,
        )

    @staticmethod
    def _distinct_reduce_groups(job: MapReduceJob, profile: ProfileAnnotation) -> Optional[float]:
        total = 0.0
        found = False
        for pipeline in job.pipelines:
            fields = pipeline.shuffle_group_fields
            if not fields:
                continue
            cardinality = profile.cardinality(fields)
            if cardinality > 0:
                total += cardinality
                found = True
        return total if found else None

    @staticmethod
    def _distinct_partition_keys(job: MapReduceJob, profile: ProfileAnnotation) -> Optional[float]:
        if job.is_map_only:
            return None
        partitioner = job.effective_partitioner
        if not partitioner.fields:
            return None
        cardinality = profile.cardinality(partitioner.fields)
        return cardinality if cardinality > 0 else None

    @staticmethod
    def _chained_map_tasks(vertex: JobVertex, workflow: Workflow) -> Optional[int]:
        if not vertex.job.config.chained_input:
            return None
        for dataset_name in vertex.job.input_datasets:
            producer = workflow.producer_of(dataset_name)
            if producer is not None and not producer.job.is_map_only:
                return max(1, producer.job.config.num_reduce_tasks)
            if producer is not None and producer.job.config.chained_input:
                # Producer is itself chained; inherit its constraint.
                inherited = WhatIfEngine._chained_map_tasks(producer, workflow)
                if inherited is not None:
                    return inherited
        return None

    # ------------------------------------------------------------- fallback
    def _job_count_estimate(self, workflow: Workflow) -> WorkflowCostEstimate:
        per_job: Dict[str, JobTimeEstimate] = {}
        for vertex in workflow.jobs:
            per_job[vertex.name] = JobTimeEstimate(
                map_phase_s=JOB_COUNT_COST_SECONDS / 2,
                shuffle_s=0.0,
                reduce_phase_s=0.0 if vertex.job.is_map_only else JOB_COUNT_COST_SECONDS / 2,
                startup_s=0.0,
                num_map_tasks=1,
                num_reduce_tasks=vertex.job.config.num_reduce_tasks,
                map_task_s=0.0,
                reduce_task_s=0.0,
                details={"basis": 1.0},
            )
        total = sum(estimate.total_s for estimate in per_job.values())
        return WorkflowCostEstimate(total_s=total, per_job=per_job, cost_basis="job_count")
