"""The dataflow summary of one MapReduce job execution (real or hypothetical).

:class:`JobDataflow` is the common currency between the two costing paths:

* the What-if engine *derives* a dataflow from profile annotations, input
  dataset sizes, and a candidate configuration (estimation path);
* the actual-cost model *measures* a dataflow from execution counters
  (ground-truth path).

Either way, :func:`repro.whatif.jobmodel.estimate_job_time` turns the
dataflow plus configuration plus cluster spec into phase-by-phase times.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True, slots=True)
class JobDataflow:
    """Byte/record flow through one MapReduce job.

    ``slots=True``: dataflows are minted once per re-costed job in the
    optimizer's hot loop, so the slots layout trades the per-instance
    ``__dict__`` for a flat, smaller allocation (measured by the allocation
    probe in ``benchmarks/test_bench_plan_cow.py``).

    All byte and record quantities are *logical* (paper-scale) values: the
    evaluation datasets are generated at MB scale and scaled up through the
    datasets' ``scale_factor``, so simulated times land in the same regime as
    the paper's cluster runs.
    """

    input_bytes: float
    input_records: float
    map_output_records: float
    map_output_bytes: float
    shuffle_records: float
    shuffle_bytes: float
    reduce_input_records: float
    output_records: float
    output_bytes: float
    map_cpu_cost_per_record: float = 1.0
    reduce_cpu_cost_per_record: float = 1.0
    map_only: bool = False
    #: Number of parallel pipelines packed into the job (1 for vanilla jobs);
    #: drives the memory-contention penalty of horizontal packing.
    pipeline_count: int = 1
    #: Distinct reduce groups — an upper bound on useful reduce parallelism.
    distinct_reduce_groups: Optional[float] = None
    #: Distinct values of the partition-function fields — the hard cap on
    #: reduce parallelism after intra-job vertical packing narrows the
    #: partition key (paper §3.1 "performance implications").
    distinct_partition_keys: Optional[float] = None
    #: When the chaining constraint applies, map-side parallelism is fixed to
    #: the producer's reduce-task count.
    chained_map_tasks: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "input_bytes",
            "input_records",
            "map_output_records",
            "map_output_bytes",
            "shuffle_records",
            "shuffle_bytes",
            "reduce_input_records",
            "output_records",
            "output_bytes",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"dataflow quantity {name} cannot be negative")
        if self.pipeline_count < 1:
            raise ValueError("pipeline_count must be at least 1")

    @property
    def parallelism_cap(self) -> Optional[float]:
        """The tightest known bound on useful reduce parallelism."""
        caps = [c for c in (self.distinct_reduce_groups, self.distinct_partition_keys) if c]
        if not caps:
            return None
        return max(1.0, min(caps))

    def scaled(self, factor: float) -> "JobDataflow":
        """Scale every byte/record quantity by ``factor`` (cardinalities kept)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            input_bytes=self.input_bytes * factor,
            input_records=self.input_records * factor,
            map_output_records=self.map_output_records * factor,
            map_output_bytes=self.map_output_bytes * factor,
            shuffle_records=self.shuffle_records * factor,
            shuffle_bytes=self.shuffle_bytes * factor,
            reduce_input_records=self.reduce_input_records * factor,
            output_records=self.output_records * factor,
            output_bytes=self.output_bytes * factor,
        )
