"""Incremental, memoized, concurrency-safe cost estimation over the What-if engine.

Stubby's practicality hinges on enumeration being cheap relative to what-if
costing (paper §4–§5): the search costs the *full* workflow for every RRS
sample of every candidate subplan of every optimization unit, even though one
sample only perturbs a handful of jobs.  :class:`CostService` owns every cost
query of the optimizer stack and makes them incremental:

* each job vertex is keyed by a structural cost signature
  (:meth:`~repro.whatif.model.WhatIfEngine.vertex_cost_signature`: pipelines +
  configuration + profile content + input-size vector + the producer facts the
  job model actually reads), so unchanged jobs are served from a cache;
* only the mutated jobs — and downstream jobs whose input sizes or
  producer-dependent facts actually changed — are re-costed;
* the per-level makespan combination is recomputed from the (cheap) per-job
  estimates, so the returned :class:`~repro.whatif.model.WorkflowCostEstimate`
  is *exactly* equal to a cold full re-estimation.

The service is safe to share across the parallel unit search
(:mod:`repro.core.parallel`):

* both cache levels are **lock-striped** — entries are sharded by signature
  hash, each shard carrying its own lock and LRU order, so concurrent
  candidate costings in the thread backend contend per-shard, not globally;
* stats counters are updated atomically under a dedicated lock, and
  **attribution sinks** (:meth:`CostService.attribute_to`) let a caller
  capture the exact per-candidate stats delta on its own thread even while
  other candidates run concurrently;
* forked worker processes accumulate into their private (copy-on-write)
  shard and hand their new entries and stats back through
  :meth:`export_log_entries` / :meth:`absorb_entries` /
  :meth:`apply_external_delta` — the process backend's merge-on-join.

The service keeps :class:`CostServiceStats` (queries, cache hits, re-costed
jobs, effectively-full estimations) that the search surfaces per candidate,
per optimization unit, and per optimizer run; the counters are the basis of
the ``BENCH_cost_service.json`` and ``BENCH_parallel_search.json`` perf
trajectories.

Two features support the experiment orchestration layer
(:mod:`repro.experiments.scheduler`):

* **origin attribution** — every cache entry is tagged with the label active
  (:meth:`CostService.origin`) when it was stored; a lookup served by an
  entry stored under a *different* label counts as a cross-origin hit
  (``CostServiceStats.cross_origin_hits``).  The experiment harness labels
  each (workload × optimizer) cell, so ``OptimizerRun.cross_unit_hits``
  reports exactly how much one cell reaped from its neighbours or from a
  warm-started cache;
* **persistence** — :meth:`CostService.save_cache` /
  :meth:`CostService.load_cache` write and read a versioned snapshot of the
  signature→estimate store, keyed by the cluster spec and the cost-model
  version (:data:`~repro.whatif.model.COST_MODEL_VERSION`), so a later run
  against the same cluster warm-starts instead of recomputing.  Mismatched,
  corrupt, or truncated files are rejected (never trusted partially), saves
  are atomic (`os.replace`) so concurrent writers cannot interleave a torn
  file, and saves can **compact**: ``save_cache(max_entries=...)`` (or the
  ``STUBBY_COST_CACHE_MAX_ENTRIES`` environment variable) writes only the
  most-recently-used entries, bounding long-lived cache files.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.cluster import ClusterSpec
from repro.common.faults import fault_site
from repro.whatif.jobmodel import estimate_job_time
from repro.whatif.model import COST_MODEL_VERSION, VertexCost, WhatIfEngine, WorkflowCostEstimate
from repro.workflow.graph import Workflow

#: Default bound on cached per-vertex estimates; old entries are evicted LRU.
DEFAULT_MAX_CACHE_ENTRIES = 200_000

#: Number of independently locked cache shards (a power of two).
CACHE_STRIPES = 16

#: Cap on entries a forked worker ships back on merge-on-join; beyond this
#: the freshest entries win (export logs are append-ordered).
MAX_EXPORTED_ENTRIES = 20_000

#: On-disk layout version of persisted cache files; files written under a
#: different layout are rejected wholesale.  Version 2: the cached value
#: classes (:class:`~repro.whatif.model.VertexCost`,
#: :class:`~repro.whatif.jobmodel.JobTimeEstimate`, ...) moved to
#: ``__slots__`` layouts, which version-1 pickles cannot restore into.
CACHE_FORMAT_VERSION = 2

#: Environment variable naming a persisted-cache path; consulted by
#: :func:`resolve_cache_path` when no explicit path is configured, so a whole
#: stack (harness, benchmarks, examples) can opt into warm-starting from the
#: outside.
CACHE_PATH_ENV_VAR = "STUBBY_COST_CACHE"

#: Environment variable bounding how many entries :meth:`CostService.save_cache`
#: writes when the caller passes no explicit ``max_entries`` — the compaction
#: knob that keeps long-lived ``STUBBY_COST_CACHE`` files from growing without
#: bound.  Empty/absent means "write everything".
CACHE_MAX_ENTRIES_ENV_VAR = "STUBBY_COST_CACHE_MAX_ENTRIES"


def resolve_cache_max_entries(max_entries: Optional[int]) -> Optional[int]:
    """Normalize the save-compaction bound: explicit argument, else environment.

    ``None`` consults :data:`CACHE_MAX_ENTRIES_ENV_VAR`; a missing, empty, or
    malformed value means "no bound".  Non-positive bounds are treated as
    "no bound" as well — an empty persisted cache is never useful.
    """
    if max_entries is None:
        raw = os.environ.get(CACHE_MAX_ENTRIES_ENV_VAR, "").strip()
        if not raw:
            return None
        try:
            max_entries = int(raw)
        except ValueError:
            return None
    return max_entries if max_entries > 0 else None


def resolve_cache_path(path: Optional[str]) -> Optional[str]:
    """Normalize a cache-path argument: explicit path, else the environment.

    ``None`` consults :data:`CACHE_PATH_ENV_VAR`; an empty string (either
    explicit or from the environment) means "no persistence".
    """
    if path is not None:
        return path or None
    return os.environ.get(CACHE_PATH_ENV_VAR, "").strip() or None


def cluster_cache_key(cluster: ClusterSpec) -> Tuple:
    """Plain-data key identifying the cluster a cache was computed for.

    Cached estimates carry no cluster component of their own, so a persisted
    cache is only valid for a spec-identical cluster; the nested field tuple
    captures every dimension the cost model reads.
    """
    return dataclasses.astuple(cluster)


@dataclass(frozen=True)
class CacheLoadReport:
    """Outcome of one :meth:`CostService.load_cache` attempt."""

    loaded: bool
    entries: int = 0
    reason: str = ""


def atomic_pickle_write(path: str, payload) -> None:
    """Pickle ``payload`` to ``path`` atomically (temp file + ``os.replace``).

    Shared by the cost-cache and decision-cache persistence paths: concurrent
    writers race to a *complete* file, never a torn one.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that only resolves this package's classes and safe builtins.

    Cache files are data, but pickle is a program: a crafted file can name
    any importable callable.  Persisted payloads only ever contain plain
    containers and ``repro`` dataclasses, so everything else is refused —
    the standard-library hardening recipe.  Treat cache paths as trusted
    input regardless; this narrows the blast radius of a tampered file, it
    does not make hostile files safe.
    """

    _SAFE_BUILTINS = frozenset({"frozenset", "set", "complex", "bytearray"})

    def find_class(self, module, name):
        if module == "builtins" and name in self._SAFE_BUILTINS:
            return super().find_class(module, name)
        if module == "repro" or module.startswith("repro."):
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"cache file references forbidden global {module}.{name}"
        )


@dataclass
class CostServiceStats:
    """Counters describing how much what-if work the service performed.

    ``queries`` counts workflow-level estimate requests — exactly the number
    of full-workflow what-if computations a non-incremental engine would have
    performed.  ``full_estimates`` counts the queries that could not reuse
    *anything*: no cached job estimate and no cached dataflow derivation,
    i.e. the computations that really were full.

    Job-granularity counters: every query looks up each job once
    (``job_queries``).  A lookup is served one of three ways —

    * ``job_cache_hits`` — the final estimate itself was cached (nothing
      recomputed);
    * ``job_dataflow_hits`` — the expensive dataflow derivation was cached
      and only the cheap per-phase job model re-ran (a configuration sample
      moved job-model-only knobs such as reduce tasks or buffer sizes);
    * ``job_full_recosts`` — the job was derived and costed from scratch.

    ``fallback_queries`` counts profile-free queries answered by the trivial
    job-count model (neither cached nor worth caching).

    ``cross_origin_hits`` counts the cache hits (at either level) served by
    an entry stored under a different :meth:`CostService.origin` label than
    the one active at lookup time — e.g. a hit on another experiment cell's
    work, or on a warm-started persisted cache.
    """

    queries: int = 0
    fallback_queries: int = 0
    full_estimates: int = 0
    job_queries: int = 0
    job_cache_hits: int = 0
    job_dataflow_hits: int = 0
    job_full_recosts: int = 0
    cross_origin_hits: int = 0

    @property
    def job_cache_misses(self) -> int:
        """Lookups whose final estimate had to be recomputed."""
        return self.job_dataflow_hits + self.job_full_recosts

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of job lookups whose estimate was served from the cache."""
        if self.job_queries == 0:
            return 0.0
        return self.job_cache_hits / self.job_queries

    @property
    def reuse_rate(self) -> float:
        """Fraction of job lookups that reused cached work at either level."""
        if self.job_queries == 0:
            return 0.0
        return (self.job_cache_hits + self.job_dataflow_hits) / self.job_queries

    @property
    def jobs_recosted(self) -> int:
        """Jobs whose estimate was recomputed (at either level)."""
        return self.job_cache_misses

    @property
    def effective_full_estimates(self) -> float:
        """Job-weighted equivalent number of full-workflow estimations.

        From-scratch job derivations divided by the mean workflow size per
        query: the amount of full-depth costing work actually done,
        expressed in units of "one cold workflow estimation".
        """
        if self.job_queries == 0 or self.queries == 0:
            return float(self.full_estimates)
        return self.job_full_recosts * self.queries / self.job_queries

    def accumulate(self, delta: "CostServiceStats") -> None:
        """Add another stats delta into this one, in place."""
        self.queries += delta.queries
        self.fallback_queries += delta.fallback_queries
        self.full_estimates += delta.full_estimates
        self.job_queries += delta.job_queries
        self.job_cache_hits += delta.job_cache_hits
        self.job_dataflow_hits += delta.job_dataflow_hits
        self.job_full_recosts += delta.job_full_recosts
        self.cross_origin_hits += delta.cross_origin_hits

    def snapshot(self) -> "CostServiceStats":
        """Immutable copy of the current counters."""
        return replace(self)

    def since(self, before: "CostServiceStats") -> "CostServiceStats":
        """Counter delta between this snapshot and an earlier one."""
        return CostServiceStats(
            queries=self.queries - before.queries,
            fallback_queries=self.fallback_queries - before.fallback_queries,
            full_estimates=self.full_estimates - before.full_estimates,
            job_queries=self.job_queries - before.job_queries,
            job_cache_hits=self.job_cache_hits - before.job_cache_hits,
            job_dataflow_hits=self.job_dataflow_hits - before.job_dataflow_hits,
            job_full_recosts=self.job_full_recosts - before.job_full_recosts,
            cross_origin_hits=self.cross_origin_hits - before.cross_origin_hits,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports and benchmark JSON."""
        return {
            "queries": self.queries,
            "fallback_queries": self.fallback_queries,
            "full_estimates": self.full_estimates,
            "effective_full_estimates": self.effective_full_estimates,
            "job_queries": self.job_queries,
            "job_cache_hits": self.job_cache_hits,
            "job_dataflow_hits": self.job_dataflow_hits,
            "job_full_recosts": self.job_full_recosts,
            "cross_origin_hits": self.cross_origin_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "reuse_rate": self.reuse_rate,
        }


class _ShardedCache:
    """A lock-striped LRU mapping from signature tuples to cache entries.

    Signatures are distributed across :data:`CACHE_STRIPES` shards by hash;
    each shard has its own lock, insertion order, and share of the total
    capacity, so two threads costing different jobs almost never contend on
    the same lock.  Shard placement affects only contention — never the
    cached values — so it is free to vary between processes.
    """

    def __init__(self, max_entries: int) -> None:
        self.max_entries = max(1, max_entries)
        # A shard never holds more than its share of the total capacity, so
        # the whole cache stays within max_entries; tiny capacities use fewer
        # stripes rather than rounding every shard up to one entry.
        self._stripes = max(1, min(CACHE_STRIPES, self.max_entries))
        per_shard = self.max_entries // self._stripes
        self._shards: List[Tuple[threading.Lock, "OrderedDict[Tuple, object]", int]] = [
            (threading.Lock(), OrderedDict(), per_shard) for _ in range(self._stripes)
        ]

    def _shard(self, signature: Tuple):
        return self._shards[hash(signature) % self._stripes]

    def lookup(self, signature: Tuple):
        """Return the ``(value, origin)`` pair for ``signature``, or ``None``."""
        lock, entries, _cap = self._shard(signature)
        with lock:
            entry = entries.get(signature)
            if entry is not None:
                entries.move_to_end(signature)
            return entry

    def store(self, signature: Tuple, value, origin=None) -> bool:
        """Insert a value (tagged with its origin); True when the signature was new."""
        lock, entries, cap = self._shard(signature)
        with lock:
            new = signature not in entries
            entries[signature] = (value, origin)
            if len(entries) > cap:
                entries.popitem(last=False)
            return new

    def items(self) -> List[Tuple[Tuple, object, object]]:
        """Snapshot of every ``(signature, value, origin)`` currently cached."""
        snapshot: List[Tuple[Tuple, object, object]] = []
        for rows in self.shard_items():
            snapshot.extend(rows)
        return snapshot

    def shard_items(self) -> List[List[Tuple[Tuple, object, object]]]:
        """Per-shard snapshots, each in LRU→MRU order.

        Each stripe lock is held only for the raw ``dict.items()`` copy; the
        row tuples are built outside the lock, so a concurrent worker merge
        (or a big save) no longer stalls lookups for the whole rebuild.
        """
        snapshot: List[List[Tuple[Tuple, object, object]]] = []
        for lock, entries, _cap in self._shards:
            with lock:
                raw = list(entries.items())
            snapshot.append(
                [(signature, value, origin) for signature, (value, origin) in raw]
            )
        return snapshot

    def discard(self, signature: Tuple) -> bool:
        """Drop one signature; True when it was present."""
        lock, entries, _cap = self._shard(signature)
        with lock:
            return entries.pop(signature, None) is not None

    def clear(self) -> None:
        for lock, entries, _cap in self._shards:
            with lock:
                entries.clear()

    def __len__(self) -> int:
        return sum(len(entries) for _lock, entries, _cap in self._shards)


class CostService:
    """Memoizing façade over :class:`WhatIfEngine` for the optimizer stack.

    All cost queries of :class:`~repro.core.search.StubbySearch`,
    :class:`~repro.core.optimizer.StubbyOptimizer`, and the baseline
    optimizers go through one service instance, so cache entries are shared
    across candidate subplans, RRS samples, units, and phases — candidate
    plans are copy-on-write clones whose unchanged vertices are *shared
    objects*, so their signatures come from the engine's identity memo, and
    the content-based keys make even privatized copies cache-transparent.
    One instance may be queried from several
    search threads concurrently; see the module docstring for the
    concurrency model.

    ``enable_cache=False`` turns the service into a pass-through that costs
    every job cold (used by tests to prove the memoized results are
    identical).

    ``cache_path`` opts into persistence: the constructor warm-starts from
    the file when it exists and is valid (:attr:`last_load` records the
    outcome either way); :meth:`save_cache` writes the current store back.
    Loading never raises on a bad file — an invalid cache is worth exactly
    as much as no cache.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        engine: Optional[WhatIfEngine] = None,
        max_cache_entries: int = DEFAULT_MAX_CACHE_ENTRIES,
        enable_cache: bool = True,
        cache_path: Optional[str] = None,
    ) -> None:
        self.cluster = cluster
        self.engine = engine or WhatIfEngine(cluster)
        self.stats = CostServiceStats()
        self.enable_cache = enable_cache
        self.max_cache_entries = max(1, max_cache_entries)
        #: Fine cache: full vertex signature -> exact VertexCost.
        self._cache = _ShardedCache(self.max_cache_entries)
        #: Coarse cache: dataflow signature -> (JobDataflow, contributions);
        #: reused when only job-model config knobs moved.
        self._dataflow_cache = _ShardedCache(self.max_cache_entries)
        self._stats_lock = threading.Lock()
        self._sinks = threading.local()
        self._origin = threading.local()
        #: Append-only log of entries stored since :meth:`start_export_log`;
        #: enabled only inside forked workers (single-threaded), so it needs
        #: no lock of its own.
        self._export_log: Optional[List[Tuple[str, Tuple, object, object]]] = None
        #: Persistence target (``None`` disables save/load by default).
        self.cache_path = cache_path
        #: Outcome of the constructor's warm-start attempt (``None`` when no
        #: ``cache_path`` was configured or caching is disabled).
        self.last_load: Optional[CacheLoadReport] = None
        if self.cache_path and self.enable_cache:
            self.last_load = self.load_cache(self.cache_path)

    # ------------------------------------------------------------------ API
    def estimate_workflow(self, workflow: Workflow) -> WorkflowCostEstimate:
        """Estimate ``workflow``, reusing cached per-job work where valid."""
        fault_site("whatif.estimate", jobs=len(workflow.jobs))
        delta = CostServiceStats(queries=1)
        if any(not vertex.annotations.has_profile for vertex in workflow.jobs):
            delta.fallback_queries = 1
            self._apply_delta(delta)
            return self.engine.job_count_estimate(workflow)

        # Per-query tallies:
        # [estimate hits, dataflow hits, full recosts, cross-origin hits].
        tallies = [0, 0, 0, 0]
        estimate = self.engine.run_costing(
            workflow, lambda vertex, wf, sizes: self._cost_vertex_cached(vertex, wf, sizes, tallies)
        )

        estimate_hits, dataflow_hits, full_recosts, cross_origin = tallies
        delta.job_queries = estimate_hits + dataflow_hits + full_recosts
        delta.job_cache_hits = estimate_hits
        delta.job_dataflow_hits = dataflow_hits
        delta.job_full_recosts = full_recosts
        delta.cross_origin_hits = cross_origin
        if estimate_hits == 0 and dataflow_hits == 0:
            delta.full_estimates = 1
        self._apply_delta(delta)
        return estimate

    def _cost_vertex_cached(self, vertex, workflow, sizes, tallies) -> VertexCost:
        """Cache-aware drop-in for :meth:`WhatIfEngine.cost_vertex`.

        Plugged into the engine's shared :meth:`~WhatIfEngine.run_costing`
        traversal, so the service cannot drift from the cold path.
        """
        engine = self.engine
        current_origin = self.current_origin()
        dataflow_sig = engine.vertex_dataflow_signature(vertex, workflow, sizes)
        full_sig = (dataflow_sig, engine.jobmodel_config_key(vertex.job.config))
        cached = self._lookup(self._cache, full_sig)
        if cached is not None:
            costed, entry_origin = cached
            tallies[0] += 1
            if entry_origin != current_origin:
                tallies[3] += 1
            return costed
        cached = self._lookup(self._dataflow_cache, dataflow_sig)
        if cached is not None:
            derived, entry_origin = cached
            tallies[1] += 1
            if entry_origin != current_origin:
                tallies[3] += 1
        else:
            tallies[2] += 1
            derived = engine.derive_vertex_dataflow(vertex, workflow, sizes)
            self._store(self._dataflow_cache, "dataflow", dataflow_sig, derived)
        dataflow, contributions = derived
        estimate = estimate_job_time(dataflow, vertex.job.config, self.cluster)
        costed = VertexCost(estimate=estimate, output_contributions=contributions)
        self._store(self._cache, "estimate", full_sig, costed)
        return costed

    def estimate_plan(self, plan) -> WorkflowCostEstimate:
        """Convenience: estimate a :class:`~repro.core.plan.Plan`'s workflow."""
        return self.estimate_workflow(plan.workflow)

    # ------------------------------------------------------- stats plumbing
    def _apply_delta(self, delta: CostServiceStats) -> None:
        """Fold a stats delta into the global counters and this thread's sinks."""
        with self._stats_lock:
            self.stats.accumulate(delta)
        for sink in self._sink_stack():
            sink.accumulate(delta)

    def _sink_stack(self) -> List[CostServiceStats]:
        stack = getattr(self._sinks, "stack", None)
        if stack is None:
            stack = []
            self._sinks.stack = stack
        return stack

    @contextmanager
    def attribute_to(self, sink: CostServiceStats):
        """Also credit this thread's queries to ``sink`` while active.

        Sinks are thread-local and stack: the search wraps each candidate
        costing in one so :class:`~repro.core.search.SubplanRecord` carries
        its exact stats delta even when candidates run concurrently — the
        fix for the ordering-dependent ambient-window attribution.
        """
        stack = self._sink_stack()
        stack.append(sink)
        try:
            yield sink
        finally:
            stack.pop()

    def apply_external_delta(self, delta: CostServiceStats) -> None:
        """Fold in work performed by a foreign process (merge-on-join).

        The worker's queries never touched this process's counters, so the
        delta goes through the full path: global stats plus the calling
        thread's attribution sinks.
        """
        self._apply_delta(delta)

    def apply_sink_only_delta(self, delta: CostServiceStats) -> None:
        """Re-attribute work already counted globally to this thread's sinks.

        Used by the thread backend: worker threads updated the shared global
        counters live, but the calling thread's sinks (per-candidate stats)
        never saw the work.
        """
        for sink in self._sink_stack():
            sink.accumulate(delta)

    def stats_snapshot(self) -> CostServiceStats:
        """Consistent copy of the global counters (for windows/reports)."""
        with self._stats_lock:
            return self.stats.snapshot()

    # ---------------------------------------------------- origin attribution
    @contextmanager
    def origin(self, label: Optional[str]):
        """Label this thread's cache activity as coming from ``label``.

        Entries stored while the label is active are tagged with it; a later
        lookup under a *different* label that hits such an entry counts as a
        ``cross_origin_hits`` — the experiment harness's measure of how much
        one cell reuses from other cells or from a warm-started cache.  The
        label is thread-local (and inherited by forked workers), so
        concurrent cells never mislabel each other's work.
        """
        previous = self.current_origin()
        self._origin.label = label
        try:
            yield
        finally:
            self._origin.label = previous

    def current_origin(self) -> Optional[str]:
        """The origin label active on the calling thread (``None`` outside)."""
        return getattr(self._origin, "label", None)

    # ------------------------------------------------- process merge-on-join
    def start_export_log(self) -> None:
        """Begin recording newly stored cache entries (forked workers only)."""
        self._export_log = []

    def export_log_entries(self) -> List[Tuple[str, Tuple, object, object]]:
        """Drain the export log: ``(level, signature, value, origin)`` rows.

        Bounded by :data:`MAX_EXPORTED_ENTRIES`, keeping the *freshest*
        entries when over budget (the log is append-ordered).
        """
        log = self._export_log or []
        self._export_log = None
        return log[-MAX_EXPORTED_ENTRIES:]

    def absorb_entries(self, entries: List[Tuple[str, Tuple, object, object]]) -> None:
        """Merge cache entries exported by a worker into this service.

        Signatures are content-based and entries are exact, so merging is
        idempotent and order-independent — absorbing a duplicate simply
        refreshes its LRU position.  Each entry keeps the origin label it was
        stored under, so cross-origin attribution survives the merge (and a
        round-trip through :meth:`save_cache`/:meth:`load_cache`).
        """
        for level, signature, value, origin in entries:
            cache = self._cache if level == "estimate" else self._dataflow_cache
            self._store(cache, level, signature, value, log=False, origin=origin)

    # ------------------------------------------------------------ persistence
    def save_cache(
        self,
        path: Optional[str] = None,
        max_entries: Optional[int] = None,
        merge_first: bool = False,
    ) -> int:
        """Persist both cache levels to ``path`` (default: ``cache_path``).

        The snapshot is stamped with the on-disk format version, the cost
        model version, and the cluster key, so :meth:`load_cache` can reject
        anything a current computation would not reproduce.  The write goes
        through a temporary file in the target directory and an atomic
        ``os.replace``, so concurrent writers race to a *complete* file —
        never a torn one.  Returns the number of entries written.

        ``max_entries`` (default: the ``STUBBY_COST_CACHE_MAX_ENTRIES``
        environment variable; unset means unbounded) **compacts on persist**:
        only the most-recently-used entries are written, so a long-lived
        cache file stops growing without bound across runs.  Recency is
        tracked per stripe (each shard's LRU order); the compacted snapshot
        drains the stripes' MRU ends round-robin, which preserves global
        recency up to stripe granularity.  A compacted file is an ordinary
        cache file — loading it is just a smaller warm start.

        ``merge_first=True`` re-absorbs the current file (if valid) before
        writing, so a process that warm-started long ago — or never — does
        not shrink a richer store some other process persisted meanwhile.
        Entries are content-keyed and exact, so the merge is conflict-free
        by construction; the read-merge-write is not transactional, merely
        last-writer-wins over a superset of both stores.
        """
        path = path or self.cache_path
        if not path:
            raise ValueError("no cache path configured (pass path= or set cache_path)")
        if merge_first:
            self.load_cache(path)
        entries = self._entries_snapshot(resolve_cache_max_entries(max_entries))
        payload = {
            "format_version": CACHE_FORMAT_VERSION,
            "model_version": COST_MODEL_VERSION,
            "cluster_key": cluster_cache_key(self.cluster),
            "entries": entries,
        }
        atomic_pickle_write(path, payload)
        # After the atomic replace: a corrupt/truncate fault here models
        # bit-rot of a complete file, which the next load must reject whole.
        fault_site("costcache.save", path=path)
        return len(entries)

    def load_cache(self, path: Optional[str] = None) -> CacheLoadReport:
        """Warm-start from a persisted cache file; never raises on bad input.

        Returns a :class:`CacheLoadReport` saying whether the file was
        absorbed and, if not, why: missing file, unreadable/corrupt/truncated
        content, or a format/model/cluster stamp mismatch.  Rejection is
        all-or-nothing — a cache that cannot be fully trusted contributes
        nothing.
        """
        path = path or self.cache_path
        if not path:
            raise ValueError("no cache path configured (pass path= or set cache_path)")
        # Before the open: a corrupt/truncate fault mangles what we then read.
        fault_site("costcache.load", path=path)
        if not os.path.exists(path):
            return CacheLoadReport(loaded=False, reason="no cache file")
        try:
            with open(path, "rb") as handle:
                payload = _RestrictedUnpickler(handle).load()
        except Exception as exc:  # corrupt, truncated, or not a pickle at all
            return CacheLoadReport(
                loaded=False, reason=f"unreadable cache file ({type(exc).__name__})"
            )
        if not isinstance(payload, dict):
            return CacheLoadReport(loaded=False, reason="malformed cache payload")
        if payload.get("format_version") != CACHE_FORMAT_VERSION:
            return CacheLoadReport(
                loaded=False,
                reason=f"format version mismatch ({payload.get('format_version')!r} "
                f"!= {CACHE_FORMAT_VERSION!r})",
            )
        if payload.get("model_version") != COST_MODEL_VERSION:
            return CacheLoadReport(
                loaded=False,
                reason=f"cost model version mismatch ({payload.get('model_version')!r} "
                f"!= {COST_MODEL_VERSION!r})",
            )
        if payload.get("cluster_key") != cluster_cache_key(self.cluster):
            return CacheLoadReport(
                loaded=False, reason="cache was computed for a different ClusterSpec"
            )
        entries = payload.get("entries")
        if not isinstance(entries, list):
            return CacheLoadReport(loaded=False, reason="malformed cache payload")
        # Validate every row *before* absorbing any, so rejection really is
        # all-or-nothing — a file that is half right contributes nothing.
        for row in entries:
            if not (
                isinstance(row, tuple)
                and len(row) == 4
                and row[0] in ("estimate", "dataflow")
                and isinstance(row[1], tuple)
            ):
                return CacheLoadReport(loaded=False, reason="malformed cache entries")
        self.absorb_entries(entries)
        return CacheLoadReport(loaded=True, entries=len(entries), reason="ok")

    def _entries_snapshot(
        self, max_entries: Optional[int] = None
    ) -> List[Tuple[str, Tuple, object, object]]:
        """Both cache levels as the plain rows :meth:`absorb_entries` accepts.

        With ``max_entries`` set, keeps only the most-recently-used rows:
        every (level, stripe) list arrives in LRU→MRU order, so the bound is
        filled by draining the MRU ends round-robin across all stripes of
        both levels.  Rows are returned oldest-first either way, so a later
        :meth:`absorb_entries` re-establishes the same relative recency.
        """
        per_stripe: List[List[Tuple[str, Tuple, object, object]]] = []
        total = 0
        for level, cache in (("estimate", self._cache), ("dataflow", self._dataflow_cache)):
            for rows in cache.shard_items():
                stamped = [(level, signature, value, origin) for signature, value, origin in rows]
                per_stripe.append(stamped)
                total += len(stamped)

        if max_entries is None or total <= max_entries:
            return [row for rows in per_stripe for row in rows]

        remaining = [len(rows) for rows in per_stripe]
        kept: List[Tuple[str, Tuple, object, object]] = []
        while len(kept) < max_entries:
            for index, rows in enumerate(per_stripe):
                if remaining[index] == 0:
                    continue
                remaining[index] -= 1
                kept.append(rows[remaining[index]])
                if len(kept) >= max_entries:
                    break
        kept.reverse()
        return kept

    # ------------------------------------------------------------ cache mgmt
    def invalidate(self) -> None:
        """Drop every cached per-job estimate and dataflow (stats are kept)."""
        self._cache.clear()
        self._dataflow_cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of cached per-vertex estimates."""
        return len(self._cache)

    def _lookup(self, cache: _ShardedCache, signature: Tuple):
        if not self.enable_cache:
            return None
        return cache.lookup(signature)

    def _store(
        self,
        cache: _ShardedCache,
        level: str,
        signature: Tuple,
        value,
        log: bool = True,
        origin=None,
    ) -> None:
        if not self.enable_cache:
            return
        if origin is None:
            origin = self.current_origin()
        new = cache.store(signature, value, origin)
        if new and log and self._export_log is not None:
            self._export_log.append((level, signature, value, origin))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostService(entries={len(self._cache)}, queries={self.stats.queries}, "
            f"hit_rate={self.stats.cache_hit_rate:.2f})"
        )
