"""Incremental, memoized cost-estimation service over the What-if engine.

Stubby's practicality hinges on enumeration being cheap relative to what-if
costing (paper §4–§5): the search costs the *full* workflow for every RRS
sample of every candidate subplan of every optimization unit, even though one
sample only perturbs a handful of jobs.  :class:`CostService` owns every cost
query of the optimizer stack and makes them incremental:

* each job vertex is keyed by a structural cost signature
  (:meth:`~repro.whatif.model.WhatIfEngine.vertex_cost_signature`: pipelines +
  configuration + profile content + input-size vector + the producer facts the
  job model actually reads), so unchanged jobs are served from a cache;
* only the mutated jobs — and downstream jobs whose input sizes or
  producer-dependent facts actually changed — are re-costed;
* the per-level makespan combination is recomputed from the (cheap) per-job
  estimates, so the returned :class:`~repro.whatif.model.WorkflowCostEstimate`
  is *exactly* equal to a cold full re-estimation.

The service keeps :class:`CostServiceStats` (queries, cache hits, re-costed
jobs, effectively-full estimations) that the search surfaces per optimization
unit and per optimizer run; the counters are the basis of the
``BENCH_cost_service.json`` perf trajectory.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.cluster import ClusterSpec
from repro.whatif.jobmodel import estimate_job_time
from repro.whatif.model import VertexCost, WhatIfEngine, WorkflowCostEstimate
from repro.workflow.graph import Workflow

#: Default bound on cached per-vertex estimates; old entries are evicted LRU.
DEFAULT_MAX_CACHE_ENTRIES = 200_000


@dataclass
class CostServiceStats:
    """Counters describing how much what-if work the service performed.

    ``queries`` counts workflow-level estimate requests — exactly the number
    of full-workflow what-if computations a non-incremental engine would have
    performed.  ``full_estimates`` counts the queries that could not reuse
    *anything*: no cached job estimate and no cached dataflow derivation,
    i.e. the computations that really were full.

    Job-granularity counters: every query looks up each job once
    (``job_queries``).  A lookup is served one of three ways —

    * ``job_cache_hits`` — the final estimate itself was cached (nothing
      recomputed);
    * ``job_dataflow_hits`` — the expensive dataflow derivation was cached
      and only the cheap per-phase job model re-ran (a configuration sample
      moved job-model-only knobs such as reduce tasks or buffer sizes);
    * ``job_full_recosts`` — the job was derived and costed from scratch.

    ``fallback_queries`` counts profile-free queries answered by the trivial
    job-count model (neither cached nor worth caching).
    """

    queries: int = 0
    fallback_queries: int = 0
    full_estimates: int = 0
    job_queries: int = 0
    job_cache_hits: int = 0
    job_dataflow_hits: int = 0
    job_full_recosts: int = 0

    @property
    def job_cache_misses(self) -> int:
        """Lookups whose final estimate had to be recomputed."""
        return self.job_dataflow_hits + self.job_full_recosts

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of job lookups whose estimate was served from the cache."""
        if self.job_queries == 0:
            return 0.0
        return self.job_cache_hits / self.job_queries

    @property
    def reuse_rate(self) -> float:
        """Fraction of job lookups that reused cached work at either level."""
        if self.job_queries == 0:
            return 0.0
        return (self.job_cache_hits + self.job_dataflow_hits) / self.job_queries

    @property
    def jobs_recosted(self) -> int:
        """Jobs whose estimate was recomputed (at either level)."""
        return self.job_cache_misses

    @property
    def effective_full_estimates(self) -> float:
        """Job-weighted equivalent number of full-workflow estimations.

        From-scratch job derivations divided by the mean workflow size per
        query: the amount of full-depth costing work actually done,
        expressed in units of "one cold workflow estimation".
        """
        if self.job_queries == 0 or self.queries == 0:
            return float(self.full_estimates)
        return self.job_full_recosts * self.queries / self.job_queries

    def snapshot(self) -> "CostServiceStats":
        """Immutable copy of the current counters."""
        return replace(self)

    def since(self, before: "CostServiceStats") -> "CostServiceStats":
        """Counter delta between this snapshot and an earlier one."""
        return CostServiceStats(
            queries=self.queries - before.queries,
            fallback_queries=self.fallback_queries - before.fallback_queries,
            full_estimates=self.full_estimates - before.full_estimates,
            job_queries=self.job_queries - before.job_queries,
            job_cache_hits=self.job_cache_hits - before.job_cache_hits,
            job_dataflow_hits=self.job_dataflow_hits - before.job_dataflow_hits,
            job_full_recosts=self.job_full_recosts - before.job_full_recosts,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports and benchmark JSON."""
        return {
            "queries": self.queries,
            "fallback_queries": self.fallback_queries,
            "full_estimates": self.full_estimates,
            "effective_full_estimates": self.effective_full_estimates,
            "job_queries": self.job_queries,
            "job_cache_hits": self.job_cache_hits,
            "job_dataflow_hits": self.job_dataflow_hits,
            "job_full_recosts": self.job_full_recosts,
            "cache_hit_rate": self.cache_hit_rate,
            "reuse_rate": self.reuse_rate,
        }


class CostService:
    """Memoizing façade over :class:`WhatIfEngine` for the optimizer stack.

    All cost queries of :class:`~repro.core.search.StubbySearch`,
    :class:`~repro.core.optimizer.StubbyOptimizer`, and the baseline
    optimizers go through one service instance, so cache entries are shared
    across candidate subplans, RRS samples, units, and phases — candidate
    plans are deep copies, but the content-based vertex signatures make the
    copies cache-transparent.

    ``enable_cache=False`` turns the service into a pass-through that costs
    every job cold (used by tests to prove the memoized results are
    identical).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        engine: Optional[WhatIfEngine] = None,
        max_cache_entries: int = DEFAULT_MAX_CACHE_ENTRIES,
        enable_cache: bool = True,
    ) -> None:
        self.cluster = cluster
        self.engine = engine or WhatIfEngine(cluster)
        self.stats = CostServiceStats()
        self.enable_cache = enable_cache
        self.max_cache_entries = max(1, max_cache_entries)
        #: Fine cache: full vertex signature -> exact VertexCost.
        self._cache: "OrderedDict[Tuple, VertexCost]" = OrderedDict()
        #: Coarse cache: dataflow signature -> (JobDataflow, contributions);
        #: reused when only job-model config knobs moved.
        self._dataflow_cache: "OrderedDict[Tuple, Tuple]" = OrderedDict()

    # ------------------------------------------------------------------ API
    def estimate_workflow(self, workflow: Workflow) -> WorkflowCostEstimate:
        """Estimate ``workflow``, reusing cached per-job work where valid."""
        self.stats.queries += 1
        if any(not vertex.annotations.has_profile for vertex in workflow.jobs):
            self.stats.fallback_queries += 1
            return self.engine.job_count_estimate(workflow)

        # Per-query tallies: [estimate hits, dataflow hits, full recosts].
        tallies = [0, 0, 0]
        estimate = self.engine.run_costing(
            workflow, lambda vertex, wf, sizes: self._cost_vertex_cached(vertex, wf, sizes, tallies)
        )

        estimate_hits, dataflow_hits, full_recosts = tallies
        self.stats.job_queries += estimate_hits + dataflow_hits + full_recosts
        self.stats.job_cache_hits += estimate_hits
        self.stats.job_dataflow_hits += dataflow_hits
        self.stats.job_full_recosts += full_recosts
        if estimate_hits == 0 and dataflow_hits == 0:
            self.stats.full_estimates += 1
        return estimate

    def _cost_vertex_cached(self, vertex, workflow, sizes, tallies) -> VertexCost:
        """Cache-aware drop-in for :meth:`WhatIfEngine.cost_vertex`.

        Plugged into the engine's shared :meth:`~WhatIfEngine.run_costing`
        traversal, so the service cannot drift from the cold path.
        """
        engine = self.engine
        dataflow_sig = engine.vertex_dataflow_signature(vertex, workflow, sizes)
        full_sig = (dataflow_sig, engine.jobmodel_config_key(vertex.job.config))
        costed = self._lookup(self._cache, full_sig)
        if costed is not None:
            tallies[0] += 1
            return costed
        derived = self._lookup(self._dataflow_cache, dataflow_sig)
        if derived is not None:
            tallies[1] += 1
        else:
            tallies[2] += 1
            derived = engine.derive_vertex_dataflow(vertex, workflow, sizes)
            self._store(self._dataflow_cache, dataflow_sig, derived)
        dataflow, contributions = derived
        estimate = estimate_job_time(dataflow, vertex.job.config, self.cluster)
        costed = VertexCost(estimate=estimate, output_contributions=contributions)
        self._store(self._cache, full_sig, costed)
        return costed

    def estimate_plan(self, plan) -> WorkflowCostEstimate:
        """Convenience: estimate a :class:`~repro.core.plan.Plan`'s workflow."""
        return self.estimate_workflow(plan.workflow)

    # ------------------------------------------------------------ cache mgmt
    def invalidate(self) -> None:
        """Drop every cached per-job estimate and dataflow (stats are kept)."""
        self._cache.clear()
        self._dataflow_cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of cached per-vertex estimates."""
        return len(self._cache)

    def _lookup(self, cache: "OrderedDict", signature: Tuple):
        if not self.enable_cache:
            return None
        entry = cache.get(signature)
        if entry is not None:
            cache.move_to_end(signature)
        return entry

    def _store(self, cache: "OrderedDict", signature: Tuple, entry) -> None:
        if not self.enable_cache:
            return
        cache[signature] = entry
        if len(cache) > self.max_cache_entries:
            cache.popitem(last=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostService(entries={len(self._cache)}, queries={self.stats.queries}, "
            f"hit_rate={self.stats.cache_hit_rate:.2f})"
        )
