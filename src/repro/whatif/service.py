"""Incremental, memoized, concurrency-safe cost estimation over the What-if engine.

Stubby's practicality hinges on enumeration being cheap relative to what-if
costing (paper §4–§5): the search costs the *full* workflow for every RRS
sample of every candidate subplan of every optimization unit, even though one
sample only perturbs a handful of jobs.  :class:`CostService` owns every cost
query of the optimizer stack and makes them incremental:

* each job vertex is keyed by a structural cost signature
  (:meth:`~repro.whatif.model.WhatIfEngine.vertex_cost_signature`: pipelines +
  configuration + profile content + input-size vector + the producer facts the
  job model actually reads), so unchanged jobs are served from a cache;
* only the mutated jobs — and downstream jobs whose input sizes or
  producer-dependent facts actually changed — are re-costed;
* the per-level makespan combination is recomputed from the (cheap) per-job
  estimates, so the returned :class:`~repro.whatif.model.WorkflowCostEstimate`
  is *exactly* equal to a cold full re-estimation.

The service is safe to share across the parallel unit search
(:mod:`repro.core.parallel`):

* both cache levels are **lock-striped** — entries are sharded by signature
  hash, each shard carrying its own lock and LRU order, so concurrent
  candidate costings in the thread backend contend per-shard, not globally;
* stats counters are updated atomically under a dedicated lock, and
  **attribution sinks** (:meth:`CostService.attribute_to`) let a caller
  capture the exact per-candidate stats delta on its own thread even while
  other candidates run concurrently;
* forked worker processes accumulate into their private (copy-on-write)
  shard and hand their new entries and stats back through
  :meth:`export_log_entries` / :meth:`absorb_entries` /
  :meth:`apply_external_delta` — the process backend's merge-on-join.

The service keeps :class:`CostServiceStats` (queries, cache hits, re-costed
jobs, effectively-full estimations) that the search surfaces per candidate,
per optimization unit, and per optimizer run; the counters are the basis of
the ``BENCH_cost_service.json`` and ``BENCH_parallel_search.json`` perf
trajectories.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.cluster import ClusterSpec
from repro.whatif.jobmodel import estimate_job_time
from repro.whatif.model import VertexCost, WhatIfEngine, WorkflowCostEstimate
from repro.workflow.graph import Workflow

#: Default bound on cached per-vertex estimates; old entries are evicted LRU.
DEFAULT_MAX_CACHE_ENTRIES = 200_000

#: Number of independently locked cache shards (a power of two).
CACHE_STRIPES = 16

#: Cap on entries a forked worker ships back on merge-on-join; beyond this
#: the freshest entries win (export logs are append-ordered).
MAX_EXPORTED_ENTRIES = 20_000


@dataclass
class CostServiceStats:
    """Counters describing how much what-if work the service performed.

    ``queries`` counts workflow-level estimate requests — exactly the number
    of full-workflow what-if computations a non-incremental engine would have
    performed.  ``full_estimates`` counts the queries that could not reuse
    *anything*: no cached job estimate and no cached dataflow derivation,
    i.e. the computations that really were full.

    Job-granularity counters: every query looks up each job once
    (``job_queries``).  A lookup is served one of three ways —

    * ``job_cache_hits`` — the final estimate itself was cached (nothing
      recomputed);
    * ``job_dataflow_hits`` — the expensive dataflow derivation was cached
      and only the cheap per-phase job model re-ran (a configuration sample
      moved job-model-only knobs such as reduce tasks or buffer sizes);
    * ``job_full_recosts`` — the job was derived and costed from scratch.

    ``fallback_queries`` counts profile-free queries answered by the trivial
    job-count model (neither cached nor worth caching).
    """

    queries: int = 0
    fallback_queries: int = 0
    full_estimates: int = 0
    job_queries: int = 0
    job_cache_hits: int = 0
    job_dataflow_hits: int = 0
    job_full_recosts: int = 0

    @property
    def job_cache_misses(self) -> int:
        """Lookups whose final estimate had to be recomputed."""
        return self.job_dataflow_hits + self.job_full_recosts

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of job lookups whose estimate was served from the cache."""
        if self.job_queries == 0:
            return 0.0
        return self.job_cache_hits / self.job_queries

    @property
    def reuse_rate(self) -> float:
        """Fraction of job lookups that reused cached work at either level."""
        if self.job_queries == 0:
            return 0.0
        return (self.job_cache_hits + self.job_dataflow_hits) / self.job_queries

    @property
    def jobs_recosted(self) -> int:
        """Jobs whose estimate was recomputed (at either level)."""
        return self.job_cache_misses

    @property
    def effective_full_estimates(self) -> float:
        """Job-weighted equivalent number of full-workflow estimations.

        From-scratch job derivations divided by the mean workflow size per
        query: the amount of full-depth costing work actually done,
        expressed in units of "one cold workflow estimation".
        """
        if self.job_queries == 0 or self.queries == 0:
            return float(self.full_estimates)
        return self.job_full_recosts * self.queries / self.job_queries

    def accumulate(self, delta: "CostServiceStats") -> None:
        """Add another stats delta into this one, in place."""
        self.queries += delta.queries
        self.fallback_queries += delta.fallback_queries
        self.full_estimates += delta.full_estimates
        self.job_queries += delta.job_queries
        self.job_cache_hits += delta.job_cache_hits
        self.job_dataflow_hits += delta.job_dataflow_hits
        self.job_full_recosts += delta.job_full_recosts

    def snapshot(self) -> "CostServiceStats":
        """Immutable copy of the current counters."""
        return replace(self)

    def since(self, before: "CostServiceStats") -> "CostServiceStats":
        """Counter delta between this snapshot and an earlier one."""
        return CostServiceStats(
            queries=self.queries - before.queries,
            fallback_queries=self.fallback_queries - before.fallback_queries,
            full_estimates=self.full_estimates - before.full_estimates,
            job_queries=self.job_queries - before.job_queries,
            job_cache_hits=self.job_cache_hits - before.job_cache_hits,
            job_dataflow_hits=self.job_dataflow_hits - before.job_dataflow_hits,
            job_full_recosts=self.job_full_recosts - before.job_full_recosts,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports and benchmark JSON."""
        return {
            "queries": self.queries,
            "fallback_queries": self.fallback_queries,
            "full_estimates": self.full_estimates,
            "effective_full_estimates": self.effective_full_estimates,
            "job_queries": self.job_queries,
            "job_cache_hits": self.job_cache_hits,
            "job_dataflow_hits": self.job_dataflow_hits,
            "job_full_recosts": self.job_full_recosts,
            "cache_hit_rate": self.cache_hit_rate,
            "reuse_rate": self.reuse_rate,
        }


class _ShardedCache:
    """A lock-striped LRU mapping from signature tuples to cache entries.

    Signatures are distributed across :data:`CACHE_STRIPES` shards by hash;
    each shard has its own lock, insertion order, and share of the total
    capacity, so two threads costing different jobs almost never contend on
    the same lock.  Shard placement affects only contention — never the
    cached values — so it is free to vary between processes.
    """

    def __init__(self, max_entries: int) -> None:
        self.max_entries = max(1, max_entries)
        # A shard never holds more than its share of the total capacity, so
        # the whole cache stays within max_entries; tiny capacities use fewer
        # stripes rather than rounding every shard up to one entry.
        self._stripes = max(1, min(CACHE_STRIPES, self.max_entries))
        per_shard = self.max_entries // self._stripes
        self._shards: List[Tuple[threading.Lock, "OrderedDict[Tuple, object]", int]] = [
            (threading.Lock(), OrderedDict(), per_shard) for _ in range(self._stripes)
        ]

    def _shard(self, signature: Tuple):
        return self._shards[hash(signature) % self._stripes]

    def lookup(self, signature: Tuple):
        lock, entries, _cap = self._shard(signature)
        with lock:
            entry = entries.get(signature)
            if entry is not None:
                entries.move_to_end(signature)
            return entry

    def store(self, signature: Tuple, entry) -> bool:
        """Insert an entry; returns True when the signature was new."""
        lock, entries, cap = self._shard(signature)
        with lock:
            new = signature not in entries
            entries[signature] = entry
            if len(entries) > cap:
                entries.popitem(last=False)
            return new

    def clear(self) -> None:
        for lock, entries, _cap in self._shards:
            with lock:
                entries.clear()

    def __len__(self) -> int:
        return sum(len(entries) for _lock, entries, _cap in self._shards)


class CostService:
    """Memoizing façade over :class:`WhatIfEngine` for the optimizer stack.

    All cost queries of :class:`~repro.core.search.StubbySearch`,
    :class:`~repro.core.optimizer.StubbyOptimizer`, and the baseline
    optimizers go through one service instance, so cache entries are shared
    across candidate subplans, RRS samples, units, and phases — candidate
    plans are deep copies, but the content-based vertex signatures make the
    copies cache-transparent.  One instance may be queried from several
    search threads concurrently; see the module docstring for the
    concurrency model.

    ``enable_cache=False`` turns the service into a pass-through that costs
    every job cold (used by tests to prove the memoized results are
    identical).
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        engine: Optional[WhatIfEngine] = None,
        max_cache_entries: int = DEFAULT_MAX_CACHE_ENTRIES,
        enable_cache: bool = True,
    ) -> None:
        self.cluster = cluster
        self.engine = engine or WhatIfEngine(cluster)
        self.stats = CostServiceStats()
        self.enable_cache = enable_cache
        self.max_cache_entries = max(1, max_cache_entries)
        #: Fine cache: full vertex signature -> exact VertexCost.
        self._cache = _ShardedCache(self.max_cache_entries)
        #: Coarse cache: dataflow signature -> (JobDataflow, contributions);
        #: reused when only job-model config knobs moved.
        self._dataflow_cache = _ShardedCache(self.max_cache_entries)
        self._stats_lock = threading.Lock()
        self._sinks = threading.local()
        #: Append-only log of entries stored since :meth:`start_export_log`;
        #: enabled only inside forked workers (single-threaded), so it needs
        #: no lock of its own.
        self._export_log: Optional[List[Tuple[str, Tuple, object]]] = None

    # ------------------------------------------------------------------ API
    def estimate_workflow(self, workflow: Workflow) -> WorkflowCostEstimate:
        """Estimate ``workflow``, reusing cached per-job work where valid."""
        delta = CostServiceStats(queries=1)
        if any(not vertex.annotations.has_profile for vertex in workflow.jobs):
            delta.fallback_queries = 1
            self._apply_delta(delta)
            return self.engine.job_count_estimate(workflow)

        # Per-query tallies: [estimate hits, dataflow hits, full recosts].
        tallies = [0, 0, 0]
        estimate = self.engine.run_costing(
            workflow, lambda vertex, wf, sizes: self._cost_vertex_cached(vertex, wf, sizes, tallies)
        )

        estimate_hits, dataflow_hits, full_recosts = tallies
        delta.job_queries = estimate_hits + dataflow_hits + full_recosts
        delta.job_cache_hits = estimate_hits
        delta.job_dataflow_hits = dataflow_hits
        delta.job_full_recosts = full_recosts
        if estimate_hits == 0 and dataflow_hits == 0:
            delta.full_estimates = 1
        self._apply_delta(delta)
        return estimate

    def _cost_vertex_cached(self, vertex, workflow, sizes, tallies) -> VertexCost:
        """Cache-aware drop-in for :meth:`WhatIfEngine.cost_vertex`.

        Plugged into the engine's shared :meth:`~WhatIfEngine.run_costing`
        traversal, so the service cannot drift from the cold path.
        """
        engine = self.engine
        dataflow_sig = engine.vertex_dataflow_signature(vertex, workflow, sizes)
        full_sig = (dataflow_sig, engine.jobmodel_config_key(vertex.job.config))
        costed = self._lookup(self._cache, full_sig)
        if costed is not None:
            tallies[0] += 1
            return costed
        derived = self._lookup(self._dataflow_cache, dataflow_sig)
        if derived is not None:
            tallies[1] += 1
        else:
            tallies[2] += 1
            derived = engine.derive_vertex_dataflow(vertex, workflow, sizes)
            self._store(self._dataflow_cache, "dataflow", dataflow_sig, derived)
        dataflow, contributions = derived
        estimate = estimate_job_time(dataflow, vertex.job.config, self.cluster)
        costed = VertexCost(estimate=estimate, output_contributions=contributions)
        self._store(self._cache, "estimate", full_sig, costed)
        return costed

    def estimate_plan(self, plan) -> WorkflowCostEstimate:
        """Convenience: estimate a :class:`~repro.core.plan.Plan`'s workflow."""
        return self.estimate_workflow(plan.workflow)

    # ------------------------------------------------------- stats plumbing
    def _apply_delta(self, delta: CostServiceStats) -> None:
        """Fold a stats delta into the global counters and this thread's sinks."""
        with self._stats_lock:
            self.stats.accumulate(delta)
        for sink in self._sink_stack():
            sink.accumulate(delta)

    def _sink_stack(self) -> List[CostServiceStats]:
        stack = getattr(self._sinks, "stack", None)
        if stack is None:
            stack = []
            self._sinks.stack = stack
        return stack

    @contextmanager
    def attribute_to(self, sink: CostServiceStats):
        """Also credit this thread's queries to ``sink`` while active.

        Sinks are thread-local and stack: the search wraps each candidate
        costing in one so :class:`~repro.core.search.SubplanRecord` carries
        its exact stats delta even when candidates run concurrently — the
        fix for the ordering-dependent ambient-window attribution.
        """
        stack = self._sink_stack()
        stack.append(sink)
        try:
            yield sink
        finally:
            stack.pop()

    def apply_external_delta(self, delta: CostServiceStats) -> None:
        """Fold in work performed by a foreign process (merge-on-join).

        The worker's queries never touched this process's counters, so the
        delta goes through the full path: global stats plus the calling
        thread's attribution sinks.
        """
        self._apply_delta(delta)

    def apply_sink_only_delta(self, delta: CostServiceStats) -> None:
        """Re-attribute work already counted globally to this thread's sinks.

        Used by the thread backend: worker threads updated the shared global
        counters live, but the calling thread's sinks (per-candidate stats)
        never saw the work.
        """
        for sink in self._sink_stack():
            sink.accumulate(delta)

    def stats_snapshot(self) -> CostServiceStats:
        """Consistent copy of the global counters (for windows/reports)."""
        with self._stats_lock:
            return self.stats.snapshot()

    # ------------------------------------------------- process merge-on-join
    def start_export_log(self) -> None:
        """Begin recording newly stored cache entries (forked workers only)."""
        self._export_log = []

    def export_log_entries(self) -> List[Tuple[str, Tuple, object]]:
        """Drain the export log: ``(level, signature, entry)`` triples.

        Bounded by :data:`MAX_EXPORTED_ENTRIES`, keeping the *freshest*
        entries when over budget (the log is append-ordered).
        """
        log = self._export_log or []
        self._export_log = None
        return log[-MAX_EXPORTED_ENTRIES:]

    def absorb_entries(self, entries: List[Tuple[str, Tuple, object]]) -> None:
        """Merge cache entries exported by a worker into this service.

        Signatures are content-based and entries are exact, so merging is
        idempotent and order-independent — absorbing a duplicate simply
        refreshes its LRU position.
        """
        for level, signature, entry in entries:
            cache = self._cache if level == "estimate" else self._dataflow_cache
            self._store(cache, level, signature, entry, log=False)

    # ------------------------------------------------------------ cache mgmt
    def invalidate(self) -> None:
        """Drop every cached per-job estimate and dataflow (stats are kept)."""
        self._cache.clear()
        self._dataflow_cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of cached per-vertex estimates."""
        return len(self._cache)

    def _lookup(self, cache: _ShardedCache, signature: Tuple):
        if not self.enable_cache:
            return None
        return cache.lookup(signature)

    def _store(self, cache: _ShardedCache, level: str, signature: Tuple, entry, log: bool = True) -> None:
        if not self.enable_cache:
            return
        new = cache.store(signature, entry)
        if new and log and self._export_log is not None:
            self._export_log.append((level, signature, entry))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostService(entries={len(self._cache)}, queries={self.stats.queries}, "
            f"hit_rate={self.stats.cache_hit_rate:.2f})"
        )
