"""Optimizer-as-a-service: a long-lived, multi-tenant planning server.

The paper frames Stubby as a library call; this package wraps that library
in the ROADMAP's north-star shape — a service absorbing optimization
requests from many concurrent clients over one shared, persisted
:class:`~repro.whatif.service.CostService` and
:class:`~repro.core.decision_cache.DecisionCache`:

* :mod:`repro.service.admission` — a bounded admission queue with
  per-tenant round-robin fairness (one hot tenant cannot starve the rest),
  priority ordering within a tenant, and deadline-expired load shedding;
* :mod:`repro.service.server` — the asyncio front end
  (:class:`PlanningServer`) and its dispatcher, batching admitted requests
  onto a :mod:`repro.core.parallel` backend with work-stealing dispatch;
* :mod:`repro.service.degradation` — the graceful-degradation ladder
  (full → replay-only → single-phase → unoptimized) and the per-tenant
  :class:`CircuitBreaker` guarding the full search (``docs/resilience.md``);
* :mod:`repro.service.stats` — per-tenant, origin-tagged attribution
  (:class:`ServiceStats`) whose counters sum exactly to the global cache
  totals, plus shed/degraded/breaker accounting.

The contract is the same one every other layer honours, restated for
serving: **every undegraded server answer is bit-identical to a cold
in-process ``StubbyOptimizer.optimize()``** — concurrency, batching,
worker pools, shared caches, even worker crashes change only latency,
never plans.  Degraded answers are explicitly labeled
(``PlanResponse.degradation_level``), never silently substituted.
``tests/test_planning_service.py`` and ``tests/test_service_resilience.py``
enforce it under concurrent mixed-tenant load with injected faults.
"""

from repro.service.admission import AdmissionQueue, AdmissionRejected, AdmissionStats
from repro.service.degradation import (
    DEGRADATION_LEVELS,
    CircuitBreaker,
    level_name,
)
from repro.service.server import (
    OPTIMIZER_VARIANTS,
    PlanRequest,
    PlanResponse,
    PlanningServer,
    build_variant,
    cold_optimize,
    oracle_fingerprint,
)
from repro.service.stats import ServiceStats, TenantStats, percentile

__all__ = [
    "AdmissionQueue",
    "AdmissionRejected",
    "AdmissionStats",
    "CircuitBreaker",
    "DEGRADATION_LEVELS",
    "OPTIMIZER_VARIANTS",
    "PlanRequest",
    "PlanResponse",
    "PlanningServer",
    "ServiceStats",
    "TenantStats",
    "build_variant",
    "cold_optimize",
    "level_name",
    "oracle_fingerprint",
    "percentile",
]
