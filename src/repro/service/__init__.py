"""Optimizer-as-a-service: a long-lived, multi-tenant planning server.

The paper frames Stubby as a library call; this package wraps that library
in the ROADMAP's north-star shape — a service absorbing optimization
requests from many concurrent clients over one shared, persisted
:class:`~repro.whatif.service.CostService` and
:class:`~repro.core.decision_cache.DecisionCache`:

* :mod:`repro.service.admission` — a bounded admission queue with
  per-tenant round-robin fairness (one hot tenant cannot starve the rest);
* :mod:`repro.service.server` — the asyncio front end
  (:class:`PlanningServer`) and its dispatcher, batching admitted requests
  onto a :mod:`repro.core.parallel` backend with work-stealing dispatch;
* :mod:`repro.service.stats` — per-tenant, origin-tagged attribution
  (:class:`ServiceStats`) whose counters sum exactly to the global cache
  totals.

The contract is the same one every other layer honours, restated for
serving: **every server answer is bit-identical to a cold in-process
``StubbyOptimizer.optimize()``** — concurrency, batching, worker pools,
shared caches, even worker crashes change only latency, never plans.
``tests/test_planning_service.py`` enforces it under concurrent
mixed-tenant load.
"""

from repro.service.admission import AdmissionQueue, AdmissionRejected, AdmissionStats
from repro.service.server import (
    OPTIMIZER_VARIANTS,
    PlanRequest,
    PlanResponse,
    PlanningServer,
    build_variant,
    cold_optimize,
    oracle_fingerprint,
)
from repro.service.stats import ServiceStats, TenantStats, percentile

__all__ = [
    "AdmissionQueue",
    "AdmissionRejected",
    "AdmissionStats",
    "OPTIMIZER_VARIANTS",
    "PlanRequest",
    "PlanResponse",
    "PlanningServer",
    "ServiceStats",
    "TenantStats",
    "build_variant",
    "cold_optimize",
    "oracle_fingerprint",
    "percentile",
]
