"""Bounded, per-tenant-fair admission control for the planning server.

A long-lived service cannot let demand queue without bound (memory, tail
latency) and cannot let one hot tenant monopolize the workers.  The
:class:`AdmissionQueue` solves both with the smallest classical mechanism:

* **bounded** — a global capacity plus an optional per-tenant capacity;
  an offer over either limit is rejected *immediately*
  (:class:`AdmissionRejected`), so the client can back off instead of
  timing out invisibly deep in a queue;
* **fair** — internally one queue *per tenant* plus a round-robin ring
  over the tenants that currently have queued work.  ``take_batch``
  drains tenants in ring order, one item per turn, so a tenant sending
  1000 requests and a tenant sending 1 both get their head-of-line request
  into the next batch;
* **deadline-aware** — an offer may carry ``priority`` (higher drains
  first *within its tenant*; fairness across tenants is untouched, so a
  high-priority flood still cannot starve the neighbours) and
  ``deadline_at`` (absolute ``time.monotonic()``).  An item whose deadline
  already passed when the dispatcher reaches it is **shed** instead of
  dispatched — handed to the ``on_shed`` callback so the server can answer
  it with a degraded plan rather than burning a worker on a result nobody
  can use in time.

The queue is thread-safe (one condition variable) and deliberately knows
nothing about asyncio: the server's event loop offers tickets from the
loop thread, the dispatcher thread blocks in ``take_batch``.  Cancellation
is cooperative — :meth:`remove` withdraws a queued item (releasing its
capacity) and the dispatcher skips items whose ticket was cancelled after
it was already taken.
"""

from __future__ import annotations

import threading
import time
from bisect import insort
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["AdmissionQueue", "AdmissionRejected", "AdmissionStats"]


class AdmissionRejected(RuntimeError):
    """An offered request was not admitted (queue full, closed, …)."""

    def __init__(self, reason: str, tenant: str = "") -> None:
        super().__init__(f"request rejected for tenant {tenant!r}: {reason}")
        self.reason = reason
        self.tenant = tenant


@dataclass
class AdmissionStats:
    """Counters describing what the queue admitted, rejected, and served."""

    offered: int = 0
    accepted: int = 0
    rejected_full: int = 0
    rejected_tenant_full: int = 0
    rejected_closed: int = 0
    taken: int = 0
    cancelled_in_queue: int = 0
    shed_expired: int = 0
    peak_depth: int = 0

    @property
    def rejected(self) -> int:
        """Total rejections, any reason."""
        return self.rejected_full + self.rejected_tenant_full + self.rejected_closed

    def as_dict(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected_full": self.rejected_full,
            "rejected_tenant_full": self.rejected_tenant_full,
            "rejected_closed": self.rejected_closed,
            "rejected": self.rejected,
            "taken": self.taken,
            "cancelled_in_queue": self.cancelled_in_queue,
            "shed_expired": self.shed_expired,
            "peak_depth": self.peak_depth,
        }


@dataclass
class _Entry:
    """One queued item with its drain order and optional deadline."""

    #: ``(-priority, seq)``: higher priority first, FIFO within a priority.
    order: tuple
    deadline_at: Optional[float]
    item: Any


@dataclass
class _TenantQueue:
    #: Kept sorted by ``_Entry.order`` (bisect insert); head drains first.
    items: List[_Entry] = field(default_factory=list)


class AdmissionQueue:
    """Bounded multi-tenant queue with round-robin draining.

    ``capacity`` bounds the total queued items; ``per_tenant_capacity``
    (optional) additionally bounds any single tenant's share, which is what
    actually enforces fairness under overload — without it a burst from one
    tenant can fill the whole global budget before anyone else offers.

    ``on_shed`` (an attribute, settable after construction) receives each
    item shed for an expired deadline; it is invoked on the *consumer*
    thread, outside the queue lock.
    """

    def __init__(
        self,
        capacity: int = 64,
        per_tenant_capacity: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        if per_tenant_capacity is not None and per_tenant_capacity < 1:
            raise ValueError("per-tenant capacity must be >= 1")
        self.capacity = capacity
        self.per_tenant_capacity = per_tenant_capacity
        self.stats = AdmissionStats()
        self.on_shed: Optional[Callable[[Any], None]] = None
        self._clock = clock
        self._tenants: Dict[str, _TenantQueue] = {}
        #: Tenants with queued work, in round-robin service order.
        self._ring: deque = deque()
        self._size = 0
        self._seq = 0
        self._closed = False
        self._cond = threading.Condition()

    # ------------------------------------------------------------- producers
    def offer(
        self,
        tenant: str,
        item: Any,
        priority: int = 0,
        deadline_at: Optional[float] = None,
    ) -> None:
        """Admit ``item`` for ``tenant`` or raise :class:`AdmissionRejected`.

        ``priority`` orders drains *within* the tenant's queue (higher
        first, FIFO among equals); ``deadline_at`` (absolute monotonic
        time) marks the item sheddable once passed.
        """
        with self._cond:
            self.stats.offered += 1
            if self._closed:
                self.stats.rejected_closed += 1
                raise AdmissionRejected("queue is closed", tenant)
            if self._size >= self.capacity:
                self.stats.rejected_full += 1
                raise AdmissionRejected(
                    f"queue is full ({self._size}/{self.capacity})", tenant
                )
            queue = self._tenants.setdefault(tenant, _TenantQueue())
            if (
                self.per_tenant_capacity is not None
                and len(queue.items) >= self.per_tenant_capacity
            ):
                self.stats.rejected_tenant_full += 1
                raise AdmissionRejected(
                    f"tenant quota is full ({len(queue.items)}/{self.per_tenant_capacity})",
                    tenant,
                )
            if not queue.items and tenant not in self._ring:
                # (membership scan: the ring holds tenants, not items — tiny)
                self._ring.append(tenant)
            self._seq += 1
            entry = _Entry(order=(-priority, self._seq), deadline_at=deadline_at, item=item)
            insort(queue.items, entry, key=lambda existing: existing.order)
            self._size += 1
            self.stats.accepted += 1
            self.stats.peak_depth = max(self.stats.peak_depth, self._size)
            self._cond.notify()

    def remove(self, tenant: str, item: Any) -> bool:
        """Withdraw a queued item (client cancelled); True when found.

        A False return means the dispatcher already took the item — the
        caller's cancellation must then be honoured at completion time
        (the server discards the computed response).
        """
        with self._cond:
            queue = self._tenants.get(tenant)
            if queue is None:
                return False
            for position, entry in enumerate(queue.items):
                if entry.item is item:
                    del queue.items[position]
                    break
            else:
                return False
            self._size -= 1
            self.stats.cancelled_in_queue += 1
            # The ring entry (if any) is lazily skipped by _pop_round_robin
            # once the tenant's queue is empty.
            return True

    # ------------------------------------------------------------- consumers
    def take_batch(self, limit: int, timeout: Optional[float] = None) -> List[Any]:
        """Take up to ``limit`` unexpired items, round-robin across tenants.

        Blocks until at least one item is available, the queue closes, or
        ``timeout`` elapses (empty list on timeout / closed-and-empty).
        Items whose deadline passed while queued are shed — not returned —
        and reported to :attr:`on_shed` (outside the lock) so the caller
        can still answer them.
        """
        if limit < 1:
            raise ValueError("batch limit must be >= 1")
        shed: List[Any] = []
        with self._cond:
            if not self._size and not self._closed:
                self._cond.wait(timeout)
            now = self._clock()
            batch: List[Any] = []
            while self._size and len(batch) < limit:
                item = self._pop_round_robin(shed, now)
                if item is None:
                    break
                batch.append(item)
            self.stats.taken += len(batch)
        if shed and self.on_shed is not None:
            for item in shed:
                self.on_shed(item)
        return batch

    def _pop_round_robin(self, shed: List[Any], now: float) -> Optional[Any]:
        """Pop one live item from the ring-head tenant (lock held).

        Expired items at the head are shed (collected into ``shed``) until
        a live one — or an empty queue — is found.
        """
        while self._ring:
            tenant = self._ring.popleft()
            queue = self._tenants[tenant]
            while queue.items:
                entry = queue.items[0]
                if entry.deadline_at is None or now < entry.deadline_at:
                    break
                del queue.items[0]
                self._size -= 1
                self.stats.shed_expired += 1
                shed.append(entry.item)
            if not queue.items:
                continue  # emptied by remove()/shedding; drop the ring entry
            entry = queue.items.pop(0)
            self._size -= 1
            if queue.items:
                self._ring.append(tenant)
            return entry.item
        return None

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop admitting; queued items remain takeable (drain-then-stop)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def reopen(self) -> None:
        """Re-admit after a close (server restart with warm caches)."""
        with self._cond:
            self._closed = False

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return self._size

    def depth(self, tenant: Optional[str] = None) -> int:
        """Queued items, total or for one tenant."""
        with self._cond:
            if tenant is None:
                return self._size
            queue = self._tenants.get(tenant)
            return len(queue.items) if queue else 0
