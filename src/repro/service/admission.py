"""Bounded, per-tenant-fair admission control for the planning server.

A long-lived service cannot let demand queue without bound (memory, tail
latency) and cannot let one hot tenant monopolize the workers.  The
:class:`AdmissionQueue` solves both with the smallest classical mechanism:

* **bounded** — a global capacity plus an optional per-tenant capacity;
  an offer over either limit is rejected *immediately*
  (:class:`AdmissionRejected`), so the client can back off instead of
  timing out invisibly deep in a queue;
* **fair** — internally one FIFO deque *per tenant* plus a round-robin
  ring over the tenants that currently have queued work.  ``take_batch``
  drains tenants in ring order, one item per turn, so a tenant sending
  1000 requests and a tenant sending 1 both get their head-of-line request
  into the next batch.

The queue is thread-safe (one condition variable) and deliberately knows
nothing about asyncio: the server's event loop offers tickets from the
loop thread, the dispatcher thread blocks in ``take_batch``.  Cancellation
is cooperative — :meth:`remove` withdraws a queued item (releasing its
capacity) and the dispatcher skips items whose ticket was cancelled after
it was already taken.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["AdmissionQueue", "AdmissionRejected", "AdmissionStats"]


class AdmissionRejected(RuntimeError):
    """An offered request was not admitted (queue full, closed, …)."""

    def __init__(self, reason: str, tenant: str = "") -> None:
        super().__init__(f"request rejected for tenant {tenant!r}: {reason}")
        self.reason = reason
        self.tenant = tenant


@dataclass
class AdmissionStats:
    """Counters describing what the queue admitted, rejected, and served."""

    offered: int = 0
    accepted: int = 0
    rejected_full: int = 0
    rejected_tenant_full: int = 0
    rejected_closed: int = 0
    taken: int = 0
    cancelled_in_queue: int = 0
    peak_depth: int = 0

    @property
    def rejected(self) -> int:
        """Total rejections, any reason."""
        return self.rejected_full + self.rejected_tenant_full + self.rejected_closed

    def as_dict(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected_full": self.rejected_full,
            "rejected_tenant_full": self.rejected_tenant_full,
            "rejected_closed": self.rejected_closed,
            "rejected": self.rejected,
            "taken": self.taken,
            "cancelled_in_queue": self.cancelled_in_queue,
            "peak_depth": self.peak_depth,
        }


@dataclass
class _TenantQueue:
    items: deque = field(default_factory=deque)


class AdmissionQueue:
    """Bounded multi-tenant queue with round-robin draining.

    ``capacity`` bounds the total queued items; ``per_tenant_capacity``
    (optional) additionally bounds any single tenant's share, which is what
    actually enforces fairness under overload — without it a burst from one
    tenant can fill the whole global budget before anyone else offers.
    """

    def __init__(self, capacity: int = 64, per_tenant_capacity: Optional[int] = None) -> None:
        if capacity < 1:
            raise ValueError("admission capacity must be >= 1")
        if per_tenant_capacity is not None and per_tenant_capacity < 1:
            raise ValueError("per-tenant capacity must be >= 1")
        self.capacity = capacity
        self.per_tenant_capacity = per_tenant_capacity
        self.stats = AdmissionStats()
        self._tenants: Dict[str, _TenantQueue] = {}
        #: Tenants with queued work, in round-robin service order.
        self._ring: deque = deque()
        self._size = 0
        self._closed = False
        self._cond = threading.Condition()

    # ------------------------------------------------------------- producers
    def offer(self, tenant: str, item: Any) -> None:
        """Admit ``item`` for ``tenant`` or raise :class:`AdmissionRejected`."""
        with self._cond:
            self.stats.offered += 1
            if self._closed:
                self.stats.rejected_closed += 1
                raise AdmissionRejected("queue is closed", tenant)
            if self._size >= self.capacity:
                self.stats.rejected_full += 1
                raise AdmissionRejected(
                    f"queue is full ({self._size}/{self.capacity})", tenant
                )
            queue = self._tenants.setdefault(tenant, _TenantQueue())
            if (
                self.per_tenant_capacity is not None
                and len(queue.items) >= self.per_tenant_capacity
            ):
                self.stats.rejected_tenant_full += 1
                raise AdmissionRejected(
                    f"tenant quota is full ({len(queue.items)}/{self.per_tenant_capacity})",
                    tenant,
                )
            if not queue.items and tenant not in self._ring:
                # (membership scan: the ring holds tenants, not items — tiny)
                self._ring.append(tenant)
            queue.items.append(item)
            self._size += 1
            self.stats.accepted += 1
            self.stats.peak_depth = max(self.stats.peak_depth, self._size)
            self._cond.notify()

    def remove(self, tenant: str, item: Any) -> bool:
        """Withdraw a queued item (client cancelled); True when found.

        A False return means the dispatcher already took the item — the
        caller's cancellation must then be honoured at completion time
        (the server discards the computed response).
        """
        with self._cond:
            queue = self._tenants.get(tenant)
            if queue is None:
                return False
            try:
                queue.items.remove(item)
            except ValueError:
                return False
            self._size -= 1
            self.stats.cancelled_in_queue += 1
            # The ring entry (if any) is lazily skipped by _pop_round_robin
            # once the tenant's queue is empty.
            return True

    # ------------------------------------------------------------- consumers
    def take_batch(self, limit: int, timeout: Optional[float] = None) -> List[Any]:
        """Take up to ``limit`` items, round-robin across tenants.

        Blocks until at least one item is available, the queue closes, or
        ``timeout`` elapses (empty list on timeout / closed-and-empty).
        """
        if limit < 1:
            raise ValueError("batch limit must be >= 1")
        with self._cond:
            if not self._size and not self._closed:
                self._cond.wait(timeout)
            batch: List[Any] = []
            while self._size and len(batch) < limit:
                item = self._pop_round_robin()
                if item is not None:
                    batch.append(item)
            self.stats.taken += len(batch)
            return batch

    def _pop_round_robin(self) -> Optional[Any]:
        """Pop one item from the tenant at the head of the ring (lock held)."""
        while self._ring:
            tenant = self._ring.popleft()
            queue = self._tenants[tenant]
            if not queue.items:
                continue  # emptied by remove(); drop the stale ring entry
            item = queue.items.popleft()
            self._size -= 1
            if queue.items:
                self._ring.append(tenant)
            return item
        return None

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop admitting; queued items remain takeable (drain-then-stop)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def reopen(self) -> None:
        """Re-admit after a close (server restart with warm caches)."""
        with self._cond:
            self._closed = False

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return self._size

    def depth(self, tenant: Optional[str] = None) -> int:
        """Queued items, total or for one tenant."""
        with self._cond:
            if tenant is None:
                return self._size
            queue = self._tenants.get(tenant)
            return len(queue.items) if queue else 0
