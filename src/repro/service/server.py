"""The asyncio planning server: optimize-as-a-service over shared caches.

Request path (see ``docs/service.md`` for the full diagram)::

    client coroutine --submit()--> AdmissionQueue --take_batch()--> dispatcher
        thread --session.run(batch, dispatch="stealing")--> worker pool
        --optimize()--> PlanResponse --call_soon_threadsafe--> client future

One **dispatcher thread** owns the backend session.  It drains the
admission queue in per-tenant round-robin order into micro-batches and
fans each batch onto a :mod:`repro.core.parallel` backend with
work-stealing dispatch, so a tenant's expensive workflow occupies one
worker while cheap requests keep flowing around it.  Results resolve the
clients' asyncio futures back on the event loop.

Every request executes under the tenant's cost-service **origin label**
and a pair of per-request attribution sinks, so
:class:`~repro.service.stats.ServiceStats` can report per-tenant hit rates
and cross-origin reuse that reconcile exactly with the shared caches.

The serving contract is the library contract, unchanged: a response's
``(plan_signature, decision_fingerprint, estimated_cost_s)`` triple is
bit-identical to what a cold, serial, in-process
:class:`~repro.core.optimizer.StubbyOptimizer` would return for the same
(workload, variant, seed) — :func:`cold_optimize` *is* that oracle, and
``tests/test_planning_service.py`` holds the server to it under
concurrent mixed-tenant load, worker crashes included.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster import ClusterSpec
from repro.common.errors import OptimizationError, TerminalError
from repro.common.faults import fault_site
from repro.core.budget import TimeBudget
from repro.core.costing import cost_service_side_channel, ensure_cost_service
from repro.core.decision_cache import (
    DecisionCache,
    DecisionCacheStats,
    decision_cache_side_channel,
    ensure_decision_cache,
)
from repro.core.optimizer import OptimizationResult, StubbyOptimizer
from repro.core.subresults import (
    SubResultCatalog,
    SubResultCatalogStats,
    ensure_subresult_catalog,
    register_workflow_outputs,
    subresult_catalog_side_channel,
)
from repro.core.parallel import (
    DispatchStats,
    ExecutionBackend,
    create_backend,
    merge_side_channels,
)
from repro.core.plan import Plan
from repro.service.admission import AdmissionQueue, AdmissionRejected
from repro.service.degradation import (
    CircuitBreaker,
    LEVEL_FULL,
    LEVEL_REPLAY_ONLY,
    LEVEL_SINGLE_PHASE,
    LEVEL_UNOPTIMIZED,
    level_name,
)
from repro.service.stats import ServiceStats
from repro.whatif.service import CostService, CostServiceStats

__all__ = [
    "OPTIMIZER_VARIANTS",
    "PlanRequest",
    "PlanResponse",
    "PlanningServer",
    "build_variant",
    "cold_optimize",
    "oracle_fingerprint",
]

#: Optimizer variants the server accepts (the Stubby phase family plus the
#: rule-based Pig baseline).
OPTIMIZER_VARIANTS = ("Stubby", "Vertical", "Horizontal", "Baseline")


def build_variant(
    name: str,
    cluster: ClusterSpec,
    seed: int,
    cost_service: Optional[CostService] = None,
    decision_cache: Optional[DecisionCache] = None,
    subresult_catalog: Optional[SubResultCatalog] = None,
    backend=None,
):
    """Instantiate one optimizer variant over (optionally shared) caches."""
    shared = {"cost_service": cost_service, "decision_cache": decision_cache}
    # Only the Stubby variants carry the reuse rewrite; Baseline is the
    # recompute reference and never sees the catalog.
    stubby = {**shared, "subresult_catalog": subresult_catalog}
    if name == "Stubby":
        return StubbyOptimizer(cluster, seed=seed, backend=backend, **stubby)
    if name == "Vertical":
        return StubbyOptimizer.vertical_only(cluster, seed=seed, backend=backend, **stubby)
    if name == "Horizontal":
        return StubbyOptimizer.horizontal_only(cluster, seed=seed, backend=backend, **stubby)
    if name == "Baseline":
        # Imported here: repro.baselines imports OptimizationResult from the
        # optimizer module this module also imports.
        from repro.baselines.pig_baseline import PigBaselineOptimizer

        return PigBaselineOptimizer(cluster, **shared)
    raise KeyError(f"unknown optimizer variant {name!r}; expected one of {OPTIMIZER_VARIANTS}")


def cold_optimize(
    cluster: ClusterSpec,
    plan: Plan,
    optimizer: str = "Stubby",
    seed: int = 17,
    subresult_catalog: Optional[SubResultCatalog] = None,
) -> OptimizationResult:
    """The oracle: a cold, serial, in-process run of the requested variant.

    Fresh caches (nothing persisted, nothing shared), serial backend —
    the baseline every server answer must be bit-identical to.  A stored
    sub-result legitimately changes which plan is optimal, so a server
    whose catalog has registrations is compared against an oracle handed an
    equal-content ``subresult_catalog``; without one the oracle runs with a
    fresh empty catalog, which is behaviourally invisible.
    """
    costs = CostService(cluster)
    decisions = DecisionCache(cluster)
    variant = build_variant(
        optimizer,
        cluster,
        seed,
        cost_service=costs,
        decision_cache=decisions,
        subresult_catalog=subresult_catalog,
        backend="serial",
    )
    return variant.optimize(plan.copy())


def oracle_fingerprint(result: OptimizationResult) -> Tuple:
    """The identity triple responses are byte-compared on."""
    return (result.plan_signature(), result.decision_fingerprint(), result.estimated_cost_s)


@dataclass(frozen=True)
class PlanRequest:
    """One client's optimization request."""

    tenant: str
    workload: str
    optimizer: str = "Stubby"
    seed: int = 17
    #: Relative cost weight for the pool's load accounting (heterogeneous
    #: requests are why dispatch is work-stealing); any positive number.
    cost_weight: float = 1.0
    #: Seconds the client is willing to wait for an answer.  The remaining
    #: budget is threaded into the search as a cooperative deadline; a
    #: request still queued when its deadline passes is shed — answered
    #: with an unoptimized (level 3) plan instead of dispatched.  ``None``
    #: means no deadline.
    deadline_s: Optional[float] = None
    #: Drain order within this tenant's queue (higher first); cross-tenant
    #: fairness is unaffected.
    priority: int = 0


@dataclass
class PlanResponse:
    """The server's answer, with its exact attribution attached."""

    tenant: str
    workload: str
    optimizer: str
    seed: int
    ok: bool = False
    plan_signature: Tuple = ()
    decision_fingerprint: Tuple = ()
    estimated_cost_s: float = 0.0
    error: str = ""
    worker_pid: int = 0
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    latency_s: float = 0.0
    unit_decision_hits: int = 0
    unit_decision_misses: int = 0
    cross_origin_decision_hits: int = 0
    #: Sub-result reuse recorded in the served plan (rewrites and the jobs
    #: they eliminated) plus this tenant's cross-origin catalog hits.
    subresult_reuse_applications: int = 0
    jobs_eliminated_by_reuse: int = 0
    #: Exact cost-service delta this request produced (its attribution sink).
    cost_stats: Optional[CostServiceStats] = None
    #: Exact decision-cache delta this request produced.
    decision_stats: Optional[DecisionCacheStats] = None
    #: Exact sub-result catalog delta this request produced.
    subresult_stats: Optional[SubResultCatalogStats] = None
    #: Ladder rung this answer was served at (0 = the full, bit-identical
    #: search; see :data:`repro.service.degradation.DEGRADATION_LEVELS`).
    degradation_level: int = 0
    degradation: str = "full"
    #: Why the response degraded (one note per rung that failed/was skipped).
    degradation_reason: str = ""
    #: True when the request was answered without dispatch because its
    #: deadline expired in the queue (always served at level 3).
    shed: bool = False

    def identity(self) -> Tuple:
        """The triple compared against :func:`oracle_fingerprint`."""
        return (self.plan_signature, self.decision_fingerprint, self.estimated_cost_s)


@dataclass
class _Ticket:
    """One admitted request awaiting execution.

    A ticket's lifecycle ends exactly once — either the client withdraws
    it (timeout/cancel) or the server answers it — but those two events
    race on different threads.  :meth:`claim` arbitrates: the first
    claimant wins, so the lifecycle counters record *completed xor
    cancelled*, never both.
    """

    request: PlanRequest
    future: "asyncio.Future[PlanResponse]"
    loop: asyncio.AbstractEventLoop
    enqueued: float
    #: Absolute ``time.monotonic()`` deadline (``None`` = no deadline).
    deadline_at: Optional[float] = None
    #: Dispatcher verdict: may this request attempt the full search?
    #: (False when the tenant's circuit breaker is open.)
    allow_full: bool = True
    cancelled: bool = False
    _outcome: str = ""
    _claim_lock: threading.Lock = field(default_factory=threading.Lock)

    def claim(self, outcome: str) -> bool:
        """Claim the ticket's single lifecycle outcome; True for the winner."""
        with self._claim_lock:
            if self._outcome:
                return False
            self._outcome = outcome
            if outcome == "cancelled":
                self.cancelled = True
            return True


class PlanningServer:
    """Long-lived multi-tenant front end over one shared optimizer substrate.

    ``pool`` is a :mod:`repro.core.parallel` spec string (``"thread:4"``,
    ``"process:2"``, ``"serial"``) or backend instance — the pool that runs
    the optimizations; ``dispatch`` defaults to ``"stealing"``.  The server
    owns one shared :class:`CostService` and :class:`DecisionCache` (or
    accepts externally shared ones); with ``cache_path`` /
    ``decision_cache_path`` configured it warm-starts from the persisted
    stores and merge-persists them back on :meth:`stop`.

    Workloads are registered up front (:meth:`register_workload`) — plans
    hold closure-based operators that cannot cross a pickle boundary, so a
    process pool's workers must inherit them by fork, exactly like the unit
    search inherits candidate plans.  Registration is therefore rejected
    once a fork pool has forked; :meth:`restart` re-forks with both the
    registry and the warm caches.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        pool="thread:4",
        dispatch: str = "stealing",
        queue_capacity: int = 64,
        per_tenant_capacity: Optional[int] = None,
        max_batch: Optional[int] = None,
        cost_service: Optional[CostService] = None,
        decision_cache: Optional[DecisionCache] = None,
        cache_path: Optional[str] = None,
        decision_cache_path: Optional[str] = None,
        subresult_catalog: Optional[SubResultCatalog] = None,
        subresult_catalog_path: Optional[str] = None,
        breaker_threshold: int = 3,
        breaker_backoff_s: float = 0.5,
        breaker_max_backoff_s: float = 30.0,
    ) -> None:
        self.cluster = cluster
        self.costs = ensure_cost_service(cluster, cost_service, cache_path=cache_path)
        self.decisions = ensure_decision_cache(cluster, decision_cache, cache_path=decision_cache_path)
        #: Shared sub-result catalog: tenants report executed outputs through
        #: :meth:`register_execution`, and subsequent plans (any tenant) may
        #: reuse the stored bytes instead of recomputing — the ReStore story
        #: served multi-tenant.  Warm-starts from ``subresult_catalog_path``
        #: (or STUBBY_SUBRESULT_CATALOG) and merge-persists on :meth:`stop`.
        self.subresults = ensure_subresult_catalog(
            cluster, subresult_catalog, cache_path=subresult_catalog_path
        )
        self.backend: ExecutionBackend = (
            pool if isinstance(pool, ExecutionBackend) else create_backend(pool)
        )
        self.dispatch = dispatch
        self.admission = AdmissionQueue(queue_capacity, per_tenant_capacity)
        #: Expired-in-queue requests are answered (degraded), not dropped.
        self.admission.on_shed = self._shed_ticket
        self.stats = ServiceStats()
        #: Per-tenant full-search circuit breakers (dispatcher-thread only).
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._breaker_config = (breaker_threshold, breaker_backoff_s, breaker_max_backoff_s)
        self._registry: Dict[str, Plan] = {}
        self._max_batch = max_batch or max(2 * self.backend.workers, 4)
        self._session = None
        #: Guards the detach-then-accumulate handoff between a session and
        #: ``_pool_history`` so concurrent ``dispatch_stats()`` readers never
        #: see a session's counters in both places at once.
        self._session_lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._running = False
        self._stopping = False
        #: Dispatch counters of already-closed sessions (pool recycles).
        self._pool_history = DispatchStats(dispatch=dispatch, workers=self.backend.workers)

    # -------------------------------------------------------------- registry
    def register_workload(self, name: str, plan_or_workflow) -> None:
        """Register a named, profiled workload clients can request.

        Must happen before a process pool forks: forked workers inherit the
        registry by memory, and a plan registered later would be invisible
        to them (and unpicklable to send).
        """
        if self._session is not None and getattr(self._session, "forked", False):
            raise RuntimeError(
                "cannot register a workload after the process pool has forked; "
                "restart() the server to re-fork with the new registry"
            )
        plan = (
            plan_or_workflow
            if isinstance(plan_or_workflow, Plan)
            else Plan(plan_or_workflow)
        )
        self._registry[name] = plan

    @property
    def workloads(self) -> Tuple[str, ...]:
        return tuple(sorted(self._registry))

    def register_execution(
        self,
        workload: str,
        outputs,
        tenant: Optional[str] = None,
    ) -> int:
        """Register a tenant's executed outputs as reusable sub-results.

        ``outputs`` maps dataset names to their materialized records (the
        union of an execution result's per-job ``job_outputs``).  Every
        intermediate dataset of the named workload present in ``outputs``
        is stored under its producing-subgraph content signature,
        origin-tagged ``tenant:<id>`` so other tenants' reuse of it shows up
        as ``cross_origin_hits`` in their attribution.  Returns the number
        of catalog entries registered.

        Visibility mirrors the cache side-channel: thread/serial pools see
        new entries immediately; a forked process pool's workers see them
        after the next pool recycle or :meth:`restart` (the registration
        lands in the parent, and workers re-fork from it).
        """
        plan = self._registry.get(workload)
        if plan is None:
            raise KeyError(f"unknown workload {workload!r}")
        origin = f"tenant:{tenant}" if tenant is not None else f"execution:{workload}"
        return register_workflow_outputs(
            self.subresults, plan.workflow, outputs, origin=origin
        )

    # ------------------------------------------------------------- lifecycle
    async def start(self, serve: bool = True) -> "PlanningServer":
        """Open for traffic.  ``serve=False`` admits but does not dispatch
        (requests queue until :meth:`resume` — the drain-control used by the
        admission tests)."""
        if self._running:
            return self
        self._loop = asyncio.get_running_loop()
        self._stopping = False
        self.admission.reopen()
        self._running = True
        if serve:
            self.resume()
        return self

    def resume(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        if not self._running:
            raise RuntimeError("server is not started")
        if self._thread is not None and self._thread.is_alive():
            return
        self._thread = threading.Thread(
            target=self._serve_loop, name="planning-server", daemon=True
        )
        self._thread.start()

    async def stop(self, persist: bool = True) -> None:
        """Drain queued requests, merge worker state, persist caches."""
        if not self._running:
            return
        self._stopping = True
        self.admission.close()
        loop = asyncio.get_running_loop()
        if self._thread is not None and self._thread.is_alive():
            await loop.run_in_executor(None, self._thread.join)
        elif len(self.admission):
            # start(serve=False) with queued work: drain synchronously so
            # stop() never strands accepted requests.
            await loop.run_in_executor(None, self._serve_loop)
        self._thread = None
        await loop.run_in_executor(None, self._close_session)
        self._running = False
        if persist:
            if self.costs.cache_path:
                self.costs.save_cache(merge_first=True)
            if self.decisions.cache_path and self.decisions.enabled:
                self.decisions.save_cache(merge_first=True)
            if self.subresults.cache_path and self.subresults.enabled:
                self.subresults.save_cache(merge_first=True)

    async def restart(self, persist: bool = True) -> "PlanningServer":
        """Stop (merging worker caches) and start again, warm.

        For a process pool this is the warm-restart story: the old workers'
        cache shards merged on close, and the new workers fork from the
        merged parent — so the next wave's lookups hit.
        """
        await self.stop(persist=persist)
        return await self.start()

    async def __aenter__(self) -> "PlanningServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # --------------------------------------------------------------- clients
    async def submit(self, request: PlanRequest, timeout: Optional[float] = None) -> PlanResponse:
        """Submit one request; resolves when its optimization completes.

        Raises :class:`AdmissionRejected` when the queue (or the tenant's
        quota) is full, the server is stopped, or the request names an
        unknown workload/variant; raises :class:`asyncio.TimeoutError` after
        ``timeout`` seconds (the request is withdrawn — if it was already
        executing, its response is discarded on completion).
        """
        self.stats.count(request.tenant, "submitted")
        if not self._running:
            self.stats.count(request.tenant, "rejected")
            raise AdmissionRejected("server is not running", request.tenant)
        if request.workload not in self._registry:
            self.stats.count(request.tenant, "rejected")
            raise AdmissionRejected(f"unknown workload {request.workload!r}", request.tenant)
        if request.optimizer not in OPTIMIZER_VARIANTS:
            self.stats.count(request.tenant, "rejected")
            raise AdmissionRejected(f"unknown optimizer {request.optimizer!r}", request.tenant)
        if request.deadline_s is not None and request.deadline_s <= 0:
            self.stats.count(request.tenant, "rejected")
            raise AdmissionRejected(
                f"deadline_s must be positive, got {request.deadline_s!r}", request.tenant
            )
        loop = asyncio.get_running_loop()
        ticket = _Ticket(
            request=request,
            future=loop.create_future(),
            loop=loop,
            enqueued=time.perf_counter(),
            deadline_at=(
                time.monotonic() + request.deadline_s
                if request.deadline_s is not None
                else None
            ),
        )
        try:
            self.admission.offer(
                request.tenant,
                ticket,
                priority=request.priority,
                deadline_at=ticket.deadline_at,
            )
        except AdmissionRejected:
            self.stats.count(request.tenant, "rejected")
            raise
        self.stats.count(request.tenant, "accepted")
        try:
            if timeout is not None:
                return await asyncio.wait_for(ticket.future, timeout)
            return await ticket.future
        except (asyncio.CancelledError, asyncio.TimeoutError):
            # First claimant wins: if the dispatcher already completed the
            # request, the cancellation is too late — the lifecycle counters
            # must show completed xor cancelled, never both.
            if ticket.claim("cancelled"):
                self.stats.count(request.tenant, "cancelled")
            self.admission.remove(request.tenant, ticket)
            raise

    # ----------------------------------------------------------- dispatcher
    def _serve_loop(self) -> None:
        while True:
            batch = self.admission.take_batch(self._max_batch, timeout=0.05)
            if not batch:
                # stop() closes admission; drain what was accepted, then exit.
                if self.admission.closed and not len(self.admission):
                    break
                continue
            tickets = [ticket for ticket in batch if not ticket.cancelled]
            if not tickets:
                continue
            self._run_batch(tickets)
            self.stats.batches += 1

    def _ensure_session(self):
        if self._session is None:
            side = merge_side_channels(
                cost_service_side_channel(self.costs),
                (
                    decision_cache_side_channel(self.decisions)
                    if self.decisions.enabled
                    else None
                ),
                (
                    subresult_catalog_side_channel(self.subresults)
                    if self.subresults.enabled
                    else None
                ),
            )
            self._session = self.backend.session(
                self._execute, side, dispatch=self.dispatch
            )
        return self._session

    def _close_session(self) -> None:
        with self._session_lock:
            session = self._session
            self._session = None
            if session is not None:
                self._pool_history.accumulate(session.dispatch_stats)
        if session is not None:
            session.close()

    def breaker(self, tenant: str) -> CircuitBreaker:
        """The (created-on-first-use) circuit breaker of one tenant."""
        breaker = self._breakers.get(tenant)
        if breaker is None:
            threshold, backoff, max_backoff = self._breaker_config
            breaker = self._breakers[tenant] = CircuitBreaker(
                failure_threshold=threshold,
                backoff_s=backoff,
                max_backoff_s=max_backoff,
            )
        return breaker

    def _run_batch(self, tickets: List[_Ticket]) -> None:
        session = self._ensure_session()
        for ticket in tickets:
            # Breaker consult happens here, on the dispatcher thread, so the
            # verdict rides into the worker as plain data.
            breaker = self.breaker(ticket.request.tenant)
            probing = breaker.state != "closed"
            ticket.allow_full = breaker.allow_full()
            if ticket.allow_full and probing:
                self.stats.count(ticket.request.tenant, "breaker_probes")
            elif not ticket.allow_full:
                self.stats.count(ticket.request.tenant, "breaker_short_circuits")
        work = [
            (
                t.request.tenant,
                t.request.workload,
                t.request.optimizer,
                t.request.seed,
                t.deadline_at,
                t.allow_full,
            )
            for t in tickets
        ]
        costs = [t.request.cost_weight for t in tickets]
        dispatched = time.perf_counter()
        try:
            raw_responses = session.run(work, costs=costs)
        except RuntimeError as exc:
            # The pool failed hard (all workers dead, or a request kept
            # dying).  Fail this batch cleanly and recycle the pool so the
            # next batch gets fresh workers; nothing was double-absorbed —
            # one request is one chunk is one payload.
            self._close_session()
            for ticket in tickets:
                self._resolve_error(ticket, f"worker pool failed: {exc}", dispatched)
            return
        for ticket, raw in zip(tickets, raw_responses):
            self._resolve(ticket, raw, dispatched)
        # A stealing fork pool survives individual deaths; recycle once the
        # batch is answered so capacity recovers (close merges the
        # survivors' caches, the next batch re-forks at full strength).
        if getattr(session, "forked", False) and session.live_workers < self.backend.workers:
            self._close_session()

    def _execute(self, work: Tuple[str, str, str, int, Optional[float], bool]):
        """Worker-side: run one optimization down the degradation ladder.

        Runs on whatever worker the pool chose (a pool thread, a forked
        process, or inline for one-request batches); returns only plain
        picklable data.  Rungs are attempted cheapest-last; a rung's
        transient failure (or an expired time budget) steps down to the
        next, so every request ends in *some* usable plan — only a
        :class:`~repro.common.errors.TerminalError` (or the whole ladder
        failing) produces an error tuple.
        """
        tenant, workload, optimizer, seed, deadline_at, allow_full = work
        started = time.perf_counter()
        cost_sink = CostServiceStats()
        decision_sink = DecisionCacheStats()
        subresult_sink = SubResultCatalogStats()
        budget = TimeBudget(deadline_at=deadline_at) if deadline_at is not None else None
        full_attempted = False
        full_failed = False
        notes: List[str] = []
        try:
            fault_site("server.execute", tenant=tenant, workload=workload, optimizer=optimizer)
            plan = self._registry[workload]
            rungs: List[int] = []
            if allow_full:
                rungs.append(LEVEL_FULL)
            else:
                notes.append("full: skipped (circuit breaker open)")
            if optimizer != "Baseline":
                # Baseline never runs the unit search: replay/single-phase
                # would just repeat the full rung, so its ladder skips them.
                rungs.extend((LEVEL_REPLAY_ONLY, LEVEL_SINGLE_PHASE))
            rungs.append(LEVEL_UNOPTIMIZED)
            result = None
            level = LEVEL_UNOPTIMIZED
            with self.costs.origin(f"tenant:{tenant}"), self.subresults.origin(f"tenant:{tenant}"):
                with self.costs.attribute_to(cost_sink):
                    with self.decisions.attribute_to(decision_sink):
                        with self.subresults.attribute_to(subresult_sink):
                            for rung in rungs:
                                name = level_name(rung)
                                if (
                                    rung != LEVEL_UNOPTIMIZED
                                    and budget is not None
                                    and budget.expired
                                ):
                                    # No budget left to search with: only the
                                    # final rung can still answer in time.
                                    notes.append(f"{name}: skipped (deadline exhausted)")
                                    continue
                                if rung == LEVEL_FULL:
                                    full_attempted = True
                                try:
                                    fault_site(
                                        f"server.rung.{name}",
                                        tenant=tenant,
                                        workload=workload,
                                        optimizer=optimizer,
                                    )
                                    result = self._run_rung(rung, optimizer, seed, plan, budget)
                                except TerminalError:
                                    # No rung can fix a terminal failure; the
                                    # request fails outright.
                                    if rung == LEVEL_FULL:
                                        full_failed = True
                                    raise
                                except Exception as exc:
                                    if rung == LEVEL_FULL:
                                        full_failed = True
                                    notes.append(f"{name}: {type(exc).__name__}: {exc}")
                                    continue
                                level = rung
                                break
                            if result is None:
                                raise OptimizationError(
                                    "degradation ladder exhausted: " + "; ".join(notes)
                                )
                            # Jobs the served plan no longer runs — credited
                            # from the final plan only (candidates that lost
                            # the arbitration must not count).
                            if result.jobs_eliminated_by_reuse:
                                self.subresults.record_jobs_eliminated(
                                    result.jobs_eliminated_by_reuse
                                )
        except Exception:
            return (
                "error",
                traceback.format_exc(),
                os.getpid(),
                time.perf_counter() - started,
                cost_sink,
                decision_sink,
                subresult_sink,
                full_attempted,
                full_failed,
            )
        return (
            "ok",
            result.plan_signature(),
            result.decision_fingerprint(),
            result.estimated_cost_s,
            result.unit_decision_hits,
            result.unit_decision_misses,
            result.cross_origin_decision_hits,
            result.subresult_reuse_applications,
            result.jobs_eliminated_by_reuse,
            os.getpid(),
            time.perf_counter() - started,
            cost_sink,
            decision_sink,
            subresult_sink,
            level,
            level_name(level),
            "; ".join(notes),
            full_attempted,
            full_failed,
        )

    def _run_rung(
        self,
        rung: int,
        optimizer: str,
        seed: int,
        plan: Plan,
        budget: Optional[TimeBudget],
    ) -> OptimizationResult:
        """Execute one ladder rung; the caller handles its failure."""
        if rung == LEVEL_UNOPTIMIZED:
            return self._unoptimized_result(plan)
        variant = build_variant(
            optimizer,
            self.cluster,
            seed,
            cost_service=self.costs,
            decision_cache=self.decisions,
            subresult_catalog=self.subresults,
            backend="serial",
        )
        if rung == LEVEL_REPLAY_ONLY:
            # Memoized replay only: decision-cache hits are applied, misses
            # leave their unit untouched (and store nothing).
            variant.search.replay_only = True
            return variant.optimize(plan.copy(), budget=budget)
        if rung == LEVEL_SINGLE_PHASE:
            return variant.optimize(plan.copy(), phases=("vertical",), budget=budget)
        return variant.optimize(plan.copy(), budget=budget)

    def _unoptimized_result(self, plan: Plan) -> OptimizationResult:
        """The ladder's floor: the input plan, validated and costed as-is."""
        copied = plan.copy()
        copied.workflow.validate()
        estimate = self.costs.estimate_workflow(copied.workflow)
        return OptimizationResult(
            plan=copied,
            estimated_cost_s=estimate.total_s,
            optimization_time_s=0.0,
            optimizer="Unoptimized",
        )

    # ------------------------------------------------------------ resolution
    def _resolve(self, ticket: _Ticket, raw, dispatched: float) -> None:
        request = ticket.request
        now = time.perf_counter()
        if raw[0] == "error":
            (
                _tag,
                error,
                pid,
                service_s,
                cost_sink,
                decision_sink,
                subresult_sink,
                full_attempted,
                full_failed,
            ) = raw
            response = PlanResponse(
                tenant=request.tenant,
                workload=request.workload,
                optimizer=request.optimizer,
                seed=request.seed,
                ok=False,
                error=error,
                worker_pid=pid,
                queue_wait_s=dispatched - ticket.enqueued,
                service_s=service_s,
                latency_s=now - ticket.enqueued,
                cost_stats=cost_sink,
                decision_stats=decision_sink,
                subresult_stats=subresult_sink,
            )
        else:
            (
                _tag,
                signature,
                fingerprint,
                estimated,
                decision_hits,
                decision_misses,
                cross_origin,
                reuse_applications,
                jobs_eliminated,
                pid,
                service_s,
                cost_sink,
                decision_sink,
                subresult_sink,
                level,
                level_label,
                degradation_reason,
                full_attempted,
                full_failed,
            ) = raw
            response = PlanResponse(
                tenant=request.tenant,
                workload=request.workload,
                optimizer=request.optimizer,
                seed=request.seed,
                ok=True,
                plan_signature=signature,
                decision_fingerprint=fingerprint,
                estimated_cost_s=estimated,
                worker_pid=pid,
                queue_wait_s=dispatched - ticket.enqueued,
                service_s=service_s,
                latency_s=now - ticket.enqueued,
                unit_decision_hits=decision_hits,
                unit_decision_misses=decision_misses,
                cross_origin_decision_hits=cross_origin,
                subresult_reuse_applications=reuse_applications,
                jobs_eliminated_by_reuse=jobs_eliminated,
                cost_stats=cost_sink,
                decision_stats=decision_sink,
                subresult_stats=subresult_sink,
                degradation_level=level,
                degradation=level_label,
                degradation_reason=degradation_reason,
            )
        self._record_full_outcome(request.tenant, full_attempted, full_failed, response.ok)
        # The tenant's ledger always folds the attribution deltas — the work
        # happened, so the invariant must include it even for a request the
        # client already claimed as cancelled; the lifecycle counters,
        # though, record completed xor cancelled (first claimant wins).
        counted = ticket.claim("completed")
        self.stats.record_completion(
            request.tenant,
            latency_s=response.latency_s,
            queue_wait_s=response.queue_wait_s,
            service_s=response.service_s,
            cost_delta=response.cost_stats,
            decision_delta=response.decision_stats,
            ok=response.ok,
            subresult_delta=response.subresult_stats,
            count_lifecycle=counted,
            degradation_level=response.degradation_level,
            degradation_label=response.degradation,
        )
        self._deliver(ticket, response)

    def _record_full_outcome(
        self, tenant: str, full_attempted: bool, full_failed: bool, ok: bool
    ) -> None:
        """Feed one request's full-search outcome to the tenant's breaker."""
        if not full_attempted:
            return
        breaker = self.breaker(tenant)
        if full_failed or not ok:
            trips_before = breaker.trips
            breaker.record_failure()
            if breaker.trips > trips_before:
                self.stats.count(tenant, "breaker_trips")
        else:
            breaker.record_success()

    def _resolve_error(self, ticket: _Ticket, error: str, dispatched: float) -> None:
        request = ticket.request
        now = time.perf_counter()
        response = PlanResponse(
            tenant=request.tenant,
            workload=request.workload,
            optimizer=request.optimizer,
            seed=request.seed,
            ok=False,
            error=error,
            queue_wait_s=dispatched - ticket.enqueued,
            latency_s=now - ticket.enqueued,
        )
        # A pool-level failure killed the full search this ticket was
        # allowed to attempt; the breaker must see it.
        self._record_full_outcome(request.tenant, ticket.allow_full, True, False)
        counted = ticket.claim("completed")
        self.stats.record_completion(
            request.tenant,
            latency_s=response.latency_s,
            queue_wait_s=response.queue_wait_s,
            service_s=0.0,
            cost_delta=None,
            decision_delta=None,
            ok=False,
            count_lifecycle=counted,
        )
        self._deliver(ticket, response)

    def _shed_ticket(self, ticket: _Ticket) -> None:
        """Answer a deadline-expired, never-dispatched request (degraded).

        Called by the admission queue (dispatcher thread, outside its lock)
        for items shed in ``take_batch``.  The response is the ladder floor
        — an unoptimized, validated, costed plan — delivered late rather
        than dropped: the zero-hung-requests contract.
        """
        if not ticket.claim("completed"):
            return  # the client already withdrew it
        request = ticket.request
        now = time.perf_counter()
        started = now
        cost_sink = CostServiceStats()
        decision_sink = DecisionCacheStats()
        subresult_sink = SubResultCatalogStats()
        reason = "shed: deadline expired before dispatch"
        try:
            plan = self._registry[request.workload]
            with self.costs.origin(f"tenant:{request.tenant}"):
                with self.costs.attribute_to(cost_sink):
                    with self.decisions.attribute_to(decision_sink):
                        with self.subresults.attribute_to(subresult_sink):
                            result = self._unoptimized_result(plan)
            response = PlanResponse(
                tenant=request.tenant,
                workload=request.workload,
                optimizer=request.optimizer,
                seed=request.seed,
                ok=True,
                plan_signature=result.plan_signature(),
                decision_fingerprint=result.decision_fingerprint(),
                estimated_cost_s=result.estimated_cost_s,
                worker_pid=os.getpid(),
                queue_wait_s=now - ticket.enqueued,
                service_s=time.perf_counter() - started,
                latency_s=time.perf_counter() - ticket.enqueued,
                cost_stats=cost_sink,
                decision_stats=decision_sink,
                subresult_stats=subresult_sink,
                degradation_level=LEVEL_UNOPTIMIZED,
                degradation=level_name(LEVEL_UNOPTIMIZED),
                degradation_reason=reason,
                shed=True,
            )
        except Exception:
            response = PlanResponse(
                tenant=request.tenant,
                workload=request.workload,
                optimizer=request.optimizer,
                seed=request.seed,
                ok=False,
                error=traceback.format_exc(),
                queue_wait_s=now - ticket.enqueued,
                latency_s=time.perf_counter() - ticket.enqueued,
                cost_stats=cost_sink,
                decision_stats=decision_sink,
                subresult_stats=subresult_sink,
                degradation_reason=reason,
                shed=True,
            )
        self.stats.record_completion(
            request.tenant,
            latency_s=response.latency_s,
            queue_wait_s=response.queue_wait_s,
            service_s=response.service_s,
            cost_delta=response.cost_stats,
            decision_delta=response.decision_stats,
            ok=response.ok,
            subresult_delta=response.subresult_stats,
            degradation_level=response.degradation_level,
            degradation_label=response.degradation,
            shed=True,
        )
        self._deliver(ticket, response)

    def _deliver(self, ticket: _Ticket, response: PlanResponse) -> None:
        def set_result() -> None:
            if not ticket.future.done():
                ticket.future.set_result(response)

        ticket.loop.call_soon_threadsafe(set_result)

    # -------------------------------------------------------------- insight
    def dispatch_stats(self) -> DispatchStats:
        """Aggregated pool accounting across every session so far."""
        total = DispatchStats(dispatch=self.dispatch, workers=self.backend.workers)
        with self._session_lock:
            total.accumulate(self._pool_history)
            if self._session is not None:
                total.accumulate(self._session.dispatch_stats)
        return total

    def worker_pids(self) -> List[int]:
        """PIDs of the live pool workers (process pools only; else [])."""
        if self._session is not None and hasattr(self._session, "worker_pids"):
            return self._session.worker_pids()
        return []
