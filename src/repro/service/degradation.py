"""The planning service's graceful-degradation ladder and circuit breaker.

Every admitted request must terminate with a *usable* plan before its
deadline.  When the full search cannot deliver that — it failed, its time
budget expired, or the tenant's breaker is open — the server steps down a
**ladder** of strictly cheaper rungs (``docs/resilience.md``):

====  ==============  =====================================================
lvl   name            what runs
====  ==============  =====================================================
0     full            the complete two-phase search (bit-identical contract)
1     replay_only     memoized decision replay only — cache hits are
                      applied, misses leave their unit untouched
2     single_phase    a best-effort vertical-only search
3     unoptimized     the validated input plan, costed but not transformed
====  ==============  =====================================================

Responses carry the level they were served at plus a reason trail, so a
degraded answer can never masquerade as the bit-identical full result.

The per-tenant :class:`CircuitBreaker` protects the whole service from a
tenant whose full searches fail repeatedly (a poisoned workload, a bad
profile): after ``failure_threshold`` consecutive full-search failures it
**opens** and the tenant's requests skip straight to the degraded rungs,
until an exponential-backoff timer lets a single **half-open probe**
attempt the full search again.  The breaker is only touched from the
dispatcher thread, so it needs no lock.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "DEGRADATION_LEVELS",
    "LEVEL_FULL",
    "LEVEL_REPLAY_ONLY",
    "LEVEL_SINGLE_PHASE",
    "LEVEL_UNOPTIMIZED",
    "level_name",
]

#: Ladder rungs, cheapest-last; index = degradation level.
DEGRADATION_LEVELS = ("full", "replay_only", "single_phase", "unoptimized")

LEVEL_FULL = 0
LEVEL_REPLAY_ONLY = 1
LEVEL_SINGLE_PHASE = 2
LEVEL_UNOPTIMIZED = 3

#: The breaker's three states.
BREAKER_STATES = ("closed", "open", "half_open")


def level_name(level: int) -> str:
    """The ladder rung's label for a numeric degradation level."""
    return DEGRADATION_LEVELS[level]


class CircuitBreaker:
    """Per-tenant full-search breaker (dispatcher-thread only, lock-free).

    * **closed** — full searches allowed; ``failure_threshold`` consecutive
      failures trip it open.
    * **open** — full searches denied (:meth:`allow_full` returns False and
      counts a short-circuit) until ``retry_at`` passes.
    * **half_open** — exactly one in-flight **probe** request may attempt
      the full search; its success closes the breaker and resets the
      backoff, its failure re-opens with the backoff doubled (capped at
      ``max_backoff_s``).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        backoff_s: float = 0.5,
        max_backoff_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.base_backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self._clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.current_backoff_s = backoff_s
        self.retry_at = 0.0
        self._probe_in_flight = False
        # Counters for exact reconciliation in the resilience battery.
        self.trips = 0
        self.probes = 0
        self.short_circuits = 0

    def allow_full(self) -> bool:
        """May the next request for this tenant attempt the full search?

        Mutates breaker state: an open breaker whose backoff elapsed moves
        to half-open and grants the single probe; every denial counts a
        short-circuit.
        """
        if self.state == "closed":
            return True
        if self.state == "open" and self._clock() >= self.retry_at:
            self.state = "half_open"
            self._probe_in_flight = False
        if self.state == "half_open" and not self._probe_in_flight:
            self._probe_in_flight = True
            self.probes += 1
            return True
        self.short_circuits += 1
        return False

    def record_success(self) -> None:
        """A full search completed: close and reset the backoff."""
        self.state = "closed"
        self.consecutive_failures = 0
        self.current_backoff_s = self.base_backoff_s
        self._probe_in_flight = False

    def record_failure(self) -> None:
        """A full search failed: count it; trip when the threshold is met.

        A half-open probe failure re-trips immediately (one strike), with
        the backoff doubled — the classic exponential-backoff half-open
        breaker.
        """
        self.consecutive_failures += 1
        if self.state == "half_open" or self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = "open"
        self.trips += 1
        self.retry_at = self._clock() + self.current_backoff_s
        self.current_backoff_s = min(self.current_backoff_s * 2, self.max_backoff_s)
        self._probe_in_flight = False

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "current_backoff_s": self.current_backoff_s,
            "trips": self.trips,
            "probes": self.probes,
            "short_circuits": self.short_circuits,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.consecutive_failures}, trips={self.trips})"
        )
