"""Per-tenant service accounting with an exact reconciliation contract.

Every request the :class:`~repro.service.server.PlanningServer` executes
runs under a cost-service **origin label** (``tenant:<id>``) and a pair of
**attribution sinks** — one :class:`~repro.whatif.service.CostServiceStats`
and one :class:`~repro.core.decision_cache.DecisionCacheStats` that receive
exactly the counter deltas that request produced, wherever it ran (the
thread pool's shared counters or a forked worker's merged chunk payload).
:class:`ServiceStats` folds those per-request deltas into per-tenant
totals.

That design gives an *exact* invariant rather than a monitoring
approximation: because the global cache counters and the per-request sinks
are incremented by the same code paths, the per-tenant totals sum to the
global ``CostService``/``DecisionCache`` deltas **to the counter**, under
any interleaving of tenants, batches, and backends —
``tests/test_planning_service.py`` asserts it.  ``cross_origin_hits``
additionally shows how much of one tenant's traffic was answered by cache
entries another tenant (or a persisted store) paid for — the ReStore
argument for a shared warm cache, measured per tenant.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.decision_cache import DecisionCacheStats
from repro.core.subresults import SubResultCatalogStats
from repro.whatif.service import CostServiceStats

__all__ = ["ServiceStats", "TenantStats", "percentile"]


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]); 0.0 for an empty sample."""
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class TenantStats:
    """Everything the service knows about one tenant's traffic."""

    tenant: str
    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    cancelled: int = 0
    completed: int = 0
    failed: int = 0
    #: Completed requests answered below the full rung (shed ones excluded).
    degraded: int = 0
    #: Degraded completions by ladder-rung label (``replay_only``…).
    degraded_by_level: Dict[str, int] = field(default_factory=dict)
    #: Requests answered with an unoptimized plan because their deadline
    #: expired before dispatch (disjoint from ``degraded``).
    shed: int = 0
    #: Circuit-breaker activity for this tenant's full searches.
    breaker_trips: int = 0
    breaker_probes: int = 0
    breaker_short_circuits: int = 0
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    #: Wall-clock submit→response latency of every completed request.
    latencies: List[float] = field(default_factory=list)
    #: Exact cost-service activity attributed to this tenant's requests.
    cost_stats: CostServiceStats = field(default_factory=CostServiceStats)
    #: Exact decision-cache activity attributed to this tenant's requests.
    decision_stats: DecisionCacheStats = field(default_factory=DecisionCacheStats)
    #: Exact sub-result catalog activity attributed to this tenant's
    #: requests; ``cross_origin_hits`` here measures plans served from
    #: sub-results another tenant's executions registered.
    subresult_stats: SubResultCatalogStats = field(default_factory=SubResultCatalogStats)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of this tenant's job lookups served from the cost cache."""
        return self.cost_stats.cache_hit_rate

    @property
    def decision_hit_rate(self) -> float:
        return self.decision_stats.hit_rate

    def as_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "completed": self.completed,
            "failed": self.failed,
            "degraded": self.degraded,
            "degraded_by_level": dict(self.degraded_by_level),
            "shed": self.shed,
            "breaker_trips": self.breaker_trips,
            "breaker_probes": self.breaker_probes,
            "breaker_short_circuits": self.breaker_short_circuits,
            "queue_wait_s": self.queue_wait_s,
            "service_s": self.service_s,
            "latency_p50_s": percentile(self.latencies, 50),
            "latency_p99_s": percentile(self.latencies, 99),
            "cache_hit_rate": self.cache_hit_rate,
            "decision_hit_rate": self.decision_hit_rate,
            "cost_stats": self.cost_stats.as_dict(),
            "decision_stats": self.decision_stats.as_dict(),
            "subresult_stats": self.subresult_stats.as_dict(),
        }


class ServiceStats:
    """Thread-safe per-tenant roll-up of the server's activity."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantStats] = {}
        self.batches = 0

    def tenant(self, name: str) -> TenantStats:
        """The (created-on-first-use) stats row of one tenant."""
        with self._lock:
            stats = self._tenants.get(name)
            if stats is None:
                stats = self._tenants[name] = TenantStats(tenant=name)
            return stats

    @property
    def tenants(self) -> Dict[str, TenantStats]:
        """Snapshot view of the per-tenant rows (keyed by tenant id)."""
        with self._lock:
            return dict(self._tenants)

    # ------------------------------------------------------------ recording
    def count(self, tenant: str, event: str) -> None:
        """Bump one lifecycle counter (submitted/accepted/rejected/…)."""
        stats = self.tenant(tenant)
        with self._lock:
            setattr(stats, event, getattr(stats, event) + 1)

    def record_completion(
        self,
        tenant: str,
        latency_s: float,
        queue_wait_s: float,
        service_s: float,
        cost_delta: Optional[CostServiceStats],
        decision_delta: Optional[DecisionCacheStats],
        ok: bool = True,
        subresult_delta: Optional[SubResultCatalogStats] = None,
        count_lifecycle: bool = True,
        degradation_level: int = 0,
        degradation_label: str = "",
        shed: bool = False,
    ) -> None:
        """Fold one finished request's exact deltas into its tenant's row.

        ``count_lifecycle=False`` suppresses the completed/failed/latency
        counters (the client already claimed the request as cancelled) but
        still folds the attribution deltas — the cache counters saw the
        work, so the invariant requires the sinks to as well.  ``completed``
        counts every delivered answer, full or degraded; ``shed`` and
        ``degraded`` are disjoint refinements of it (a shed response is
        counted as shed only, a non-shed sub-full response as degraded).
        """
        stats = self.tenant(tenant)
        with self._lock:
            if count_lifecycle:
                if ok:
                    stats.completed += 1
                    stats.latencies.append(latency_s)
                    if shed:
                        stats.shed += 1
                    elif degradation_level > 0:
                        stats.degraded += 1
                        label = degradation_label or str(degradation_level)
                        stats.degraded_by_level[label] = (
                            stats.degraded_by_level.get(label, 0) + 1
                        )
                else:
                    stats.failed += 1
            stats.queue_wait_s += queue_wait_s
            stats.service_s += service_s
            if cost_delta is not None:
                stats.cost_stats.accumulate(cost_delta)
            if decision_delta is not None:
                stats.decision_stats.accumulate(decision_delta)
            if subresult_delta is not None:
                stats.subresult_stats.accumulate(subresult_delta)

    # ------------------------------------------------------------- roll-ups
    def total_cost_stats(self) -> CostServiceStats:
        """Sum of every tenant's attributed cost-service counters.

        By the attribution invariant this equals the global
        ``CostService.stats_snapshot()`` delta over the served window.
        """
        total = CostServiceStats()
        with self._lock:
            for stats in self._tenants.values():
                total.accumulate(stats.cost_stats)
        return total

    def total_decision_stats(self) -> DecisionCacheStats:
        """Sum of every tenant's attributed decision-cache counters."""
        total = DecisionCacheStats()
        with self._lock:
            for stats in self._tenants.values():
                total.accumulate(stats.decision_stats)
        return total

    def total_subresult_stats(self) -> SubResultCatalogStats:
        """Sum of every tenant's attributed sub-result catalog counters."""
        total = SubResultCatalogStats()
        with self._lock:
            for stats in self._tenants.values():
                total.accumulate(stats.subresult_stats)
        return total

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            rows = {name: stats.as_dict() for name, stats in self._tenants.items()}
            batches = self.batches
        return {
            "batches": batches,
            "tenants": rows,
            "total_cost_stats": self.total_cost_stats().as_dict(),
            "total_decision_stats": self.total_decision_stats().as_dict(),
            "total_subresult_stats": self.total_subresult_stats().as_dict(),
        }

    def report(self) -> str:
        """Human-readable per-tenant table (completed, latency, hit rates)."""
        header = (
            f"{'tenant':<12} {'done':>5} {'fail':>5} {'rej':>5} {'cxl':>5} "
            f"{'p50 ms':>8} {'p99 ms':>8} {'cost hit%':>10} {'decision hit%':>14} "
            f"{'cross-origin':>13}"
        )
        lines = [header, "-" * len(header)]
        for name in sorted(self.tenants):
            stats = self.tenant(name)
            lines.append(
                f"{name:<12} {stats.completed:>5} {stats.failed:>5} "
                f"{stats.rejected:>5} {stats.cancelled:>5} "
                f"{percentile(stats.latencies, 50) * 1e3:>8.1f} "
                f"{percentile(stats.latencies, 99) * 1e3:>8.1f} "
                f"{stats.cache_hit_rate * 100:>9.1f}% "
                f"{stats.decision_hit_rate * 100:>13.1f}% "
                f"{stats.decision_stats.cross_origin_hits + stats.cost_stats.cross_origin_hits:>13}"
            )
        return "\n".join(lines)
