"""Intra-job vertical packing (paper §3.1).

Converts a consumer MapReduce job Jc into a Map-only job whose map tasks run
``Mc`` followed by ``Rc`` as a pipelined stream, eliminating Jc's partition,
sort, and shuffle phases.  The producer job Jp takes over the grouping work:
its partition function is changed to partition on ``Jp.K2 ∩ Jc.K2`` and sort
per partition on the combined key, and Jc's configuration is constrained so
every producer reduce task's output is read, in order, by a single map task
of Jc (Figure 4).

Preconditions (checked from schema / dataset annotations):

1. a one-to-one (or none-to-one) producer-consumer subgraph exists;
2. the fields of ``Jc.K2`` flow unchanged from the input of ``Rp`` to the
   output of ``Mc`` — verified through identical field names in the schema
   annotations (``Jc.K2 ⊆ Jp.K2``, ``Jc.K2 ⊆ Jp.K3``, and ``Mc`` emits those
   fields from its input);
3. for the none-to-one case, the input dataset annotation must show the data
   already partitioned on a subset of ``Jc.K2`` and sorted to group on it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.plan import Plan
from repro.core.transformations.base import (
    Transformation,
    TransformationApplication,
    TransformationGroup,
)
from repro.mapreduce.partitioner import PartitionFunction
from repro.mapreduce.pipeline import Pipeline
from repro.whatif.adjustment import adjust_profile_for_intra_job_packing
from repro.workflow.graph import JobVertex, Workflow


class IntraJobVerticalPacking(Transformation):
    """Turn a consumer job into a map-only job pipelined after its producer."""

    name = "intra-job-vertical-packing"
    group = TransformationGroup.VERTICAL
    structural = True

    def find_applications(self, plan: Plan, unit_jobs: Sequence[str]) -> List[TransformationApplication]:
        workflow = plan.workflow
        applications: List[TransformationApplication] = []
        unit = set(unit_jobs)
        for consumer_name in unit_jobs:
            if not workflow.has_job(consumer_name):
                continue
            consumer = workflow.job(consumer_name)
            application = self._check_consumer(workflow, consumer, unit)
            if application is not None:
                applications.append(application)
        return applications

    # ------------------------------------------------------------ conditions
    def _check_consumer(
        self,
        workflow: Workflow,
        consumer: JobVertex,
        unit: set,
    ) -> Optional[TransformationApplication]:
        job = consumer.job
        if job.is_map_only or len(job.pipelines) != 1:
            return None
        pipeline = job.pipelines[0]
        if not pipeline.reduce_ops:
            return None
        if len(pipeline.input_datasets) != 1:
            # Many-to-one packing would require aligned partitioning across
            # all producers; we restrict to the single-input cases whose
            # correctness the execution engine can guarantee.
            return None
        schema = consumer.annotations.schema
        if schema is None or not schema.knows_map_output_key:
            return None

        consumer_k2: Tuple[str, ...] = tuple(pipeline.shuffle_group_fields)
        if not consumer_k2 or not set(consumer_k2).issubset(schema.k2 or frozenset()):
            return None
        if not schema.map_emits_fields_from_input(consumer_k2):
            return None

        dataset_name = pipeline.input_datasets[0]
        producer = workflow.producer_of(dataset_name)

        if producer is None:
            return self._check_none_to_one(workflow, consumer, dataset_name, consumer_k2)

        if producer.name not in unit:
            return None
        return self._check_one_to_one(producer, consumer, dataset_name, consumer_k2)

    def _check_one_to_one(
        self,
        producer: JobVertex,
        consumer: JobVertex,
        dataset_name: str,
        consumer_k2: Tuple[str, ...],
    ) -> Optional[TransformationApplication]:
        producer_job = producer.job
        if producer_job.is_map_only or len(producer_job.pipelines) != 1:
            return None
        producer_schema = producer.annotations.schema
        if producer_schema is None or producer_schema.k2 is None or producer_schema.k3 is None:
            return None
        producer_k2 = tuple(sorted(producer_schema.k2))
        if not set(consumer_k2).issubset(producer_schema.k2):
            return None
        if not producer_schema.key_flows_through_reduce(consumer_k2):
            return None

        intersection = tuple(f for f in producer_k2 if f in set(consumer_k2))
        if not intersection:
            return None
        remainder = tuple(f for f in producer_k2 if f not in set(intersection))
        combined_sort = intersection + remainder

        new_partitioner = PartitionFunction(
            kind="hash", fields=intersection, sort_fields=combined_sort
        )
        constraint = producer.annotations.partition_constraint
        if constraint is not None and not new_partitioner.satisfies(constraint):
            return None

        return TransformationApplication(
            transformation=self.name,
            target_jobs=(producer.name, consumer.name),
            details={
                "case": "one-to-one",
                "dataset": dataset_name,
                "intersection": intersection,
                "combined_sort": combined_sort,
            },
        )

    def _check_none_to_one(
        self,
        workflow: Workflow,
        consumer: JobVertex,
        dataset_name: str,
        consumer_k2: Tuple[str, ...],
    ) -> Optional[TransformationApplication]:
        if not workflow.has_dataset(dataset_name):
            return None
        annotation = workflow.dataset(dataset_name).annotation
        if annotation is None:
            return None
        if not annotation.partitioned_on_subset_of(consumer_k2):
            return None
        if not annotation.sorted_to_group_on(consumer_k2):
            return None
        return TransformationApplication(
            transformation=self.name,
            target_jobs=(consumer.name,),
            details={"case": "none-to-one", "dataset": dataset_name},
        )

    # -------------------------------------------------------------- apply
    def apply(self, plan: Plan, application: TransformationApplication) -> Plan:
        # The rewrite is local: only the producer and consumer vertices are
        # privatized (copy-on-write); every other vertex stays shared with
        # the input plan.
        new_plan = plan.copy()
        workflow = new_plan.workflow
        case = application.details["case"]

        consumer_name = application.target_jobs[-1]
        consumer = workflow.update_job(consumer_name, self._packed_map_only_job)
        original_consumer_profile = consumer.annotations.profile

        producer_profile = None
        if case == "one-to-one":
            producer_name = application.target_jobs[0]
            intersection = tuple(application.details["intersection"])
            combined_sort = tuple(application.details["combined_sort"])
            old_partitioner = workflow.job(producer_name).job.effective_partitioner
            kind = old_partitioner.kind
            split_points = old_partitioner.split_points
            new_partitioner = PartitionFunction(
                kind=kind if kind == "range" and split_points else "hash",
                fields=intersection,
                sort_fields=combined_sort,
                split_points=split_points if kind == "range" else (),
            )
            producer = workflow.update_job(
                producer_name, lambda job: job.with_partitioner(new_partitioner)
            )
            producer_profile = producer.annotations.profile
            producer.annotations.partition_constraint = new_partitioner
            producer.annotations.conditions["chained_consumer"] = consumer_name

        if original_consumer_profile is not None:
            base = producer_profile if producer_profile is not None else original_consumer_profile
            consumer.annotations.profile = adjust_profile_for_intra_job_packing(
                base, original_consumer_profile
            )

        return self._record(new_plan, application)

    @staticmethod
    def _packed_map_only_job(job) -> "MapReduceJob":
        """The consumer's job rewritten map-only (fresh job, input untouched)."""
        old = job.pipelines[0]
        packed = Pipeline(
            tag=old.tag,
            input_datasets=tuple(old.input_datasets),
            map_ops=list(old.map_ops) + list(old.reduce_ops),
            reduce_ops=[],
            output_dataset=old.output_dataset,
            input_partition_filter=dict(old.input_partition_filter),
        )
        new_config = job.config.replace(
            num_reduce_tasks=0,
            max_parallel_maps_per_producer_reduce=1,
        )
        return type(job)(
            name=job.name,
            pipelines=[packed],
            partitioner=None,
            config=new_config,
        )
