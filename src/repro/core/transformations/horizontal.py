"""Horizontal packing (paper §3.3).

Packs the map (reduce) functions of several jobs that read the same dataset —
or, with the extended precondition, of any set of concurrently runnable jobs
— into the same map (reduce) tasks of one transformed job, sharing the read
I/O of the common input (Figure 6).  Each original job becomes a *tagged*
pipeline of the packed job: every input record flows through every pipeline
on the map side, while on the reduce side each key-value pair only flows
through the pipeline whose tag produced it.

Jobs that carry a partition-function constraint (imposed by a prior vertical
packing) are never packed, since the packed job could not honour their
constrained partition function — this is exactly the interaction that makes
Stubby apply Vertical-group transformations before Horizontal ones (§4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.plan import Plan
from repro.core.transformations.base import (
    Transformation,
    TransformationApplication,
    TransformationGroup,
)
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import PartitionFunction
from repro.whatif.adjustment import adjust_profile_for_horizontal_packing
from repro.workflow.annotations import JobAnnotations
from repro.workflow.graph import JobVertex, Workflow


class HorizontalPacking(Transformation):
    """Pack sibling jobs into one job with tagged parallel pipelines."""

    name = "horizontal-packing"
    group = TransformationGroup.HORIZONTAL
    structural = True

    def __init__(self, allow_extended: bool = True) -> None:
        #: When true, also propose packing concurrently runnable jobs that do
        #: not share an input dataset (the §3.3 extension).
        self.allow_extended = allow_extended

    def find_applications(self, plan: Plan, unit_jobs: Sequence[str]) -> List[TransformationApplication]:
        workflow = plan.workflow
        present = [name for name in unit_jobs if workflow.has_job(name)]
        packable = [
            name
            for name in present
            if self._is_packable(workflow.job(name))
            and not self._externally_constrained(workflow, workflow.job(name))
        ]

        applications: List[TransformationApplication] = []
        seen_groups = set()

        def propose(names: Sequence[str], shared_input: Optional[str], extended: bool) -> None:
            group = self._independent_group(workflow, names)
            key = tuple(sorted(group))
            if len(group) < 2 or key in seen_groups:
                return
            if self.merged_partitioner([workflow.job(n) for n in group]) is None:
                return
            seen_groups.add(key)
            applications.append(
                TransformationApplication(
                    transformation=self.name,
                    target_jobs=tuple(group),
                    details={"shared_input": shared_input, "extended": extended},
                )
            )

        # Same-input groups (the easy precondition).
        by_dataset: Dict[str, List[str]] = {}
        for name in packable:
            for dataset_name in workflow.job(name).job.input_datasets:
                by_dataset.setdefault(dataset_name, []).append(name)
        for dataset_name, names in by_dataset.items():
            propose(names, dataset_name, extended=False)

        # Extended precondition: concurrently runnable jobs with distinct inputs.
        if self.allow_extended:
            propose(packable, None, extended=True)
        return applications

    # ----------------------------------------------------------- conditions
    def _is_packable(self, vertex: JobVertex) -> bool:
        if vertex.job.config.chained_input:
            return False
        return True

    @staticmethod
    def _externally_constrained(workflow: Workflow, vertex: JobVertex) -> bool:
        """True when the job's partition function still serves an external consumer.

        A partition constraint whose chained consumer has already been
        absorbed into the job itself only protects the job's *internal*
        pipelined grouping, which the merged partitioner below preserves; a
        constraint serving a consumer that still exists in the workflow must
        not be disturbed, so such jobs are never horizontally packed.
        """
        if vertex.annotations.partition_constraint is None:
            return False
        chained_consumer = vertex.annotations.conditions.get("chained_consumer")
        if chained_consumer is None:
            return True
        return workflow.has_job(str(chained_consumer))

    @staticmethod
    def _grouping_requirements(vertices: Sequence[JobVertex]) -> List[Tuple[frozenset, frozenset]]:
        """(shuffle group fields, coarsest grouping requirement) per shuffled pipeline.

        The coarsest requirement is the intersection of the group fields of
        every reduce operator along the pipeline's reduce chain: a prior
        vertical packing may have appended a grouped reduce on a coarser key
        (e.g. ``{orderid}`` after ``{orderid, partid}``) whose records must
        all be routed to the same reduce task.
        """
        requirements: List[Tuple[frozenset, frozenset]] = []
        for vertex in vertices:
            for pipeline in vertex.job.pipelines:
                if pipeline.is_map_only:
                    continue
                shuffle_fields = frozenset(pipeline.shuffle_group_fields)
                coarsest = frozenset(pipeline.reduce_ops[0].group_fields)
                for op in pipeline.reduce_ops:
                    if op.kind == "reduce" and op.group_fields:
                        coarsest &= frozenset(op.group_fields)
                requirements.append((shuffle_fields, coarsest))
        return requirements

    @classmethod
    def merged_partitioner(cls, vertices: Sequence[JobVertex]) -> Optional[PartitionFunction]:
        """Partition function for the packed job, or ``None`` when impossible.

        A partition-field set ``F`` is valid when, for every shuffled
        pipeline with shuffle key ``G`` and coarsest grouping requirement
        ``C``, ``F ∩ G ⊆ C`` — records that agree on ``C`` then always land
        in the same partition (fields outside ``G`` are constant for that
        pipeline's keys).  Without coarse requirements the union of the
        shuffle keys is used (MapReduce's default behaviour for tagged
        pipelines); otherwise the intersection of the coarse requirements is
        used, and when that is empty the jobs cannot be packed.
        """
        requirements = cls._grouping_requirements(vertices)
        if not requirements:
            return None
        if all(coarsest == shuffle for shuffle, coarsest in requirements):
            union = set()
            for shuffle, _ in requirements:
                union |= shuffle
            fields = tuple(sorted(union))
            return PartitionFunction(kind="hash", fields=fields, sort_fields=fields)
        intersection = requirements[0][1]
        for _, coarsest in requirements[1:]:
            intersection &= coarsest
        if not intersection:
            return None
        if any(intersection & shuffle - coarsest for shuffle, coarsest in requirements):
            return None
        fields = tuple(sorted(intersection))
        return PartitionFunction(kind="hash", fields=fields, sort_fields=fields)

    @staticmethod
    def _independent_group(workflow: Workflow, names: Sequence[str]) -> List[str]:
        group: List[str] = []
        for name in names:
            if name in group:
                continue
            independent = all(
                not workflow.depends_on(name, other) and not workflow.depends_on(other, name)
                for other in group
            )
            if independent:
                group.append(name)
        return group

    # --------------------------------------------------------------- apply
    def apply(self, plan: Plan, application: TransformationApplication) -> Plan:
        # Copy-on-write safe without explicit privatization: the packed
        # vertex is built from *copied* pipelines (the sources stay shared
        # with the parent plan, untouched), and ``replace_job``/``remove_job``
        # only touch this plan's own mappings.  Copying the pipelines keeps
        # the CoW invariant that an owned vertex's payload is private, so a
        # later in-place edit (partition pruning) cannot reach a sibling.
        new_plan = plan.copy()
        workflow = new_plan.workflow
        names = list(application.target_jobs)
        vertices = [workflow.job(name) for name in names]

        pipelines = []
        for vertex in vertices:
            pipelines.extend(p.copy() for p in vertex.job.pipelines)

        merged_config = self._merged_config([vertex.job for vertex in vertices])
        merged_name = "+".join(names)
        merged_job = MapReduceJob(
            name=merged_name,
            pipelines=pipelines,
            partitioner=self.merged_partitioner(vertices),
            config=merged_config,
        )
        annotations = self._merged_annotations(vertices)

        workflow.replace_job(names[0], merged_job, annotations)
        for name in names[1:]:
            workflow.remove_job(name)
        workflow.prune_orphan_datasets()
        new_plan.record_merge(merged_name, tuple(names))
        return self._record(new_plan, application)

    @staticmethod
    def _merged_config(jobs: Sequence[MapReduceJob]) -> JobConfig:
        reduce_tasks = max(job.config.num_reduce_tasks for job in jobs)
        return JobConfig(
            num_reduce_tasks=reduce_tasks,
            split_size_mb=min(job.config.split_size_mb for job in jobs),
            io_sort_mb=max(job.config.io_sort_mb for job in jobs),
            combiner_enabled=all(job.config.combiner_enabled for job in jobs),
            compress_map_output=all(job.config.compress_map_output for job in jobs),
            compress_output=all(job.config.compress_output for job in jobs),
            forced_single_reduce=any(job.config.forced_single_reduce for job in jobs),
        )

    @staticmethod
    def _merged_annotations(vertices: Sequence[JobVertex]) -> JobAnnotations:
        annotations = JobAnnotations()
        # The combined map-output key of a horizontally packed job has no
        # single schema, so schema/filter annotations are dropped — which is
        # what later prevents vertical packing across the packed job (§4).
        profiles = [v.annotations.profile for v in vertices if v.annotations.profile is not None]
        if len(profiles) == len(vertices) and profiles:
            annotations.profile = adjust_profile_for_horizontal_packing(profiles)
        for vertex in vertices:
            for dataset_name, filter_annotation in vertex.annotations.per_input_filters.items():
                annotations.per_input_filters.setdefault(dataset_name, filter_annotation)
        return annotations
