"""Inter-job vertical packing (paper §3.2).

Moves the functions of a Map-only job into its (single) producer or consumer,
eliminating one entire job together with the reads and writes of the
intermediate dataset between them.  Preconditions: a one-to-one subgraph with
exactly one producer ``Jp`` and one consumer ``Jc``, where one of the two is
a Map-only job.  Two cases:

* **absorb the consumer** — a Map-only consumer's pipeline is appended to the
  producer's reduce side (or map side when the producer is itself map-only),
  e.g. J3+J4 → J4' and J5+J7' in the running example;
* **absorb the producer** — a Map-only producer's pipeline is prepended to
  the consumer's map side.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.plan import Plan
from repro.core.transformations.base import (
    Transformation,
    TransformationApplication,
    TransformationGroup,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.pipeline import Pipeline
from repro.whatif.adjustment import adjust_profile_for_inter_job_packing
from repro.workflow.annotations import JobAnnotations, SchemaAnnotation
from repro.workflow.graph import JobVertex, Workflow


class InterJobVerticalPacking(Transformation):
    """Eliminate a Map-only job by merging it into its producer or consumer."""

    name = "inter-job-vertical-packing"
    group = TransformationGroup.VERTICAL
    structural = True

    def find_applications(self, plan: Plan, unit_jobs: Sequence[str]) -> List[TransformationApplication]:
        workflow = plan.workflow
        unit = set(unit_jobs)
        applications: List[TransformationApplication] = []
        seen_pairs = set()
        for producer_name in unit_jobs:
            if not workflow.has_job(producer_name):
                continue
            producer = workflow.job(producer_name)
            for dataset_name in producer.job.output_datasets:
                consumers = workflow.consumers_of(dataset_name)
                if len(consumers) != 1:
                    continue
                consumer = consumers[0]
                if consumer.name not in unit or consumer.name == producer_name:
                    continue
                pair = (producer_name, consumer.name)
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                application = self._check_pair(workflow, producer, consumer, dataset_name)
                if application is not None:
                    applications.append(application)
        return applications

    # ----------------------------------------------------------- conditions
    def _check_pair(
        self,
        workflow: Workflow,
        producer: JobVertex,
        consumer: JobVertex,
        dataset_name: str,
    ) -> Optional[TransformationApplication]:
        producer_job = producer.job
        consumer_job = consumer.job
        if len(producer_job.pipelines) != 1 or len(consumer_job.pipelines) != 1:
            return None
        # The intermediate dataset must only connect this pair.
        if len(workflow.consumers_of(dataset_name)) != 1:
            return None
        if not producer_job.is_map_only and not consumer_job.is_map_only:
            return None

        if consumer_job.is_map_only:
            if tuple(consumer_job.pipelines[0].input_datasets) != (dataset_name,):
                return None
            return TransformationApplication(
                transformation=self.name,
                target_jobs=(producer.name, consumer.name),
                details={"case": "absorb-consumer", "dataset": dataset_name},
            )

        # Producer is map-only, consumer has a reduce phase.
        if tuple(consumer_job.pipelines[0].input_datasets) != (dataset_name,):
            return None
        if len(producer_job.pipelines[0].input_datasets) < 1:
            return None
        return TransformationApplication(
            transformation=self.name,
            target_jobs=(producer.name, consumer.name),
            details={"case": "absorb-producer", "dataset": dataset_name},
        )

    # --------------------------------------------------------------- apply
    def apply(self, plan: Plan, application: TransformationApplication) -> Plan:
        # Copy-on-write safe without explicit privatization: the producer and
        # consumer vertices are only *read* (``_merged_annotations`` copies
        # before mutating), and the merged vertex is built fresh —
        # ``replace_job``/``remove_job`` only touch this plan's own mappings.
        new_plan = plan.copy()
        workflow = new_plan.workflow
        producer_name, consumer_name = application.target_jobs
        producer = workflow.job(producer_name)
        consumer = workflow.job(consumer_name)
        case = application.details["case"]

        if case == "absorb-consumer":
            merged_vertex = self._absorb_consumer(producer, consumer)
        else:
            merged_vertex = self._absorb_producer(producer, consumer)

        workflow.replace_job(producer_name, merged_vertex.job, merged_vertex.annotations)
        workflow.remove_job(consumer_name)
        workflow.prune_orphan_datasets()
        new_plan.record_merge(merged_vertex.job.name, (producer_name, consumer_name))
        return self._record(new_plan, application)

    def _absorb_consumer(self, producer: JobVertex, consumer: JobVertex) -> JobVertex:
        producer_pipeline = producer.job.pipelines[0]
        consumer_pipeline = consumer.job.pipelines[0]
        merged_name = f"{producer.name}+{consumer.name}"

        if producer.job.is_map_only:
            map_ops = list(producer_pipeline.map_ops) + list(consumer_pipeline.map_ops)
            reduce_ops: list = []
        else:
            map_ops = list(producer_pipeline.map_ops)
            reduce_ops = list(producer_pipeline.reduce_ops) + list(consumer_pipeline.map_ops)

        merged_pipeline = Pipeline(
            tag=producer_pipeline.tag,
            input_datasets=tuple(producer_pipeline.input_datasets),
            map_ops=map_ops,
            reduce_ops=reduce_ops,
            output_dataset=consumer_pipeline.output_dataset,
            input_partition_filter=dict(producer_pipeline.input_partition_filter),
        )
        merged_job = MapReduceJob(
            name=merged_name,
            pipelines=[merged_pipeline],
            partitioner=producer.job.partitioner,
            config=producer.job.config,
        )
        annotations = self._merged_annotations(
            surviving=producer,
            absorbed=consumer,
            absorbed_into_map_side=producer.job.is_map_only,
            output_schema_from=consumer,
        )
        # The partition-function constraint set by the intra-job packing is
        # kept: it now describes the *internal* grouping requirement of the
        # merged reduce chain, which later partition-function changes (and
        # horizontal packings) must continue to honour.
        return JobVertex(job=merged_job, annotations=annotations)

    def _absorb_producer(self, producer: JobVertex, consumer: JobVertex) -> JobVertex:
        producer_pipeline = producer.job.pipelines[0]
        consumer_pipeline = consumer.job.pipelines[0]
        merged_name = f"{producer.name}+{consumer.name}"

        merged_pipeline = Pipeline(
            tag=consumer_pipeline.tag,
            input_datasets=tuple(producer_pipeline.input_datasets),
            map_ops=list(producer_pipeline.map_ops) + list(consumer_pipeline.map_ops),
            reduce_ops=list(consumer_pipeline.reduce_ops),
            output_dataset=consumer_pipeline.output_dataset,
            input_partition_filter=dict(producer_pipeline.input_partition_filter),
        )
        config = consumer.job.config
        if producer.job.config.chained_input and not config.chained_input:
            config = config.replace(max_parallel_maps_per_producer_reduce=1)
        merged_job = MapReduceJob(
            name=merged_name,
            pipelines=[merged_pipeline],
            partitioner=consumer.job.partitioner,
            config=config,
        )
        annotations = self._merged_annotations(
            surviving=consumer,
            absorbed=producer,
            absorbed_into_map_side=True,
            output_schema_from=consumer,
            input_schema_from=producer,
        )
        annotations.partition_constraint = consumer.annotations.partition_constraint
        return JobVertex(job=merged_job, annotations=annotations)

    @staticmethod
    def _merged_annotations(
        surviving: JobVertex,
        absorbed: JobVertex,
        absorbed_into_map_side: bool,
        output_schema_from: JobVertex,
        input_schema_from: Optional[JobVertex] = None,
    ) -> JobAnnotations:
        annotations = surviving.annotations.copy()
        surviving_schema = surviving.annotations.schema
        output_schema = output_schema_from.annotations.schema
        input_schema = (input_schema_from or surviving).annotations.schema
        if surviving_schema is not None:
            annotations.schema = SchemaAnnotation(
                k1=input_schema.k1 if input_schema else surviving_schema.k1,
                v1=input_schema.v1 if input_schema else surviving_schema.v1,
                k2=surviving_schema.k2,
                v2=surviving_schema.v2,
                k3=output_schema.k3 if output_schema else None,
                v3=output_schema.v3 if output_schema else None,
            )
        surviving_profile = surviving.annotations.profile
        absorbed_profile = absorbed.annotations.profile
        if surviving_profile is not None and absorbed_profile is not None:
            annotations.profile = adjust_profile_for_inter_job_packing(
                surviving_profile, absorbed_profile, absorbed_into_map_side
            )
        for dataset_name, filter_annotation in absorbed.annotations.per_input_filters.items():
            annotations.per_input_filters.setdefault(dataset_name, filter_annotation)
        return annotations
