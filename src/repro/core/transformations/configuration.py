"""Configuration transformation (paper §3.5).

Changes a job's configuration — reduce-task count, sort buffer, compression,
combiner — without touching the workflow graph.  There are no preconditions;
the new configuration must satisfy the conditions already present on the
job's configuration (the chaining constraint from intra-job vertical packing
and any forced-single-reduce requirement), which
:meth:`repro.mapreduce.config.JobConfig.with_settings` enforces.

Unlike the structural transformations, configuration transformations are not
enumerated exhaustively: Stubby's search drives them through Recursive Random
Search over a :class:`~repro.mapreduce.config.ConfigurationSpace` built for
each job of a candidate subplan (§4.2).  This class provides the application
mechanics (and a rule-of-thumb variant for the rule-based baselines).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.cluster import ClusterSpec
from repro.core.plan import Plan
from repro.core.transformations.base import (
    Transformation,
    TransformationApplication,
    TransformationGroup,
)
from repro.mapreduce.config import ConfigurationSpace, JobConfig


class ConfigurationTransformation(Transformation):
    """Apply a configuration point (from RRS or a rule) to one job."""

    name = "configuration"
    group = TransformationGroup.BOTH
    structural = False

    def find_applications(self, plan: Plan, unit_jobs: Sequence[str]) -> List[TransformationApplication]:
        """Configuration changes are proposed by the search (RRS), not enumerated."""
        return []

    def apply(self, plan: Plan, application: TransformationApplication) -> Plan:
        # ``set_job_config`` is copy-on-write: only the reconfigured vertex
        # is privatized (cheaply — annotations copied, pipelines shared), so
        # a configuration candidate costs O(1), not O(workflow).
        new_plan = plan.copy()
        job_name = application.details["job"]
        settings: Mapping[str, object] = application.details["settings"]
        vertex = new_plan.workflow.job(job_name)
        new_plan.set_job_config(job_name, vertex.job.config.with_settings(settings))
        return self._record(new_plan, application)

    # ------------------------------------------------------------- helpers
    @staticmethod
    def application_for(job_name: str, settings: Mapping[str, object]) -> TransformationApplication:
        """Build the application record for a chosen configuration point."""
        return TransformationApplication(
            transformation=ConfigurationTransformation.name,
            target_jobs=(job_name,),
            details={"job": job_name, "settings": dict(settings)},
        )

    @staticmethod
    def space_for_job(plan: Plan, job_name: str, cluster: ClusterSpec) -> ConfigurationSpace:
        """The configuration search space of one job on one cluster."""
        vertex = plan.workflow.job(job_name)
        job = vertex.job
        max_reduce = max(1, int(cluster.total_reduce_slots * 2))
        return ConfigurationSpace.for_job(
            max_reduce_tasks=max_reduce,
            map_only=job.is_map_only,
            has_combiner=job.has_combiner,
        )

    @staticmethod
    def apply_settings_in_place(plan: Plan, settings_by_job: Dict[str, Mapping[str, object]]) -> None:
        """Apply configuration points to several jobs of ``plan`` in place."""
        for job_name, settings in settings_by_job.items():
            vertex = plan.workflow.job(job_name)
            plan.set_job_config(job_name, vertex.job.config.with_settings(settings))

    @staticmethod
    def rule_of_thumb_config(plan: Plan, cluster: ClusterSpec) -> None:
        """Apply the manually-tuned rule-of-thumb configuration to every job.

        This mirrors how the Baseline and the rule-based comparators (YSmart,
        MRShare) pick configurations in §7: a fixed recipe, not a cost model.
        """
        for vertex in plan.workflow.jobs:
            job = vertex.job
            base = JobConfig.rule_of_thumb(cluster.total_reduce_slots, map_only=job.is_map_only)
            config = job.config.replace(
                num_reduce_tasks=job.config.num_reduce_tasks if job.config.forced_single_reduce or job.is_map_only else base.num_reduce_tasks,
                split_size_mb=base.split_size_mb,
                io_sort_mb=base.io_sort_mb,
            )
            plan.set_job_config(vertex.name, config)
