"""Transformation framework.

A transformation is defined by preconditions and postconditions: if the
preconditions hold on a plan P−, the transformation can generate a plan P+
(on which the postconditions hold) that produces the same result but may have
different cost (paper §1.1).  In code, a transformation exposes

* :meth:`Transformation.find_applications` — enumerate the places inside an
  optimization unit where the preconditions hold, given the available
  annotations; and
* :meth:`Transformation.apply` — produce the new plan for one application,
  establishing the postconditions (new pipelines, partition-function and
  configuration constraints, adjusted annotations).

Transformations never mutate the plan they are given; they return copies, so
the search can enumerate alternative subplans freely.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Sequence, Tuple

from repro.core.plan import AppliedTransformation, Plan


class TransformationGroup(Enum):
    """The two (overlapping) groups used by the two-phase search (paper §4)."""

    VERTICAL = "vertical"
    HORIZONTAL = "horizontal"
    BOTH = "both"


@dataclass(frozen=True)
class TransformationApplication:
    """One concrete opportunity to apply a transformation."""

    transformation: str
    target_jobs: Tuple[str, ...]
    details: Dict[str, object] = field(default_factory=dict)

    def as_applied(self) -> AppliedTransformation:
        """Convert to the history record stored on plans."""
        return AppliedTransformation(
            transformation=self.transformation,
            target_jobs=self.target_jobs,
            details=dict(self.details),
        )


class Transformation(ABC):
    """Base class for plan-to-plan transformations."""

    #: Short identifier used in plan histories and reports.
    name: str = "transformation"
    #: Which search phase(s) the transformation belongs to.
    group: TransformationGroup = TransformationGroup.BOTH
    #: Structural transformations change the workflow graph; non-structural
    #: ones (partition function, configuration) do not.
    structural: bool = True

    @abstractmethod
    def find_applications(self, plan: Plan, unit_jobs: Sequence[str]) -> List[TransformationApplication]:
        """Enumerate valid applications among ``unit_jobs`` of ``plan``.

        ``unit_jobs`` are the names of the jobs in the current optimization
        unit; the transformation must only propose applications whose target
        jobs are all members of the unit and whose preconditions can be
        verified from the annotations present in the plan.
        """

    @abstractmethod
    def apply(self, plan: Plan, application: TransformationApplication) -> Plan:
        """Return a new plan with ``application`` applied (input plan untouched)."""

    # ------------------------------------------------------------- helpers
    def _record(self, plan: Plan, application: TransformationApplication) -> Plan:
        plan.record(application.as_applied())
        return plan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
