"""Partition function transformation (paper §3.4).

Changes how a producer job partitions (and sorts) its map output: switching
hash partitioning to range partitioning, picking split points, or changing
the per-partition sort fields.  The headline benefit implemented here is
*partition pruning*: when a consumer's filter annotation restricts a field
that the producer can range-partition on, the consumer only needs to read the
partitions overlapping its filter (Figure 7 — jobs J4' and J6 of the running
example, and the Log Analysis / User-defined Logical Splits workloads of §7).

There are no preconditions; the new partition function must merely satisfy
any conditions already imposed on the job's partition function (for example
by a prior intra-job vertical packing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.plan import Plan
from repro.core.transformations.base import (
    Transformation,
    TransformationApplication,
    TransformationGroup,
)
from repro.dfs.layout import RangePartitioning
from repro.mapreduce.partitioner import PartitionFunction
from repro.workflow.annotations import FilterAnnotation
from repro.workflow.graph import JobVertex, Workflow

#: Number of extra, evenly spaced split points added beyond the filter
#: boundaries so that pruning granularity does not depend on a single cut.
_EXTRA_SPLITS = 8


class PartitionFunctionTransformation(Transformation):
    """Range-partition a producer's output to enable partition pruning."""

    name = "partition-function"
    group = TransformationGroup.BOTH
    structural = False

    def find_applications(self, plan: Plan, unit_jobs: Sequence[str]) -> List[TransformationApplication]:
        workflow = plan.workflow
        unit = set(unit_jobs)
        applications: List[TransformationApplication] = []
        for producer_name in unit_jobs:
            if not workflow.has_job(producer_name):
                continue
            producer = workflow.job(producer_name)
            if producer.job.is_map_only or len(producer.job.pipelines) != 1:
                continue
            for dataset_name in producer.job.output_datasets:
                application = self._check_dataset(workflow, producer, dataset_name, unit)
                if application is not None:
                    applications.append(application)
        # Base-dataset pruning: a consumer of an already range-partitioned
        # workflow input whose filter annotation constrains the partitioning
        # field only needs to read the overlapping partitions.
        for consumer_name in unit_jobs:
            if not workflow.has_job(consumer_name):
                continue
            applications.extend(self._base_pruning_applications(workflow, workflow.job(consumer_name)))
        return applications

    def _base_pruning_applications(
        self, workflow: Workflow, consumer: JobVertex
    ) -> List[TransformationApplication]:
        applications: List[TransformationApplication] = []
        for dataset_name in consumer.job.input_datasets:
            if workflow.producer_of(dataset_name) is not None:
                continue
            if not workflow.has_dataset(dataset_name):
                continue
            annotation = workflow.dataset(dataset_name).annotation
            if (
                annotation is None
                or annotation.partition_kind != "range"
                or not annotation.partition_fields
                or annotation.split_points is None
            ):
                continue
            field_name = annotation.partition_fields[0]
            filter_annotation = consumer.annotations.filter_for(dataset_name)
            if filter_annotation is None:
                continue
            filter_range = filter_annotation.range_for(field_name)
            if filter_range is None:
                continue
            already_pruned = any(
                pipeline.allowed_partitions(dataset_name) is not None
                for pipeline in consumer.job.pipelines
                if pipeline.reads(dataset_name)
            )
            if already_pruned:
                continue
            applications.append(
                TransformationApplication(
                    transformation=self.name,
                    target_jobs=(consumer.name,),
                    details={
                        "case": "base-dataset-pruning",
                        "dataset": dataset_name,
                        "field": field_name,
                        "split_points": tuple(annotation.split_points),
                        "consumer_filters": {consumer.name: (filter_range.low, filter_range.high)},
                    },
                )
            )
        return applications

    # ----------------------------------------------------------- conditions
    def _check_dataset(
        self,
        workflow: Workflow,
        producer: JobVertex,
        dataset_name: str,
        unit: set,
    ) -> Optional[TransformationApplication]:
        consumers = workflow.consumers_of(dataset_name)
        if not consumers:
            return None

        group_fields = producer.job.pipelines[0].shuffle_group_fields
        candidate_fields = set(group_fields)
        schema = producer.annotations.schema
        if schema is not None and schema.k2 is not None:
            candidate_fields &= set(schema.k2)
        if not candidate_fields:
            return None

        # Find a field constrained by at least one consumer's filter.
        filters_by_consumer: Dict[str, Tuple[float, float]] = {}
        chosen_field: Optional[str] = None
        for field_name in sorted(candidate_fields):
            filters_by_consumer = {}
            for consumer in consumers:
                filter_annotation = self._consumer_filter(consumer, dataset_name)
                if filter_annotation is None:
                    continue
                filter_range = filter_annotation.range_for(field_name)
                if filter_range is not None:
                    filters_by_consumer[consumer.name] = (filter_range.low, filter_range.high)
            if filters_by_consumer:
                chosen_field = field_name
                break
        if chosen_field is None or not filters_by_consumer:
            return None

        # Only useful if at least one filtering consumer is inside the unit
        # or downstream of it (pruning helps whoever reads the data next).
        split_points = self._split_points(producer, chosen_field, filters_by_consumer)
        if not split_points:
            return None

        new_partitioner = PartitionFunction(
            kind="range",
            fields=(chosen_field,),
            sort_fields=producer.job.effective_partitioner.effective_sort_fields,
            split_points=split_points,
        )
        constraint = producer.annotations.partition_constraint
        if constraint is not None and not new_partitioner.satisfies(constraint):
            return None

        return TransformationApplication(
            transformation=self.name,
            target_jobs=(producer.name,),
            details={
                "dataset": dataset_name,
                "field": chosen_field,
                "split_points": split_points,
                "consumer_filters": filters_by_consumer,
            },
        )

    @staticmethod
    def _consumer_filter(consumer: JobVertex, dataset_name: str) -> Optional[FilterAnnotation]:
        return consumer.annotations.filter_for(dataset_name)

    def _split_points(
        self,
        producer: JobVertex,
        field_name: str,
        filters_by_consumer: Dict[str, Tuple[float, float]],
    ) -> Tuple[float, ...]:
        boundaries = set()
        lows = []
        highs = []
        for low, high in filters_by_consumer.values():
            boundaries.add(low)
            boundaries.add(high)
            lows.append(low)
            highs.append(high)
        domain_low = min(lows)
        domain_high = max(highs)
        profile = producer.annotations.profile
        if profile is not None:
            cardinality = profile.cardinality((field_name,), default=0.0)
            if cardinality:
                domain_high = max(domain_high, domain_low + cardinality)
        span = domain_high - domain_low
        if span > 0:
            step = span / (_EXTRA_SPLITS + 1)
            for i in range(1, _EXTRA_SPLITS + 1):
                boundaries.add(domain_low + step * i)
        points = tuple(sorted(boundaries))
        return points

    # --------------------------------------------------------------- apply
    def apply(self, plan: Plan, application: TransformationApplication) -> Plan:
        # Copy-on-write: only the producer and the consumers whose pruning
        # filters actually change are privatized; untouched vertices stay
        # shared with the input plan.
        new_plan = plan.copy()
        workflow = new_plan.workflow
        dataset_name = application.details["dataset"]
        field_name = application.details["field"]
        split_points = tuple(application.details["split_points"])
        consumer_filters: Dict[str, Tuple[float, float]] = dict(application.details["consumer_filters"])

        if application.details.get("case") == "base-dataset-pruning":
            ranges = RangePartitioning(field=field_name, split_points=split_points)
            self._apply_consumer_filters(workflow, ranges, dataset_name, consumer_filters)
            return self._record(new_plan, application)

        producer_name = application.target_jobs[0]
        sort_fields = workflow.job(producer_name).job.effective_partitioner.effective_sort_fields
        new_partitioner = PartitionFunction(
            kind="range",
            fields=(field_name,),
            sort_fields=sort_fields,
            split_points=split_points,
        )
        workflow.update_job(producer_name, lambda job: job.with_partitioner(new_partitioner))

        ranges = RangePartitioning(field=field_name, split_points=split_points)
        self._apply_consumer_filters(workflow, ranges, dataset_name, consumer_filters)
        return self._record(new_plan, application)

    @staticmethod
    def _apply_consumer_filters(
        workflow,
        ranges: RangePartitioning,
        dataset_name: str,
        consumer_filters: Dict[str, Tuple[float, float]],
    ) -> None:
        """Set partition-pruning filters on each consumer's reading pipelines.

        Pipelines are mutated in place, so each touched consumer is
        privatized first — ``mutate_job`` with a full job copy guarantees
        the pipelines edited here belong to this workflow alone.
        """
        for consumer_name, (low, high) in consumer_filters.items():
            if not workflow.has_job(consumer_name):
                continue
            allowed = ranges.partitions_overlapping(low, high)
            if not allowed:
                continue
            if not any(
                pipeline.reads(dataset_name)
                for pipeline in workflow.job(consumer_name).job.pipelines
            ):
                continue
            consumer = workflow.mutate_job(consumer_name)
            for pipeline in consumer.job.pipelines:
                if pipeline.reads(dataset_name):
                    pipeline.input_partition_filter[dataset_name] = tuple(allowed)
