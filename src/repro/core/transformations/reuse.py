"""Sub-result reuse: rewrite a workflow to read a stored materialized output.

The sixth transformation (after the paper's intra/inter-vertical packing,
horizontal packing, partition-function, and configuration modules), and the
first that substitutes **data** rather than restructuring jobs — the
ReStore idea (PAPERS.md) expressed in Stubby's transformation framework.

*Precondition* — an intermediate dataset D whose entire producing cone lies
inside the optimization unit, whose cone has no outputs escaping the cone
(other than D itself), and whose exact subgraph content signature
(:func:`~repro.core.subresults.subgraph_signature`) matches a catalog entry
with its backing records still present.

*Postcondition* — the producing cone is removed, D becomes a workflow input
carrying the stored records and their derived annotation, and every
surviving consumer reads bytes identical to what the cone would have
produced (the signature pins the cone's full content, its configuration,
its base data, and the cost-model version — the differential battery in
``tests/test_subresult_reuse_equivalence.py`` proves the equivalence).

The rewrite enters :meth:`~repro.core.search.StubbySearch.enumerate_subplans`
like any other candidate, so it is **cost-model-arbitrated**: the what-if
engine costs the reuse plan (D is now a base dataset sized by its
annotation) against the recompute plan, and reuse wins only when estimated
cheaper.

:func:`set_subresult_reuse_enabled` is the module-level kill switch
(mirroring ``set_cow_enabled`` / ``set_topology_index_enabled``): disabled,
:meth:`find_applications` proposes nothing and the search enumerates exactly
the pre-catalog candidate set — the bit-identity baseline of the
equivalence sweep.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.plan import Plan
from repro.core.subresults import (
    SubResultCatalog,
    SubResultUnavailableError,
    producing_cone,
    subgraph_signature,
)
from repro.core.transformations.base import (
    Transformation,
    TransformationApplication,
    TransformationGroup,
)
from repro.whatif import model as whatif_model

__all__ = [
    "SubResultReuseTransformation",
    "SubResultUnavailableError",
    "set_subresult_reuse_enabled",
    "subresult_reuse_enabled",
]

_SUBRESULT_REUSE_ENABLED = True


def set_subresult_reuse_enabled(enabled: bool) -> bool:
    """Globally enable/disable the reuse rewrite; returns the previous value.

    The verification kill switch: with reuse disabled the transformation
    proposes no applications, so candidate enumeration — and therefore every
    optimizer decision — is bit-identical to a build without the catalog.
    """
    global _SUBRESULT_REUSE_ENABLED
    previous = _SUBRESULT_REUSE_ENABLED
    _SUBRESULT_REUSE_ENABLED = bool(enabled)
    return previous


def subresult_reuse_enabled() -> bool:
    """Whether the reuse rewrite is globally enabled."""
    return _SUBRESULT_REUSE_ENABLED


class SubResultReuseTransformation(Transformation):
    """Replace an intermediate dataset's producing cone with its stored bytes."""

    name = "sub-result-reuse"
    group = TransformationGroup.BOTH
    structural = True

    def __init__(self, catalog: Optional[SubResultCatalog] = None) -> None:
        self._catalog = catalog

    def decision_key_extra(self):
        """Fold the module kill switch into unit decision keys.

        The catalog itself reaches the key through
        :meth:`~repro.core.subresults.SubResultCatalog.decision_key_content`
        (via ``transformation_key``'s option walk); the module-level switch
        lives outside the instance, so it is added here — flipping it must
        miss every memoized decision, never replay a reuse plan into a
        reuse-disabled run.
        """
        return ("reuse-enabled", subresult_reuse_enabled())

    # -------------------------------------------------------------- search
    def find_applications(
        self, plan: Plan, unit_jobs: Sequence[str]
    ) -> List[TransformationApplication]:
        catalog = self._catalog
        if (
            catalog is None
            or not catalog.enabled
            or not subresult_reuse_enabled()
            or catalog.catalog_size == 0
        ):
            return []
        workflow = plan.workflow
        unit = set(unit_jobs)
        engine = whatif_model.WhatIfEngine(catalog.cluster)
        applications: List[TransformationApplication] = []
        for dataset_vertex in workflow.datasets:
            name = dataset_vertex.name
            if workflow.producer_of(name) is None:
                continue
            if not workflow.consumers_of(name):
                # Terminal datasets are the workflow's answer; substituting
                # their producer away would change which jobs emit the
                # compared outputs, so reuse stops one level short.
                continue
            cone_jobs, _bases = producing_cone(workflow, name)
            if not cone_jobs or any(job not in unit for job in cone_jobs):
                continue
            if not self._cone_is_self_contained(workflow, cone_jobs, name):
                continue
            signature = subgraph_signature(workflow, name, catalog.cluster, engine=engine)
            if catalog.probe(signature) is None:
                continue
            applications.append(
                TransformationApplication(
                    transformation=self.name,
                    target_jobs=cone_jobs,
                    details={
                        "dataset": name,
                        "signature": signature,
                        "jobs_eliminated": len(cone_jobs),
                    },
                )
            )
        return applications

    @staticmethod
    def _cone_is_self_contained(workflow, cone_jobs, reused_dataset: str) -> bool:
        """No cone output other than the reused dataset may escape the cone.

        A side output consumed outside the cone would lose its producer; a
        terminal side output would silently vanish from the workflow's
        answer.  Either disqualifies the rewrite.
        """
        cone = set(cone_jobs)
        for job_name in cone_jobs:
            for output in workflow.job(job_name).job.output_datasets:
                if output == reused_dataset:
                    continue
                consumers = workflow.consumers_of(output)
                if not consumers:
                    return False
                if any(consumer.name not in cone for consumer in consumers):
                    return False
        return True

    # --------------------------------------------------------------- apply
    def apply(self, plan: Plan, application: TransformationApplication) -> Plan:
        catalog = self._catalog
        if catalog is None:
            raise SubResultUnavailableError("no sub-result catalog configured")
        signature = application.details["signature"]
        # Fetch before mutating anything: a stale or evicted entry aborts the
        # rewrite (SubResultUnavailableError) and the search recomputes.
        entry = catalog.fetch(signature)
        new_plan = plan.copy()
        workflow = new_plan.workflow
        for job_name in application.target_jobs:
            workflow.remove_job(job_name)
        workflow.add_dataset(
            entry.dataset, dataset=entry.materialize(), annotation=entry.annotation
        )
        workflow.prune_orphan_datasets()
        return self._record(new_plan, application)
