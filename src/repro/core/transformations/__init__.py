"""The five transformation types that define Stubby's plan space (paper §3),
plus the ReStore-style sub-result reuse rewrite (docs/reuse.md)."""

from repro.core.transformations.base import (
    Transformation,
    TransformationApplication,
    TransformationGroup,
)
from repro.core.transformations.intra_vertical import IntraJobVerticalPacking
from repro.core.transformations.inter_vertical import InterJobVerticalPacking
from repro.core.transformations.horizontal import HorizontalPacking
from repro.core.transformations.partition_function import PartitionFunctionTransformation
from repro.core.transformations.configuration import ConfigurationTransformation
from repro.core.transformations.reuse import (
    SubResultReuseTransformation,
    set_subresult_reuse_enabled,
    subresult_reuse_enabled,
)

VERTICAL_GROUP = (
    IntraJobVerticalPacking,
    InterJobVerticalPacking,
    PartitionFunctionTransformation,
)
HORIZONTAL_GROUP = (
    HorizontalPacking,
    PartitionFunctionTransformation,
)

__all__ = [
    "Transformation",
    "TransformationApplication",
    "TransformationGroup",
    "IntraJobVerticalPacking",
    "InterJobVerticalPacking",
    "HorizontalPacking",
    "PartitionFunctionTransformation",
    "ConfigurationTransformation",
    "SubResultReuseTransformation",
    "set_subresult_reuse_enabled",
    "subresult_reuse_enabled",
    "VERTICAL_GROUP",
    "HORIZONTAL_GROUP",
]
