"""ReStore-style sub-result catalog: reuse materialized outputs across workflows.

Stubby optimizes each workflow in isolation; under repeated traffic the same
producing subgraphs — shared ingest prefixes, resubmitted pipelines — are
recomputed over and over.  *ReStore: Reusing Results of MapReduce Jobs*
(PAPERS.md) adds the missing lever: keep the materialized intermediate
datasets of executed plans in a catalog, and rewrite an incoming workflow to
**read a stored sub-result** instead of recomputing its producing subgraph.

:class:`SubResultCatalog` is that catalog.  Entries map a *subgraph content
signature* — everything that determines the bytes of a materialized dataset —
to the stored records and their derived
:class:`~repro.workflow.annotations.DatasetAnnotation`:

* per producing-cone job: the incremental
  :meth:`~repro.whatif.model.WhatIfEngine.vertex_content_key`, the full
  configuration, the effective partition function, the
  :class:`JobAnnotations` content, and the cone wiring (input/output
  dataset names);
* per base dataset feeding the cone: its annotation, logical sizes, and a
  :func:`~repro.common.hashing.stable_hash` fingerprint of the actual
  records — same structure over different data must miss;
* the :class:`~repro.cluster.ClusterSpec` key and
  :data:`~repro.whatif.model.COST_MODEL_VERSION`.

Change any of these and the signature changes — the catalog misses, never
serves a result the submitted subgraph would not have produced
(property-tested in ``tests/test_subresult_catalog.py``).  The rewrite
itself lives in
:class:`~repro.core.transformations.reuse.SubResultReuseTransformation`; it
enters the unit search as a sixth transformation, so reuse is
**cost-model-arbitrated**: the rewritten candidate is costed by the what-if
engine like any other and wins only when it is estimated cheaper.

Concurrency, attribution, and persistence mirror
:class:`~repro.core.decision_cache.DecisionCache` exactly: lock-striped LRU
shards, atomic stats with thread-local attribution sinks, fork-worker
export-log/merge-on-join, origin-tagged entries, and a versioned pickle
snapshot (``STUBBY_SUBRESULT_CATALOG``) written atomically, merged with
``save_cache(merge_first=True)``, and rejected wholesale on any
version/cluster mismatch (restricted unpickler included).
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster import ClusterSpec
from repro.common.faults import fault_site
from repro.common.hashing import stable_hash
from repro.core.content_keys import (
    _env_flag,
    dataset_annotation_key,
    job_annotations_key,
    partition_function_key,
)
from repro.core.parallel import SideChannel
from repro.dfs.dataset import Dataset
from repro.profiler.profiler import Profiler
from repro.whatif import model as whatif_model
from repro.whatif.service import (
    CacheLoadReport,
    _RestrictedUnpickler,
    _ShardedCache,
    atomic_pickle_write,
    cluster_cache_key,
)
from repro.workflow.annotations import DatasetAnnotation
from repro.workflow.graph import Workflow

__all__ = [
    "SUBRESULT_CATALOG_ENABLED_ENV_VAR",
    "SUBRESULT_CATALOG_FORMAT_VERSION",
    "SUBRESULT_CATALOG_PATH_ENV_VAR",
    "SubResultCatalog",
    "SubResultCatalogStats",
    "SubResultEntry",
    "SubResultUnavailableError",
    "dataset_content_fingerprint",
    "ensure_subresult_catalog",
    "producing_cone",
    "register_workflow_outputs",
    "resolve_subresult_catalog_path",
    "subgraph_signature",
    "subresult_catalog_enabled",
    "subresult_catalog_side_channel",
]

#: Default bound on catalog entries; old entries are evicted LRU.  Entries
#: carry real records, so the default is far below the decision cache's.
DEFAULT_MAX_SUBRESULTS = 2_000

#: On-disk layout version of persisted catalog files; files written under a
#: different layout are rejected wholesale.
SUBRESULT_CATALOG_FORMAT_VERSION = 1

#: Environment variable naming a persisted catalog path — the data-level
#: sibling of ``STUBBY_COST_CACHE`` / ``STUBBY_DECISION_CACHE``.
SUBRESULT_CATALOG_PATH_ENV_VAR = "STUBBY_SUBRESULT_CATALOG"

#: Environment kill switch: "0"/"false"/"no"/"off" disables the catalog
#: everywhere (lookups answer nothing, stores are no-ops).
SUBRESULT_CATALOG_ENABLED_ENV_VAR = "STUBBY_SUBRESULT_CATALOG_ENABLED"

#: Cap on entries a forked worker ships back on merge-on-join.  Entries
#: carry records, so the cap is much tighter than the decision cache's.
MAX_EXPORTED_SUBRESULTS = 200


class SubResultUnavailableError(RuntimeError):
    """A catalog entry referenced by a recorded rewrite is gone or stale.

    Raised by :meth:`SubResultCatalog.fetch` when the entry vanished (LRU
    eviction, invalidation) or its backing records were deleted.  The search
    catches it during decision replay and falls back to a full search — a
    stale catalog degrades to recomputation, never to a failed plan.
    """


def subresult_catalog_enabled(enabled: Optional[bool] = None) -> bool:
    """Normalize the enable flag: explicit argument, else environment, else on."""
    if enabled is not None:
        return enabled
    return _env_flag(SUBRESULT_CATALOG_ENABLED_ENV_VAR, True)


def resolve_subresult_catalog_path(path: Optional[str]) -> Optional[str]:
    """Normalize a catalog path: explicit path, else the environment.

    ``None`` consults :data:`SUBRESULT_CATALOG_PATH_ENV_VAR`; an empty string
    (explicit or from the environment) means "no persistence".
    """
    if path is not None:
        return path or None
    return os.environ.get(SUBRESULT_CATALOG_PATH_ENV_VAR, "").strip() or None


@dataclass(frozen=True)
class SubResultEntry:
    """One materialized sub-result: the stored dataset plus its provenance.

    ``records is None`` marks a *stale* entry — the signature is still
    known but the backing data was deleted (:meth:`SubResultCatalog.
    evict_payload`); the rewrite skips it and the plan recomputes.
    """

    dataset: str
    records: Optional[Tuple[Mapping[str, object], ...]]
    annotation: Optional[DatasetAnnotation]
    #: Names of the producing-cone jobs at registration time — exactly the
    #: jobs a reuse rewrite of this entry eliminates.
    producing_jobs: Tuple[str, ...] = ()
    #: Scale factor the registered execution ran at; reapplied to the
    #: substituted dataset so the what-if engine sees paper-scale sizes.
    scale_factor: float = 1.0

    @property
    def has_payload(self) -> bool:
        """Whether the backing records are still available."""
        return self.records is not None

    def materialize(self) -> Dataset:
        """Rebuild the stored records as a stageable :class:`Dataset`."""
        if self.records is None:
            raise SubResultUnavailableError(
                f"sub-result for dataset {self.dataset!r} has no backing records"
            )
        return Dataset(
            self.dataset,
            records=[dict(record) for record in self.records],
            scale_factor=self.scale_factor,
        )


@dataclass
class SubResultCatalogStats:
    """Counters describing catalog traffic.

    ``hits`` counts successful entry fetches — both applicability probes
    that matched and the fetch performed when a rewrite (or a decision-cache
    replay of one) is applied.  ``misses`` counts probes that found nothing,
    ``stale_skips`` probes that matched an entry whose backing records were
    deleted.  ``cross_origin_hits`` counts the hits served by an entry
    another origin registered — a different experiment cell, tenant, or a
    warm-started persisted file: exactly the cross-workflow reuse ReStore is
    after.  ``jobs_eliminated`` sums the producing-cone jobs removed by
    applied rewrites.
    """

    hits: int = 0
    misses: int = 0
    cross_origin_hits: int = 0
    stale_skips: int = 0
    stores: int = 0
    jobs_eliminated: int = 0

    @property
    def lookups(self) -> int:
        """Catalog probes performed (hits + misses + stale skips)."""
        return self.hits + self.misses + self.stale_skips

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered with a usable stored sub-result."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def accumulate(self, delta: "SubResultCatalogStats") -> None:
        """Add another stats delta into this one, in place."""
        self.hits += delta.hits
        self.misses += delta.misses
        self.cross_origin_hits += delta.cross_origin_hits
        self.stale_skips += delta.stale_skips
        self.stores += delta.stores
        self.jobs_eliminated += delta.jobs_eliminated

    def snapshot(self) -> "SubResultCatalogStats":
        """Immutable copy of the current counters."""
        return replace(self)

    def since(self, before: "SubResultCatalogStats") -> "SubResultCatalogStats":
        """Counter delta between this snapshot and an earlier one."""
        return SubResultCatalogStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            cross_origin_hits=self.cross_origin_hits - before.cross_origin_hits,
            stale_skips=self.stale_skips - before.stale_skips,
            stores=self.stores - before.stores,
            jobs_eliminated=self.jobs_eliminated - before.jobs_eliminated,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports and benchmark JSON."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "cross_origin_hits": self.cross_origin_hits,
            "stale_skips": self.stale_skips,
            "stores": self.stores,
            "jobs_eliminated": self.jobs_eliminated,
            "hit_rate": self.hit_rate,
        }


class SubResultCatalog:
    """Sharded, LRU, optionally persisted catalog of materialized sub-results.

    One instance is safe to share across search threads, forked workers,
    experiment cells, and planning-service tenants — the concurrency model
    is the :class:`~repro.core.decision_cache.DecisionCache` one: lock-striped
    shards, atomic stats with thread-local attribution sinks, export-log
    merge-on-join for forked workers, origin-tagged entries.

    ``enabled=False`` (or ``STUBBY_SUBRESULT_CATALOG_ENABLED=0``) turns
    every lookup into a no-answer and every store into a no-op, so a
    disabled catalog is behaviourally invisible — the reuse transformation
    finds no applications and plans are bit-identical to pre-catalog runs.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        max_entries: int = DEFAULT_MAX_SUBRESULTS,
        enabled: Optional[bool] = None,
        cache_path: Optional[str] = None,
    ) -> None:
        self.cluster = cluster
        self.enabled = subresult_catalog_enabled(enabled)
        self.max_entries = max(1, max_entries)
        self._cache = _ShardedCache(self.max_entries)
        self.stats = SubResultCatalogStats()
        self._stats_lock = threading.Lock()
        self._sinks = threading.local()
        self._origins = threading.local()
        #: Monotonic content version; bumped by every mutation so the
        #: decision-key fingerprint (:meth:`decision_key_content`) can be
        #: cached between mutations.
        self._version = 0
        self._fingerprint_cache: Tuple[int, int] = (-1, 0)
        #: Append-only log of entries stored since :meth:`start_export_log`;
        #: enabled only inside forked workers (single-threaded).
        self._export_log: Optional[List[Tuple[Tuple, SubResultEntry, object]]] = None
        self.cache_path = cache_path
        #: Outcome of the constructor's warm-start attempt (``None`` when no
        #: path was configured or the catalog is disabled).
        self.last_load: Optional[CacheLoadReport] = None
        if self.cache_path and self.enabled:
            self.last_load = self.load_cache(self.cache_path)

    # --------------------------------------------------------------- origins
    @contextmanager
    def origin(self, label: Optional[str]):
        """Attribute this thread's stores and hits to ``label`` while active.

        The catalog-side analogue of ``CostService.origin``: entries are
        stamped with the registering origin, and a fetch served by an entry
        from a *different* origin counts as a cross-origin hit — the
        cross-workflow reuse the benchmark reconciles.
        """
        stack = self._origin_stack()
        stack.append(label)
        try:
            yield
        finally:
            stack.pop()

    def current_origin(self) -> Optional[str]:
        """The innermost active origin label on this thread, if any."""
        stack = self._origin_stack()
        return stack[-1] if stack else None

    def _origin_stack(self) -> List[Optional[str]]:
        stack = getattr(self._origins, "stack", None)
        if stack is None:
            stack = []
            self._origins.stack = stack
        return stack

    # ------------------------------------------------------------------ API
    def probe(self, signature: Tuple, origin: Optional[str] = None) -> Optional[SubResultEntry]:
        """The usable entry for ``signature``, or ``None`` (counts stats).

        A match whose backing records were deleted counts as a
        ``stale_skip`` and answers ``None`` — the caller recomputes.
        """
        if not self.enabled:
            return None
        origin = origin if origin is not None else self.current_origin()
        entry_row = self._cache.lookup(signature)
        delta = SubResultCatalogStats()
        if entry_row is None:
            delta.misses = 1
            self._apply_delta(delta)
            return None
        entry, entry_origin = entry_row
        if not entry.has_payload:
            delta.stale_skips = 1
            self._apply_delta(delta)
            return None
        delta.hits = 1
        if entry_origin != origin:
            delta.cross_origin_hits = 1
        self._apply_delta(delta)
        return entry

    def fetch(self, signature: Tuple, origin: Optional[str] = None) -> SubResultEntry:
        """The entry an applied rewrite substitutes; raises when unavailable.

        Unlike :meth:`probe`, absence is an error
        (:class:`SubResultUnavailableError`) — the caller holds a rewrite
        that references this entry, so the answer must exist or the rewrite
        must be abandoned (the search falls back to recomputation).
        """
        if not self.enabled:
            raise SubResultUnavailableError("sub-result catalog is disabled")
        fault_site("subresults.fetch")
        entry = self.probe(signature, origin=origin)
        if entry is None:
            raise SubResultUnavailableError(
                "sub-result entry is missing or its backing records were deleted"
            )
        return entry

    def store(
        self, signature: Tuple, entry: SubResultEntry, origin: Optional[str] = None
    ) -> None:
        """Register a materialized sub-result (no-op when disabled)."""
        if not self.enabled:
            return
        origin = origin if origin is not None else self.current_origin()
        new = self._cache.store(signature, entry, origin)
        self._bump_version()
        self._apply_delta(SubResultCatalogStats(stores=1))
        if new and self._export_log is not None:
            self._export_log.append((signature, entry, origin))

    def evict_payload(self, signature: Tuple) -> bool:
        """Drop an entry's backing records, keeping the signature (stale).

        Models the deployment event the fault-injection tests exercise: the
        materialized dataset was deleted from storage but the catalog row
        survived.  Returns whether the entry existed.
        """
        row = self._cache.lookup(signature)
        if row is None:
            return False
        entry, origin = row
        self._cache.store(signature, replace(entry, records=None), origin)
        self._bump_version()
        return True

    def record_jobs_eliminated(self, count: int) -> None:
        """Credit ``count`` eliminated jobs to the global and sink counters."""
        if count:
            self._apply_delta(SubResultCatalogStats(jobs_eliminated=count))

    # ------------------------------------------------------- decision keying
    def decision_key_content(self) -> Tuple:
        """Content fingerprint folded into unit decision keys.

        A memoized unit decision made against this catalog is only valid
        while the catalog would offer the *same* rewrites, so the decision
        key must move whenever the catalog's visible content does.  The
        fingerprint hashes every live signature plus its payload presence;
        it is cached between mutations (``_version``) so decision keying
        stays O(1) on the hot path.
        """
        if not self.enabled:
            return ("subresult-catalog", "disabled")
        version = self._version
        cached_version, cached_value = self._fingerprint_cache
        if cached_version != version:
            material = sorted(
                str((stable_hash([signature]), entry.has_payload))
                for rows in self._cache.shard_items()
                for signature, entry, _origin in rows
            )
            cached_value = stable_hash(material)
            self._fingerprint_cache = (version, cached_value)
        return ("subresult-catalog", "enabled", cached_value)

    def _bump_version(self) -> None:
        with self._stats_lock:
            self._version += 1

    # ------------------------------------------------------- stats plumbing
    def _apply_delta(self, delta: SubResultCatalogStats) -> None:
        """Fold a stats delta into the global counters and this thread's sinks."""
        with self._stats_lock:
            self.stats.accumulate(delta)
        for sink in self._sink_stack():
            sink.accumulate(delta)

    def _sink_stack(self) -> List[SubResultCatalogStats]:
        stack = getattr(self._sinks, "stack", None)
        if stack is None:
            stack = []
            self._sinks.stack = stack
        return stack

    @contextmanager
    def attribute_to(self, sink: SubResultCatalogStats):
        """Also credit this thread's probes/stores to ``sink`` while active."""
        stack = self._sink_stack()
        stack.append(sink)
        try:
            yield sink
        finally:
            stack.pop()

    def apply_external_delta(self, delta: SubResultCatalogStats) -> None:
        """Fold in work performed by a foreign process (merge-on-join)."""
        self._apply_delta(delta)

    def apply_sink_only_delta(self, delta: SubResultCatalogStats) -> None:
        """Re-attribute work already counted globally to this thread's sinks."""
        for sink in self._sink_stack():
            sink.accumulate(delta)

    def stats_snapshot(self) -> SubResultCatalogStats:
        """Consistent copy of the global counters."""
        with self._stats_lock:
            return self.stats.snapshot()

    # ------------------------------------------------ process merge-on-join
    def start_export_log(self) -> None:
        """Begin recording newly stored entries (forked workers only)."""
        self._export_log = []

    def export_log_entries(self) -> List[Tuple[Tuple, SubResultEntry, object]]:
        """Drain the export log; freshest :data:`MAX_EXPORTED_SUBRESULTS` win."""
        log = self._export_log or []
        self._export_log = None
        return log[-MAX_EXPORTED_SUBRESULTS:]

    def absorb_entries(self, entries: List[Tuple[Tuple, SubResultEntry, object]]) -> None:
        """Merge entries exported by a worker (or loaded from disk).

        Signatures are content-based and the registered records are the
        deterministic output of the signed subgraph, so merging is
        idempotent and order-independent; entries keep the origin label they
        were registered under, preserving cross-origin attribution.
        """
        for signature, entry, origin in entries:
            self._cache.store(signature, entry, origin)
        if entries:
            self._bump_version()

    # ----------------------------------------------------------- persistence
    def save_cache(self, path: Optional[str] = None, merge_first: bool = False) -> int:
        """Persist the catalog to ``path`` (default: ``cache_path``).

        The payload is stamped with the on-disk format version, the cost
        model version, and the cluster key — a stored sub-result is only
        valid for the exact signature machinery it was registered under.
        The write is atomic (temp file + ``os.replace``).  Returns the
        entry count.

        ``merge_first=True`` re-absorbs the current file (if valid) before
        writing — the long-lived-service idiom: a replica that restarted
        cold never shrinks a richer store persisted by another.
        """
        path = path or self.cache_path
        if not path:
            raise ValueError("no catalog path configured (pass path= or set cache_path)")
        if merge_first:
            self.load_cache(path)
        entries = [
            (signature, entry, origin)
            for rows in self._cache.shard_items()
            for signature, entry, origin in rows
        ]
        payload = {
            "format_version": SUBRESULT_CATALOG_FORMAT_VERSION,
            # Read through the module so tests monkeypatching the version
            # see the stamp move.
            "model_version": whatif_model.COST_MODEL_VERSION,
            "cluster_key": cluster_cache_key(self.cluster),
            "entries": entries,
        }
        atomic_pickle_write(path, payload)
        fault_site("subresults.save", path=path)
        return len(entries)

    def load_cache(self, path: Optional[str] = None) -> CacheLoadReport:
        """Warm-start from a persisted catalog file; never raises on bad input.

        Rejection is quiet and all-or-nothing: missing, corrupt, truncated,
        or version/cluster-mismatched files contribute nothing — a tampered
        byte never becomes a served sub-result.
        """
        path = path or self.cache_path
        if not path:
            raise ValueError("no catalog path configured (pass path= or set cache_path)")
        # Before the open: a corrupt/truncate fault mangles what we then read.
        fault_site("subresults.load", path=path)
        if not os.path.exists(path):
            return CacheLoadReport(loaded=False, reason="no catalog file")
        try:
            with open(path, "rb") as handle:
                payload = _RestrictedUnpickler(handle).load()
        except Exception as exc:  # corrupt, truncated, or not a pickle at all
            return CacheLoadReport(
                loaded=False, reason=f"unreadable catalog file ({type(exc).__name__})"
            )
        if not isinstance(payload, dict):
            return CacheLoadReport(loaded=False, reason="malformed catalog payload")
        if payload.get("format_version") != SUBRESULT_CATALOG_FORMAT_VERSION:
            return CacheLoadReport(
                loaded=False,
                reason=f"format version mismatch ({payload.get('format_version')!r} "
                f"!= {SUBRESULT_CATALOG_FORMAT_VERSION!r})",
            )
        if payload.get("model_version") != whatif_model.COST_MODEL_VERSION:
            return CacheLoadReport(
                loaded=False,
                reason=f"cost model version mismatch ({payload.get('model_version')!r} "
                f"!= {whatif_model.COST_MODEL_VERSION!r})",
            )
        if payload.get("cluster_key") != cluster_cache_key(self.cluster):
            return CacheLoadReport(
                loaded=False, reason="catalog was computed for a different ClusterSpec"
            )
        entries = payload.get("entries")
        if not isinstance(entries, list):
            return CacheLoadReport(loaded=False, reason="malformed catalog payload")
        # Validate every row before absorbing any — all-or-nothing.
        for row in entries:
            if not (
                isinstance(row, tuple)
                and len(row) == 3
                and isinstance(row[0], tuple)
                and isinstance(row[1], SubResultEntry)
            ):
                return CacheLoadReport(loaded=False, reason="malformed catalog entries")
        self.absorb_entries(entries)
        return CacheLoadReport(loaded=True, entries=len(entries), reason="ok")

    # ----------------------------------------------------------- cache mgmt
    def invalidate(self) -> None:
        """Drop every catalog entry (stats are kept)."""
        self._cache.clear()
        self._bump_version()

    @property
    def catalog_size(self) -> int:
        """Number of registered sub-results."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubResultCatalog(entries={len(self._cache)}, enabled={self.enabled}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )


def ensure_subresult_catalog(
    cluster: ClusterSpec,
    catalog: Optional[SubResultCatalog] = None,
    cache_path: Optional[str] = None,
) -> SubResultCatalog:
    """Return ``catalog`` if given, else a fresh :class:`SubResultCatalog`.

    The sibling of :func:`~repro.core.decision_cache.ensure_decision_cache`:
    a shared catalog must have been built for the same cluster — signatures
    embed the cluster key, so a mismatched catalog would never hit, but
    sharing one across clusters is almost certainly a wiring bug and fails
    loudly.  ``cache_path`` applies only when a fresh catalog is
    constructed (explicit argument, else ``STUBBY_SUBRESULT_CATALOG``).
    """
    if catalog is None:
        return SubResultCatalog(
            cluster, cache_path=resolve_subresult_catalog_path(cache_path)
        )
    if catalog.cluster != cluster:
        raise ValueError(
            "sub-result catalog was built for a different ClusterSpec; "
            "stored sub-results are only valid for the cluster they ran on"
        )
    return catalog


def subresult_catalog_side_channel(catalog: SubResultCatalog) -> SideChannel:
    """Wire a :class:`SubResultCatalog` into a backend session's side channel.

    The exact analogue of
    :func:`~repro.core.decision_cache.decision_cache_side_channel`: thread
    workers re-attribute their stats delta to the calling thread's sinks,
    forked workers export their privately registered entries and full stats
    delta for merge-on-join.
    """

    def chunk_begin():
        sink = SubResultCatalogStats()
        catalog._sink_stack().append(sink)
        return sink

    def chunk_end(sink) -> SubResultCatalogStats:
        catalog._sink_stack().pop()
        return sink

    return SideChannel(
        worker_init=catalog.start_export_log,
        chunk_begin=chunk_begin,
        chunk_end=chunk_end,
        chunk_absorb_shared=catalog.apply_sink_only_delta,
        chunk_absorb_foreign=catalog.apply_external_delta,
        final_export=catalog.export_log_entries,
        final_absorb=catalog.absorb_entries,
    )


# ---------------------------------------------------------------------------
# Subgraph signatures
# ---------------------------------------------------------------------------


def dataset_content_fingerprint(dataset: Optional[Dataset]) -> Optional[int]:
    """Order-independent :func:`stable_hash` of a dataset's actual records.

    Base-data content reaches the what-if engine only through profiles and
    annotations, but a stored *sub-result* is a function of the bytes
    themselves — two structurally identical subgraphs over different base
    records must never share an entry, so the signature hashes the records.
    """
    if dataset is None:
        return None
    return stable_hash(sorted(str(sorted(record.items())) for record in dataset.records()))


def producing_cone(
    workflow: Workflow, dataset_name: str
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """The jobs ``dataset_name`` transitively depends on, plus the base inputs.

    Returns ``(cone_job_names, base_dataset_names)``, both sorted.  An empty
    cone means the dataset is a workflow input (no producer).
    """
    producer = workflow.producer_of(dataset_name)
    if producer is None:
        return (), (dataset_name,)
    cone: Dict[str, object] = {}
    bases: Dict[str, None] = {}
    frontier = [producer]
    while frontier:
        vertex = frontier.pop()
        if vertex.name in cone:
            continue
        cone[vertex.name] = vertex
        for input_name in vertex.job.input_datasets:
            upstream = workflow.producer_of(input_name)
            if upstream is None:
                bases[input_name] = None
            elif upstream.name not in cone:
                frontier.append(upstream)
    return tuple(sorted(cone)), tuple(sorted(bases))


def subgraph_signature(
    workflow: Workflow,
    dataset_name: str,
    cluster: ClusterSpec,
    engine: Optional[whatif_model.WhatIfEngine] = None,
) -> Tuple:
    """Content signature of ``dataset_name``'s producing subgraph.

    Pins everything that determines the materialized bytes: per cone job
    the vertex content key, configuration, effective partition function,
    job annotations, and wiring; per feeding base dataset the annotation,
    logical sizes, and a record-content fingerprint; plus the cluster key
    and cost-model version.  Equal signatures produce byte-equal datasets
    by construction; any input change produces a catalog miss.
    """
    engine = engine or whatif_model.WhatIfEngine(cluster)
    cone_jobs, base_inputs = producing_cone(workflow, dataset_name)
    job_parts = []
    touched_datasets: Dict[str, None] = {}
    for job_name in cone_jobs:
        vertex = workflow.job(job_name)
        job = vertex.job
        for name in job.input_datasets + job.output_datasets:
            touched_datasets[name] = None
        job_parts.append(
            (
                job_name,
                engine.vertex_content_key(vertex),
                tuple(sorted(job.config.as_dict().items())),
                partition_function_key(job.effective_partitioner),
                job_annotations_key(vertex.annotations),
                tuple(job.input_datasets),
                tuple(job.output_datasets),
            )
        )
    base_parts = []
    for name in base_inputs:
        vertex = workflow.dataset(name) if workflow.has_dataset(name) else None
        dataset = vertex.dataset if vertex is not None else None
        base_parts.append(
            (
                name,
                dataset_annotation_key(vertex.annotation if vertex is not None else None),
                None if dataset is None else (dataset.logical_bytes, dataset.logical_records),
                dataset_content_fingerprint(dataset),
            )
        )
    annotation_parts = tuple(
        (name, dataset_annotation_key(workflow.dataset(name).annotation))
        for name in sorted(touched_datasets)
        if workflow.has_dataset(name)
    )
    return (
        "subresult",
        dataset_name,
        tuple(job_parts),
        tuple(base_parts),
        annotation_parts,
        whatif_model.COST_MODEL_VERSION,
        cluster_cache_key(cluster),
    )


def register_workflow_outputs(
    catalog: SubResultCatalog,
    workflow: Workflow,
    outputs: Mapping[str, Sequence[Mapping[str, object]]],
    origin: Optional[str] = None,
    scale_factor: float = 1.0,
    profiler: Optional[Profiler] = None,
) -> int:
    """Register an executed workflow's intermediate datasets in the catalog.

    ``outputs`` maps dataset names to their materialized records (e.g. the
    union of a :class:`~repro.workflow.executor.WorkflowExecutionResult`'s
    ``job_outputs``).  Only *intermediate* datasets — produced by a job
    **and** consumed by another — are registered: terminal datasets are the
    workflow's answer, and substituting a terminal's producer away would
    change which jobs emit the compared outputs (the differential battery
    compares per-job outputs, and so does the real DFS layout).

    Returns the number of entries registered.  A no-op when the catalog is
    disabled.
    """
    if not catalog.enabled:
        return 0
    engine = whatif_model.WhatIfEngine(catalog.cluster)
    annotate = (profiler or Profiler()).annotate_dataset
    registered = 0
    for vertex in workflow.datasets:
        name = vertex.name
        if workflow.producer_of(name) is None or not workflow.consumers_of(name):
            continue
        records = outputs.get(name)
        if records is None:
            continue
        signature = subgraph_signature(workflow, name, catalog.cluster, engine=engine)
        cone_jobs, _bases = producing_cone(workflow, name)
        dataset = Dataset(name, records=[dict(r) for r in records], scale_factor=scale_factor)
        entry = SubResultEntry(
            dataset=name,
            records=tuple(dict(r) for r in records),
            annotation=annotate(dataset),
            producing_jobs=cone_jobs,
            scale_factor=scale_factor,
        )
        catalog.store(signature, entry, origin=origin)
        registered += 1
    return registered
