"""Plans: annotated MapReduce workflows plus the transformations applied so far.

"Stubby accepts input in the form of an annotated MapReduce workflow — which
we call a plan — and returns an equivalent, but optimized, plan" (paper §1.1).
A :class:`Plan` therefore wraps a :class:`~repro.workflow.graph.Workflow` and
keeps a history of the transformation applications that produced it, which
the experiments use for reporting and the tests use to assert which
transformations fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mapreduce.config import JobConfig
from repro.workflow.graph import JobVertex, Workflow


@dataclass(frozen=True)
class AppliedTransformation:
    """One transformation application recorded in a plan's history."""

    transformation: str
    target_jobs: Tuple[str, ...]
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.transformation}({', '.join(self.target_jobs)})"


class Plan:
    """An annotated workflow together with its transformation history."""

    def __init__(
        self,
        workflow: Workflow,
        history: Optional[List[AppliedTransformation]] = None,
        merge_lineage: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> None:
        self.workflow = workflow
        self.history: List[AppliedTransformation] = list(history or [])
        #: Explicit merge provenance: name of a job created by a packing
        #: transformation -> the *original* job names it absorbed
        #: (transitively flattened).  Maintained by the transformations via
        #: :meth:`record_merge`; the search uses it to keep a unit's
        #: configuration tuning focused on the right jobs without parsing
        #: job-name conventions.
        self.merge_lineage: Dict[str, Tuple[str, ...]] = dict(merge_lineage or {})

    # ------------------------------------------------------------- plumbing
    def copy(self) -> "Plan":
        """Independent copy (workflow structurally shared, history duplicated).

        The workflow clone is copy-on-write (:meth:`Workflow.copy`): vertex
        objects are shared until mutated through the CoW accessors, so
        copying a plan is cheap no matter how large the workflow — the basis
        of the enumeration/RRS hot loop.  History and merge lineage are
        duplicated eagerly (they are small and mutated by plain appends).
        """
        return Plan(
            self.workflow.copy(),
            history=list(self.history),
            merge_lineage=dict(self.merge_lineage),
        )

    def mutate_vertex(self, job_name: str, copy_job: bool = True) -> JobVertex:
        """Privatize-and-return one job vertex for in-place mutation.

        The copy-on-write entry point for transformations: only the vertices
        a rewrite actually touches are ever copied
        (:meth:`repro.workflow.graph.Workflow.mutate_job`).
        """
        return self.workflow.mutate_job(job_name, copy_job=copy_job)

    def dirty_jobs(self):
        """Names of job vertices this plan owns privately (its dirty set)."""
        return self.workflow.dirty_jobs()

    def record(self, applied: AppliedTransformation) -> None:
        """Append a transformation application to the history."""
        self.history.append(applied)

    def record_merge(self, merged_name: str, source_jobs: Tuple[str, ...]) -> None:
        """Record that ``merged_name`` was created by packing ``source_jobs``.

        Sources that are themselves merged jobs are expanded through their
        own lineage, so the stored provenance always names original jobs.
        """
        expanded: List[str] = []
        for source in source_jobs:
            for origin in self.merge_lineage.get(source, (source,)):
                if origin not in expanded:
                    expanded.append(origin)
        self.merge_lineage[merged_name] = tuple(expanded)

    def merge_sources(self, job_name: str) -> Tuple[str, ...]:
        """Original job names behind ``job_name`` (itself, if never merged)."""
        return self.merge_lineage.get(job_name, (job_name,))

    # ------------------------------------------------------------ accessors
    @property
    def num_jobs(self) -> int:
        """Number of jobs in the plan's workflow."""
        return self.workflow.num_jobs

    @property
    def job_names(self) -> List[str]:
        """Job names in insertion order."""
        return self.workflow.job_names

    def job(self, name: str) -> JobVertex:
        """Fetch a job vertex by name."""
        return self.workflow.job(name)

    def transformations_applied(self) -> List[str]:
        """Names of the transformations applied, in order."""
        return [applied.transformation for applied in self.history]

    def count_applied(self, transformation_name: str) -> int:
        """How many times a given transformation was applied."""
        return sum(1 for applied in self.history if applied.transformation == transformation_name)

    # ------------------------------------------------------------ mutation
    def set_job_config(self, job_name: str, config: JobConfig) -> None:
        """Replace one job's configuration (copy-on-write on the vertex)."""
        self.workflow.update_job(job_name, lambda job: job.with_config(config))

    def signature(self) -> Tuple:
        """A structural signature used to deduplicate enumerated subplans.

        Two plans with the same jobs, pipelines, partition functions, and
        pruning filters are considered structurally identical (their
        configurations may still differ — configurations are searched
        separately by RRS).
        """
        parts = []
        for vertex in self.workflow.jobs:
            job = vertex.job
            partitioner = job.effective_partitioner
            pipelines = tuple(
                (
                    pipeline.tag,
                    tuple(pipeline.input_datasets),
                    tuple(op.name for op in pipeline.map_ops),
                    tuple(op.name for op in pipeline.reduce_ops),
                    pipeline.output_dataset,
                    tuple(sorted(
                        (name, tuple(indexes))
                        for name, indexes in pipeline.input_partition_filter.items()
                    )),
                )
                for pipeline in job.pipelines
            )
            parts.append(
                (
                    job.name,
                    pipelines,
                    partitioner.kind,
                    tuple(partitioner.fields),
                    tuple(partitioner.effective_sort_fields),
                    tuple(partitioner.split_points),
                    job.config.chained_input,
                )
            )
        return tuple(sorted(parts))

    def describe(self) -> str:
        """Human-readable multi-line description of the plan."""
        lines = [f"Plan for workflow {self.workflow.name!r} ({self.num_jobs} jobs)"]
        for vertex in self.workflow.topological_order():
            job = vertex.job
            shape = "map-only" if job.is_map_only else f"{job.config.num_reduce_tasks} reduce tasks"
            lines.append(
                f"  {job.name}: {len(job.pipelines)} pipeline(s), {shape}, "
                f"inputs={list(job.input_datasets)}, outputs={list(job.output_datasets)}"
            )
        if self.history:
            lines.append("  applied: " + ", ".join(str(applied) for applied in self.history))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Plan(workflow={self.workflow.name!r}, jobs={self.num_jobs}, applied={len(self.history)})"
