"""Pluggable execution backends for the parallel unit search.

Candidates enumerated inside one optimization unit — and the RRS
configuration samples costed for each candidate — are independent of each
other: they read the shared :class:`~repro.whatif.service.CostService` but
never each other's results.  This module provides the machinery
:class:`~repro.core.search.StubbySearch` uses to fan that work out:

* :class:`SerialBackend` — the reference implementation: a plain loop.
* :class:`ThreadBackend` — a thread pool sharing the parent's cost-service
  cache (made safe by the service's lock-striped shards).  Under CPython's
  GIL this mostly provides *concurrency*, not CPU parallelism; it exists for
  free-threaded builds and as the cheapest way to exercise the concurrent
  code paths.
* :class:`ProcessBackend` — ``fork``-based worker processes.  Workflow
  operators are closures and therefore not picklable, so workers are forked
  *after* the unit's candidate plans exist and inherit them by memory
  sharing; only plain-data requests (indices, configuration points) and
  plain-data responses (costs, settings, stats counters) cross the pipe.
  Each worker keeps a private cost-service shard that is merged back into
  the parent's cache when the session ends ("merge on join").

Determinism contract: a backend only changes *where* a task runs, never its
result.  The cost service guarantees bit-identical estimates with or without
cache reuse, every task derives its RNG from a stable per-candidate key, and
the search consumes results in task order with index-based tie-breaking —
so every backend, at any worker count, produces byte-for-byte the same
optimizer decisions as :class:`SerialBackend`.  The property tests in
``tests/test_parallel_search.py`` enforce this.

Backends are selected by spec strings — ``"serial"``, ``"thread:4"``,
``"process:4"`` — resolved by :func:`create_backend`; components that accept
a ``backend=`` argument also honour the ``STUBBY_SEARCH_BACKEND``
environment variable when none is given.

Sessions support two **dispatch** modes.  ``"static"`` (the default) deals
requests round-robin up front — cheap, and optimal when requests cost about
the same.  ``"stealing"`` lets idle workers pull the next request from a
shared deque (threads) or receive requests one at a time as they finish
(processes), which balances *heterogeneous* request costs: a worker stuck on
an expensive request no longer strands the cheap ones behind it.  Dispatch
never changes results — only which worker computes them — and every session
reports what it did in :attr:`BackendSession.dispatch_stats`.  In stealing
mode the fork pool additionally survives worker deaths: an in-flight request
whose worker vanished is retried once on a surviving worker, and only a
repeat failure (or a pool with no survivors) raises.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import traceback
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.common.faults import fault_site

__all__ = [
    "BackendSession",
    "DEFAULT_WORKERS",
    "DISPATCH_KINDS",
    "DispatchStats",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "SideChannel",
    "ThreadBackend",
    "available_backends",
    "create_backend",
    "merge_side_channels",
    "resolve_backend",
]

#: Worker count used when a spec names a backend without an explicit count.
DEFAULT_WORKERS = 4

#: Environment variable consulted when no backend is passed explicitly.
BACKEND_ENV_VAR = "STUBBY_SEARCH_BACKEND"

#: The dispatch modes every session understands.
DISPATCH_KINDS = ("static", "stealing")

#: How many times one request may be *executed* before a worker death makes
#: it fail for good (stealing mode): the first attempt plus one retry.
MAX_TASK_ATTEMPTS = 2


def _reap_process(process, timeout: float = 5.0) -> None:
    """Join ``process``, escalating to terminate then kill until it is gone.

    A plain ``join(timeout=)`` can expire and leave a zombie (or a live
    orphan still holding the inherited memory) behind; a worker that
    ignores SIGTERM — stuck in uninterruptible I/O, or masked by the fault
    harness — must still be reaped, so the escalation ends in SIGKILL,
    which cannot be ignored.
    """
    process.join(timeout=timeout)
    if process.is_alive():
        process.terminate()
        process.join(timeout=timeout)
    if process.is_alive():  # pragma: no cover - SIGTERM-proof worker
        process.kill()
        process.join(timeout=timeout)


def _validate_dispatch(dispatch: str) -> str:
    if dispatch not in DISPATCH_KINDS:
        raise ValueError(
            f"unknown dispatch mode {dispatch!r}; expected one of {DISPATCH_KINDS}"
        )
    return dispatch


def _request_loads(requests: Sequence[Any], costs: Optional[Sequence[float]]) -> List[float]:
    """Per-request cost weights (default 1.0 each) for load accounting."""
    if costs is None:
        return [1.0] * len(requests)
    if len(costs) != len(requests):
        raise ValueError(
            f"costs length {len(costs)} does not match {len(requests)} requests"
        )
    return [float(cost) for cost in costs]


@dataclass
class DispatchStats:
    """How one session distributed its requests across workers.

    ``load_per_worker`` sums the caller-declared request costs (``costs=``
    of :meth:`BackendSession.run`, 1.0 per request by default) each worker
    executed; :attr:`idle_cost_units` condenses the imbalance into a single
    counter — the cost units workers collectively sit idle while the most
    loaded worker drains its share.  A ``steal`` is any request that ran on
    a different worker than static round-robin would have assigned; in
    stealing mode the counters additionally record worker deaths and the
    requests retried across them.
    """

    dispatch: str = "static"
    workers: int = 1
    runs: int = 0
    tasks: int = 0
    steals: int = 0
    worker_deaths: int = 0
    retried_tasks: int = 0
    tasks_per_worker: List[int] = field(default_factory=list)
    load_per_worker: List[float] = field(default_factory=list)

    def record(self, worker: int, load: float = 1.0, stolen: bool = False) -> None:
        """Account one executed request to ``worker``."""
        while len(self.tasks_per_worker) <= worker:
            self.tasks_per_worker.append(0)
            self.load_per_worker.append(0.0)
        self.tasks += 1
        self.tasks_per_worker[worker] += 1
        self.load_per_worker[worker] += load
        if stolen:
            self.steals += 1

    @property
    def idle_cost_units(self) -> float:
        """Total cost units of worker idleness implied by the load split.

        With per-worker loads ``L`` over ``w`` workers this is
        ``w * max(L) - sum(L)``: while the busiest worker finishes, every
        other worker is idle for the difference.  Perfect balance gives 0.
        """
        if not self.load_per_worker:
            return 0.0
        width = max(len(self.load_per_worker), self.workers)
        loads = list(self.load_per_worker) + [0.0] * (width - len(self.load_per_worker))
        return max(loads) * width - sum(loads)

    def accumulate(self, other: "DispatchStats") -> None:
        """Fold another session's counters into this one (for pool recycling)."""
        self.runs += other.runs
        self.tasks += other.tasks
        self.steals += other.steals
        self.worker_deaths += other.worker_deaths
        self.retried_tasks += other.retried_tasks
        self.workers = max(self.workers, other.workers)
        while len(self.tasks_per_worker) < len(other.tasks_per_worker):
            self.tasks_per_worker.append(0)
            self.load_per_worker.append(0.0)
        for worker, count in enumerate(other.tasks_per_worker):
            self.tasks_per_worker[worker] += count
        for worker, load in enumerate(other.load_per_worker):
            self.load_per_worker[worker] += load

    def as_dict(self) -> Dict[str, Any]:
        return {
            "dispatch": self.dispatch,
            "workers": self.workers,
            "runs": self.runs,
            "tasks": self.tasks,
            "steals": self.steals,
            "worker_deaths": self.worker_deaths,
            "retried_tasks": self.retried_tasks,
            "tasks_per_worker": list(self.tasks_per_worker),
            "load_per_worker": list(self.load_per_worker),
            "idle_cost_units": self.idle_cost_units,
        }


@dataclass
class SideChannel:
    """Hooks letting a session move cost-service state between workers.

    All callables are optional; a backend only invokes the ones that apply
    to its memory model.

    ``chunk_begin``/``chunk_end`` bracket one worker's share of a
    :meth:`BackendSession.run` call: ``chunk_begin()`` returns an opaque
    token in the worker, ``chunk_end(token)`` turns it into a *picklable*
    payload (for the cost service: the stats delta the chunk produced).
    The parent then absorbs the payload with ``chunk_absorb_shared`` when
    the worker shared the parent's memory (thread backend — the global
    counters already saw the work, only thread-local attribution sinks need
    it) or ``chunk_absorb_foreign`` when it did not (process backend — the
    parent's counters never saw the work at all).

    ``final_export``/``final_absorb`` run once per worker at session end:
    the worker exports its privately accumulated state (cache entries), the
    parent merges it — the process backend's merge-on-join.

    ``worker_init`` runs once in each *forked* worker before it executes any
    request (e.g. to start the cost service's cache export log); workers
    sharing the parent's memory never invoke it.
    """

    worker_init: Optional[Callable[[], None]] = None
    chunk_begin: Optional[Callable[[], Any]] = None
    chunk_end: Optional[Callable[[Any], Any]] = None
    chunk_absorb_shared: Optional[Callable[[Any], None]] = None
    chunk_absorb_foreign: Optional[Callable[[Any], None]] = None
    final_export: Optional[Callable[[], Any]] = None
    final_absorb: Optional[Callable[[Any], None]] = None


def merge_side_channels(*channels: Optional[SideChannel]) -> Optional[SideChannel]:
    """Compose several side channels into one riding a single session.

    A backend session accepts exactly one :class:`SideChannel`; when two
    services need to move state across the same fan-out (the cost service
    *and* the decision cache of one experiment run), their channels are
    merged: every hook calls the members' hooks in order, and the chunk
    tokens / payloads / final exports become tuples with one slot per
    member.  ``None`` members are tolerated (their slots stay ``None``), a
    single live member is returned as-is (zero overhead), and no live
    members merge to ``None``.
    """
    live = [channel for channel in channels if channel is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def worker_init() -> None:
        for channel in live:
            if channel.worker_init:
                channel.worker_init()

    def chunk_begin() -> Tuple:
        return tuple(
            channel.chunk_begin() if channel.chunk_begin else None for channel in live
        )

    def chunk_end(tokens: Tuple) -> Tuple:
        return tuple(
            channel.chunk_end(token) if channel.chunk_end else None
            for channel, token in zip(live, tokens)
        )

    def chunk_absorb_shared(payloads: Tuple) -> None:
        for channel, payload in zip(live, payloads):
            if payload is not None and channel.chunk_absorb_shared:
                channel.chunk_absorb_shared(payload)

    def chunk_absorb_foreign(payloads: Tuple) -> None:
        for channel, payload in zip(live, payloads):
            if payload is not None and channel.chunk_absorb_foreign:
                channel.chunk_absorb_foreign(payload)

    def final_export() -> Tuple:
        return tuple(
            channel.final_export() if channel.final_export else None for channel in live
        )

    def final_absorb(payloads: Tuple) -> None:
        for channel, payload in zip(live, payloads):
            if payload is not None and channel.final_absorb:
                channel.final_absorb(payload)

    return SideChannel(
        worker_init=worker_init,
        chunk_begin=chunk_begin,
        chunk_end=chunk_end,
        chunk_absorb_shared=chunk_absorb_shared,
        chunk_absorb_foreign=chunk_absorb_foreign,
        final_export=final_export,
        final_absorb=final_absorb,
    )


class BackendSession(ABC):
    """One fan-out scope: a batch-oriented ``request -> response`` executor.

    Sessions exist because the process backend must fork *after* the data
    its workers need (candidate plans) has been created: the search opens a
    session per optimization unit, issues any number of :meth:`run` calls
    (candidate costings, RRS sample generations), and closes it, at which
    point worker state is merged back.  ``run`` preserves request order in
    its response list regardless of how requests were distributed.

    Every session exposes :attr:`dispatch_stats`, a :class:`DispatchStats`
    accumulated across all of its ``run`` calls.  ``run`` optionally takes
    ``costs=`` — caller-declared per-request cost weights used for load
    accounting and (in stealing mode) nothing else: dispatch order stays
    FIFO, so costs influence the *report*, not the results.
    """

    #: Accumulated dispatch accounting; concrete sessions replace this.
    dispatch_stats: DispatchStats = DispatchStats()

    @abstractmethod
    def run(self, requests: Sequence[Any], costs: Optional[Sequence[float]] = None) -> List[Any]:
        """Execute every request and return responses in request order."""

    def close(self) -> None:
        """Tear the session down (merge worker state, reap workers)."""

    def __enter__(self) -> "BackendSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ExecutionBackend(ABC):
    """Factory of :class:`BackendSession` objects for one execution style."""

    #: Spec name ("serial" / "thread" / "process").
    name: str = "backend"
    #: True when workers share the parent's address space (and therefore the
    #: parent's cost-service cache and stats counters).
    shares_memory: bool = True

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("worker count must be >= 1")
        self.workers = workers

    @abstractmethod
    def session(
        self,
        worker_fn: Callable[[Any], Any],
        side_channel: Optional[SideChannel] = None,
        dispatch: str = "static",
    ) -> BackendSession:
        """Open a fan-out session executing ``worker_fn`` per request."""

    @property
    def spec(self) -> str:
        """The spec string reproducing this backend (``name:workers``)."""
        return f"{self.name}:{self.workers}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


# ---------------------------------------------------------------------------
# Serial
# ---------------------------------------------------------------------------


class _SerialSession(BackendSession):
    def __init__(self, worker_fn: Callable[[Any], Any]) -> None:
        self._worker_fn = worker_fn
        self.dispatch_stats = DispatchStats(dispatch="static", workers=1)

    def run(self, requests: Sequence[Any], costs: Optional[Sequence[float]] = None) -> List[Any]:
        loads = _request_loads(requests, costs)
        self.dispatch_stats.runs += 1
        responses: List[Any] = []
        for position, request in enumerate(requests):
            # worker_slot=-1: serial execution runs on the caller, never in a
            # pool member — kill specs targeting pool slots must not fire
            # here (a forked worker's *inner* serial search included).
            fault_site("parallel.task", worker_slot=-1, backend="serial")
            responses.append(self._worker_fn(request))
            self.dispatch_stats.record(0, loads[position])
        return responses


class SerialBackend(ExecutionBackend):
    """The reference backend: every request runs inline, in order."""

    name = "serial"
    shares_memory = True

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers=1)

    def session(self, worker_fn, side_channel=None, dispatch: str = "static") -> BackendSession:
        # Inline execution hits the parent's service directly; no side
        # channel traffic is needed (or possible — there is no "elsewhere").
        # With a single inline worker the dispatch modes coincide.
        _validate_dispatch(dispatch)
        return _SerialSession(worker_fn)


# ---------------------------------------------------------------------------
# Threads
# ---------------------------------------------------------------------------


class _ThreadSession(BackendSession):
    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        workers: int,
        side_channel: Optional[SideChannel],
        dispatch: str = "static",
    ) -> None:
        self._worker_fn = worker_fn
        self._side = side_channel
        self._max_workers = workers
        self._dispatch = _validate_dispatch(dispatch)
        self.dispatch_stats = DispatchStats(dispatch=dispatch, workers=workers)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="stubby-search"
        )

    def run(self, requests: Sequence[Any], costs: Optional[Sequence[float]] = None) -> List[Any]:
        loads = _request_loads(requests, costs)
        self.dispatch_stats.runs += 1
        if len(requests) <= 1:
            # worker_slot=-1 marks inline execution: a kill spec armed for a
            # pool worker (worker_slot >= 0) must never fire in the parent.
            responses = []
            for request in requests:
                fault_site("parallel.task", worker_slot=-1, backend="inline")
                responses.append(self._worker_fn(request))
            for position in range(len(requests)):
                self.dispatch_stats.record(0, loads[position])
            return responses
        if self._dispatch == "stealing":
            return self._run_stealing(requests, loads)
        return self._run_static(requests, loads)

    def _run_static(self, requests: Sequence[Any], loads: List[float]) -> List[Any]:
        side = self._side

        def run_chunk(slot_chunk: Tuple[int, List[Tuple[int, Any]]]):
            slot, chunk = slot_chunk
            token = side.chunk_begin() if side and side.chunk_begin else None
            try:
                results = []
                for index, request in chunk:
                    fault_site("parallel.task", worker_slot=slot, backend="thread")
                    results.append((index, self._worker_fn(request)))
            finally:
                # Balance the sink stack even when a task raises, so a
                # caller that catches the error and reuses the session does
                # not get later chunks double-attributed.
                payload = side.chunk_end(token) if side and side.chunk_end else None
            return slot, results, payload

        chunks = _round_robin(list(enumerate(requests)), self._max_workers)
        responses: List[Any] = [None] * len(requests)
        for slot, results, payload in self._pool.map(run_chunk, list(enumerate(chunks))):
            for index, response in results:
                responses[index] = response
                self.dispatch_stats.record(slot, loads[index])
            if payload is not None and side and side.chunk_absorb_shared:
                # Worker threads updated the shared counters live; the
                # payload only re-attributes the delta to the *calling*
                # thread's attribution sinks (per-candidate stats).
                side.chunk_absorb_shared(payload)
        return responses

    def _run_stealing(self, requests: Sequence[Any], loads: List[float]) -> List[Any]:
        """Pull-model dispatch: idle workers pop the next request themselves.

        All workers drain one shared FIFO deque; a request executes on
        whichever worker got free first, so an expensive request occupies
        exactly one worker while the others keep draining cheap ones.
        Results land by index, preserving request order — and since tasks
        are independent by the backend contract, *which* worker runs a
        request cannot change its response.
        """
        side = self._side
        workers = self._max_workers
        pending: deque = deque(enumerate(requests))
        lock = threading.Lock()
        responses: List[Any] = [None] * len(requests)

        def worker_loop(slot: int):
            taken: List[Tuple[int, bool]] = []
            token = side.chunk_begin() if side and side.chunk_begin else None
            try:
                while True:
                    with lock:
                        if not pending:
                            break
                        index, request = pending.popleft()
                    fault_site("parallel.task", worker_slot=slot, backend="thread")
                    responses[index] = self._worker_fn(request)
                    # "Stolen" = ran somewhere other than its static
                    # round-robin slot (the imbalance the mode exists for).
                    taken.append((index, index % workers != slot))
            finally:
                payload = side.chunk_end(token) if side and side.chunk_end else None
            return slot, taken, payload

        for slot, taken, payload in self._pool.map(worker_loop, range(workers)):
            for index, stolen in taken:
                self.dispatch_stats.record(slot, loads[index], stolen=stolen)
            if payload is not None and side and side.chunk_absorb_shared:
                side.chunk_absorb_shared(payload)
        return responses

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ThreadBackend(ExecutionBackend):
    """Thread-pool backend sharing the parent's cost-service cache."""

    name = "thread"
    shares_memory = True

    def __init__(self, workers: int = DEFAULT_WORKERS) -> None:
        super().__init__(workers=workers)

    def session(self, worker_fn, side_channel=None, dispatch: str = "static") -> BackendSession:
        return _ThreadSession(worker_fn, self.workers, side_channel, dispatch=dispatch)


# ---------------------------------------------------------------------------
# Processes (fork)
# ---------------------------------------------------------------------------


def _process_worker_main(conn, worker_fn, side_channel, worker_slot: int = -1) -> None:
    """Loop of one forked worker: execute request chunks until told to stop.

    Runs in the child process.  Everything the worker needs beyond the
    per-chunk requests (candidate plans, the cost service, the search
    object) was inherited through ``fork`` — requests and responses are the
    only data crossing the pipe, so they must be plain picklable values.
    ``worker_slot`` identifies this worker at the ``parallel.task`` fault
    site, letting a chaos plan target one specific pool member.
    """
    side = side_channel
    try:
        if side and side.worker_init:
            side.worker_init()
        while True:
            message = conn.recv()
            if message[0] == "stop":
                payload = None
                if side and side.final_export:
                    payload = side.final_export()
                conn.send(("final", payload))
                break
            _, chunk = message
            token = side.chunk_begin() if side and side.chunk_begin else None
            failure = None
            try:
                results = []
                for index, request in chunk:
                    fault_site("parallel.task", worker_slot=worker_slot, backend="process")
                    results.append((index, worker_fn(request)))
            except BaseException:
                failure = traceback.format_exc()
            finally:
                payload = side.chunk_end(token) if side and side.chunk_end else None
            if failure is not None:
                conn.send(("error", failure))
                break
            conn.send(("chunk", results, payload))
    except EOFError:  # pragma: no cover - parent died; nothing left to do
        pass
    finally:
        conn.close()
        # Exit without running the parent's atexit/pytest machinery the
        # child inherited through fork.
        os._exit(0)


class _ForkSession(BackendSession):
    """Fork-pool session: workers inherit memory, pipes carry plain data."""

    def __init__(
        self,
        worker_fn: Callable[[Any], Any],
        workers: int,
        side_channel: Optional[SideChannel],
        dispatch: str = "static",
    ) -> None:
        self._worker_fn = worker_fn
        self._requested_workers = workers
        self._side = side_channel
        self._dispatch = _validate_dispatch(dispatch)
        self.dispatch_stats = DispatchStats(dispatch=dispatch, workers=workers)
        self._ctx = multiprocessing.get_context("fork")
        self._workers: List[Tuple[Any, Any]] = []  # (connection, process)
        self._dead: Set[int] = set()  # slots whose worker died or errored
        self._closed = False

    @property
    def forked(self) -> bool:
        """True once the lazy fork has happened (workers exist)."""
        return bool(self._workers)

    @property
    def live_workers(self) -> int:
        """Workers currently able to take requests."""
        if not self._workers:
            return self._requested_workers
        return len(self._workers) - len(self._dead)

    def worker_pids(self) -> List[int]:
        """PIDs of the live workers (empty before the lazy fork)."""
        return [
            process.pid
            for slot, (_conn, process) in enumerate(self._workers)
            if slot not in self._dead
        ]

    # Workers are forked lazily, on the first run() call, so the session
    # captures the freshest possible parent state (e.g. cache entries from
    # work done between session creation and first fan-out).
    def _ensure_workers(self) -> None:
        if self._workers:
            return
        for slot in range(self._requested_workers):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=_process_worker_main,
                args=(child_conn, self._worker_fn, self._side, slot),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append((parent_conn, process))

    def run(self, requests: Sequence[Any], costs: Optional[Sequence[float]] = None) -> List[Any]:
        if self._closed:
            raise RuntimeError("session is closed")
        loads = _request_loads(requests, costs)
        self.dispatch_stats.runs += 1
        if len(requests) <= 1:
            # Not worth a pipe round-trip; inline execution is identical by
            # the determinism contract.  worker_slot=-1: inline, never a
            # target for pool-worker kill specs.
            responses = []
            for request in requests:
                fault_site("parallel.task", worker_slot=-1, backend="inline")
                responses.append(self._worker_fn(request))
            for position in range(len(requests)):
                self.dispatch_stats.record(0, loads[position])
            return responses
        self._ensure_workers()
        if not self._alive_slots():
            raise RuntimeError("parallel worker pool has no live workers left")
        if self._dispatch == "stealing":
            return self._run_stealing(requests, loads)
        return self._run_static(requests, loads)

    def _alive_slots(self) -> List[int]:
        return [slot for slot in range(len(self._workers)) if slot not in self._dead]

    def _mark_dead(self, slot: int) -> Any:
        """Reap a dead worker's process; returns it for error reporting."""
        _conn, process = self._workers[slot]
        _reap_process(process)
        self._dead.add(slot)
        self.dispatch_stats.worker_deaths += 1
        return process

    def _run_static(self, requests: Sequence[Any], loads: List[float]) -> List[Any]:
        indexed = list(enumerate(requests))
        alive = self._alive_slots()
        chunks = _round_robin(indexed, len(alive))
        active: List[Tuple[int, Any, Any]] = []
        errors: List[str] = []
        for slot, chunk in zip(alive, chunks):
            if not chunk:
                continue
            conn, process = self._workers[slot]
            try:
                conn.send(("run", chunk))
            except (BrokenPipeError, ConnectionError, OSError):
                # Died while idle (killed between runs): same handling as a
                # death mid-request, just detected at dispatch time.
                process = self._mark_dead(slot)
                errors.append(
                    f"worker pid {process.pid} died before dispatch "
                    f"(exit code {process.exitcode})"
                )
                continue
            active.append((slot, conn, process))

        side = self._side
        responses: List[Any] = [None] * len(requests)
        for slot, conn, process in active:
            try:
                message = conn.recv()
            except (EOFError, ConnectionError, OSError):
                # The worker died without replying (OOM kill, segfault,
                # external signal) — reap it so the exit code is readable
                # and fail the run with an attributable error.  Static mode
                # does not retry; use dispatch="stealing" for that.
                process = self._mark_dead(slot)
                errors.append(
                    f"worker pid {process.pid} died without replying "
                    f"(exit code {process.exitcode})"
                )
                continue
            if message[0] == "error":
                # The worker loop exits after reporting a worker_fn failure.
                self._dead.add(slot)
                errors.append(message[1])
                continue
            _, results, payload = message
            for index, response in results:
                responses[index] = response
                self.dispatch_stats.record(slot, loads[index])
            if payload is not None and side and side.chunk_absorb_foreign:
                # The parent's counters never saw the child's queries: fold
                # the whole delta in (global stats + attribution sinks).
                side.chunk_absorb_foreign(payload)
        if errors:
            self.close()
            raise RuntimeError(
                "parallel search worker failed:\n" + "\n".join(errors)
            )
        return responses

    def _run_stealing(self, requests: Sequence[Any], loads: List[float]) -> List[Any]:
        """Parent-driven stealing: idle workers get requests one at a time.

        The parent keeps every worker busy with exactly one single-request
        chunk and hands out the next request the moment a response arrives
        (``multiprocessing.connection.wait``).  One request = one chunk =
        one side-channel payload, so a death loses precisely the in-flight
        request's delta together with its response — the absorbed stats can
        never double-count or miss a merge.  The orphaned request is retried
        on a surviving worker (up to :data:`MAX_TASK_ATTEMPTS` executions);
        the run only fails if a request exhausts its attempts, every worker
        dies, or a request raises inside ``worker_fn``.
        """
        side = self._side
        stats = self.dispatch_stats
        total_workers = len(self._workers)
        pending: deque = deque(enumerate(requests))
        attempts: Dict[int, int] = {}
        responses: List[Any] = [None] * len(requests)
        in_flight: Dict[Any, Tuple[int, int]] = {}  # conn -> (request index, slot)
        errors: List[str] = []
        aborting = False

        def conn_of(slot: int):
            return self._workers[slot][0]

        while pending or in_flight:
            if not aborting:
                busy = {slot for _index, slot in in_flight.values()}
                for slot in self._alive_slots():
                    if not pending:
                        break
                    if slot in busy:
                        continue
                    index, request = pending.popleft()
                    try:
                        conn_of(slot).send(("run", [(index, request)]))
                    except (BrokenPipeError, ConnectionError, OSError):
                        # Died while idle: the request never executed, so it
                        # goes back without consuming one of its attempts.
                        self._mark_dead(slot)
                        pending.appendleft((index, request))
                        continue
                    # Executions, not deliveries, count against the cap — a
                    # send that failed above cost the request nothing.
                    attempts[index] = attempts.get(index, 0) + 1
                    in_flight[conn_of(slot)] = (index, slot)
            if not in_flight:
                if pending and not aborting:
                    undelivered = sorted(index for index, _request in pending)
                    errors.append(
                        f"requests {undelivered} undeliverable: no live workers left"
                    )
                pending.clear()
                break
            for conn in _mp_connection.wait(list(in_flight)):
                index, slot = in_flight.pop(conn)
                try:
                    message = conn.recv()
                except (EOFError, ConnectionError, OSError):
                    process = self._mark_dead(slot)
                    if attempts[index] >= MAX_TASK_ATTEMPTS:
                        errors.append(
                            f"request {index} failed {attempts[index]} times across "
                            f"worker deaths (last pid {process.pid}, "
                            f"exit code {process.exitcode})"
                        )
                        aborting = True
                    else:
                        stats.retried_tasks += 1
                        pending.appendleft((index, requests[index]))
                    continue
                if message[0] == "error":
                    # worker_fn raised — deterministic, so never retried; the
                    # worker loop exits after reporting.
                    self._dead.add(slot)
                    errors.append(message[1])
                    aborting = True
                    continue
                _tag, results, payload = message
                for result_index, response in results:
                    responses[result_index] = response
                stats.record(slot, loads[index], stolen=index % total_workers != slot)
                if payload is not None and side and side.chunk_absorb_foreign:
                    side.chunk_absorb_foreign(payload)
        if errors:
            self.close()
            raise RuntimeError(
                "parallel worker pool failed:\n" + "\n".join(errors)
            )
        return responses

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        side = self._side
        for slot, (conn, process) in enumerate(self._workers):
            if slot in self._dead:
                conn.close()
                continue
            try:
                conn.send(("stop",))
                message = conn.recv()
                if message[0] == "final" and message[1] is not None:
                    if side and side.final_absorb:
                        side.final_absorb(message[1])
            except (EOFError, BrokenPipeError, ConnectionError, OSError):
                pass
            finally:
                conn.close()
        for _conn, process in self._workers:
            _reap_process(process, timeout=10)
        self._workers = []


class ProcessBackend(ExecutionBackend):
    """Fork-based process backend with per-worker cache shards.

    Requires the ``fork`` start method (POSIX).  Where it is unavailable the
    backend degrades to serial in-process execution — results are identical
    by the determinism contract, only the wall-clock benefit is lost.
    """

    name = "process"
    shares_memory = False

    def __init__(self, workers: int = DEFAULT_WORKERS) -> None:
        super().__init__(workers=workers)
        self._fork_available = "fork" in multiprocessing.get_all_start_methods()

    @property
    def spec(self) -> str:
        """Reports the serial degradation so results never claim parallelism
        that did not happen (e.g. in ``OptimizationResult.search_backend``)."""
        if not self._fork_available:  # pragma: no cover - non-POSIX only
            return f"process:{self.workers} (serial fallback: no fork)"
        return f"process:{self.workers}"

    def session(self, worker_fn, side_channel=None, dispatch: str = "static") -> BackendSession:
        _validate_dispatch(dispatch)
        if not self._fork_available:  # pragma: no cover - non-POSIX only
            return _SerialSession(worker_fn)
        return _ForkSession(worker_fn, self.workers, side_channel, dispatch=dispatch)


# ---------------------------------------------------------------------------
# Construction / resolution
# ---------------------------------------------------------------------------

_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def available_backends() -> Tuple[str, ...]:
    """Names of the registered backend kinds."""
    return tuple(_BACKENDS)


def create_backend(spec: str, workers: Optional[int] = None) -> ExecutionBackend:
    """Build a backend from a spec string (``"process"``, ``"thread:8"``…).

    An explicit ``workers`` argument overrides a count embedded in the spec.
    """
    name, _, count = spec.strip().partition(":")
    name = name.strip().lower()
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown search backend {name!r}; expected one of {sorted(_BACKENDS)}"
        )
    if workers is None:
        if count:
            try:
                workers = int(count)
            except ValueError:
                raise ValueError(f"bad worker count in backend spec {spec!r}")
        else:
            workers = 1 if name == "serial" else DEFAULT_WORKERS
    return _BACKENDS[name](workers=workers)


def resolve_backend(backend) -> ExecutionBackend:
    """Normalize a backend argument into an :class:`ExecutionBackend`.

    Accepts an existing backend instance, a spec string, or ``None`` — the
    latter consults the ``STUBBY_SEARCH_BACKEND`` environment variable and
    finally falls back to :class:`SerialBackend`, so an entire optimizer
    stack can be switched from the outside without touching call sites.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "").strip() or "serial"
    if isinstance(backend, str):
        return create_backend(backend)
    raise TypeError(
        "backend must be an ExecutionBackend, a spec string like 'process:4', or None"
    )


def _round_robin(indexed: List[Tuple[int, Any]], buckets: int) -> List[List[Tuple[int, Any]]]:
    """Distribute (index, item) pairs across ``buckets`` deterministically."""
    buckets = max(1, buckets)
    chunks: List[List[Tuple[int, Any]]] = [[] for _ in range(buckets)]
    for position, pair in enumerate(indexed):
        chunks[position % buckets].append(pair)
    return chunks
