"""Glue binding the optimizer stack to the shared cost-estimation service.

The search, the optimizer façade, and the baselines all obtain their
:class:`~repro.whatif.service.CostService` through :func:`ensure_cost_service`
so that one service instance (and therefore one cache and one stats ledger)
can be threaded through an entire optimizer run — or shared across several
optimizers when an experiment wants cross-run reuse.

:class:`StatsWindow` captures the stats delta over a region of work; the
search uses it to attribute what-if queries, cache hits, and re-costed job
counts to individual optimization units, and the optimizer uses it to report
per-``optimize()`` totals in :class:`~repro.core.optimizer.OptimizationResult`.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster import ClusterSpec
from repro.core.parallel import SideChannel
from repro.whatif.service import CostService, CostServiceStats, resolve_cache_path

__all__ = [
    "CostService",
    "CostServiceStats",
    "StatsWindow",
    "cost_service_side_channel",
    "ensure_cost_service",
    "resolve_cache_path",
]


def ensure_cost_service(
    cluster: ClusterSpec,
    service: Optional[CostService] = None,
    cache_path: Optional[str] = None,
) -> CostService:
    """Return ``service`` if given, else a fresh :class:`CostService`.

    Components accept an optional service so callers can share one cache
    across search/optimizer/baseline layers; this helper keeps the
    default-construction policy in one place.  A shared service must have
    been built for the same cluster — cached estimates carry no cluster
    component, so cross-cluster sharing would silently serve wrong costs.

    ``cache_path`` applies only when a fresh service is constructed: the new
    service warm-starts from the persisted cache at that path (explicit
    argument, else the ``STUBBY_COST_CACHE`` environment variable).  When an
    existing service is passed, persistence was that service's constructor's
    decision and the argument is ignored.
    """
    if service is None:
        return CostService(cluster, cache_path=resolve_cache_path(cache_path))
    if service.cluster != cluster:
        raise ValueError(
            "cost service was built for a different ClusterSpec; "
            "cached estimates are only valid for the cluster they were computed on"
        )
    return service


def cost_service_side_channel(service: CostService) -> SideChannel:
    """Wire a :class:`CostService` into a backend session's side channel.

    * ``worker_init`` (forked workers only) starts the worker's cache export
      log, so new entries can be merged back to the parent on join.
    * ``chunk_begin``/``chunk_end`` bracket each worker chunk with a fresh
      attribution sink on the *worker's* thread, capturing the chunk's exact
      stats delta without reading the (concurrently moving) global counters.
      They also propagate the *session opener's* origin label
      (:meth:`CostService.origin`) onto the worker thread for the chunk's
      duration: origin labels are thread-local, so without this a thread
      backend's workers would store and compare entries under no label and
      misattribute same-origin reuse as cross-origin.
    * ``chunk_absorb_shared`` (thread backend) re-attributes the delta to the
      calling thread's sinks only — the shared global counters already saw
      the work live.
    * ``chunk_absorb_foreign`` (process backend) folds the delta in fully:
      the worker's queries never touched this process's counters.
    * ``final_export``/``final_absorb`` merge the worker's new cache entries
      into the parent cache when the session joins.
    """

    # Captured on the thread opening the session (e.g. the experiment cell's
    # thread), then re-established on whichever thread runs each chunk.
    origin_label = service.current_origin()

    def chunk_begin():
        sink = CostServiceStats()
        service._sink_stack().append(sink)
        previous_origin = service.current_origin()
        service._origin.label = origin_label
        return (sink, previous_origin)

    def chunk_end(token) -> CostServiceStats:
        sink, previous_origin = token
        service._origin.label = previous_origin
        service._sink_stack().pop()
        return sink

    return SideChannel(
        worker_init=service.start_export_log,
        chunk_begin=chunk_begin,
        chunk_end=chunk_end,
        chunk_absorb_shared=service.apply_sink_only_delta,
        chunk_absorb_foreign=service.apply_external_delta,
        final_export=service.export_log_entries,
        final_absorb=service.absorb_entries,
    )


class StatsWindow:
    """Context manager capturing a :class:`CostServiceStats` delta.

    Usage::

        with StatsWindow(service) as window:
            ...cost queries...
        window.delta  # CostServiceStats with just this region's counters
    """

    def __init__(self, service: CostService) -> None:
        self.service = service
        self.delta: CostServiceStats = CostServiceStats()
        self._before: Optional[CostServiceStats] = None

    def __enter__(self) -> "StatsWindow":
        self._before = self.service.stats_snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._before is not None
        self.delta = self.service.stats_snapshot().since(self._before)
