"""Glue binding the optimizer stack to the shared cost-estimation service.

The search, the optimizer façade, and the baselines all obtain their
:class:`~repro.whatif.service.CostService` through :func:`ensure_cost_service`
so that one service instance (and therefore one cache and one stats ledger)
can be threaded through an entire optimizer run — or shared across several
optimizers when an experiment wants cross-run reuse.

:class:`StatsWindow` captures the stats delta over a region of work; the
search uses it to attribute what-if queries, cache hits, and re-costed job
counts to individual optimization units, and the optimizer uses it to report
per-``optimize()`` totals in :class:`~repro.core.optimizer.OptimizationResult`.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster import ClusterSpec
from repro.whatif.service import CostService, CostServiceStats

__all__ = ["CostService", "CostServiceStats", "StatsWindow", "ensure_cost_service"]


def ensure_cost_service(
    cluster: ClusterSpec, service: Optional[CostService] = None
) -> CostService:
    """Return ``service`` if given, else a fresh :class:`CostService`.

    Components accept an optional service so callers can share one cache
    across search/optimizer/baseline layers; this helper keeps the
    default-construction policy in one place.  A shared service must have
    been built for the same cluster — cached estimates carry no cluster
    component, so cross-cluster sharing would silently serve wrong costs.
    """
    if service is None:
        return CostService(cluster)
    if service.cluster != cluster:
        raise ValueError(
            "cost service was built for a different ClusterSpec; "
            "cached estimates are only valid for the cluster they were computed on"
        )
    return service


class StatsWindow:
    """Context manager capturing a :class:`CostServiceStats` delta.

    Usage::

        with StatsWindow(service) as window:
            ...cost queries...
        window.delta  # CostServiceStats with just this region's counters
    """

    def __init__(self, service: CostService) -> None:
        self.service = service
        self.delta: CostServiceStats = CostServiceStats()
        self._before: Optional[CostServiceStats] = None

    def __enter__(self) -> "StatsWindow":
        self._before = self.service.stats.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._before is not None
        self.delta = self.service.stats.since(self._before)
