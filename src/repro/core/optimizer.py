"""The Stubby optimizer facade.

:class:`StubbyOptimizer` wires together the transformation groups, the
two-phase greedy search, Recursive Random Search, and the What-if engine.
It exposes the paper's three evaluated variants:

* **Stubby** — both the Vertical and Horizontal transformation groups;
* **Vertical** — only the Vertical group (plus partition-function and
  configuration transformations);
* **Horizontal** — only the Horizontal group (plus partition-function and
  configuration transformations).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cluster import ClusterSpec
from repro.core.plan import Plan
from repro.core.rrs import RecursiveRandomSearch
from repro.core.search import StubbySearch, UnitReport
from repro.core.transformations import (
    HorizontalPacking,
    InterJobVerticalPacking,
    IntraJobVerticalPacking,
    PartitionFunctionTransformation,
)
from repro.whatif.model import WhatIfEngine
from repro.workflow.graph import Workflow


@dataclass
class OptimizationResult:
    """Outcome of one optimizer run."""

    plan: Plan
    estimated_cost_s: float
    optimization_time_s: float
    optimizer: str
    unit_reports: List[UnitReport] = field(default_factory=list)

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the optimized plan."""
        return self.plan.num_jobs

    @property
    def transformations_applied(self) -> List[str]:
        """Names of all transformations recorded in the optimized plan."""
        return self.plan.transformations_applied()


class StubbyOptimizer:
    """Cost-based, transformation-based optimizer for MapReduce workflows."""

    name = "Stubby"

    def __init__(
        self,
        cluster: ClusterSpec,
        phases: Sequence[str] = ("vertical", "horizontal"),
        rrs: Optional[RecursiveRandomSearch] = None,
        allow_extended_horizontal: bool = True,
        optimize_configurations: bool = True,
        seed: int = 17,
    ) -> None:
        for phase in phases:
            if phase not in ("vertical", "horizontal"):
                raise ValueError(f"unknown phase {phase!r}")
        self.cluster = cluster
        self.phases = tuple(phases)
        self.whatif = WhatIfEngine(cluster)
        vertical = [
            IntraJobVerticalPacking(),
            InterJobVerticalPacking(),
            PartitionFunctionTransformation(),
        ]
        horizontal = [
            HorizontalPacking(allow_extended=allow_extended_horizontal),
            PartitionFunctionTransformation(),
        ]
        self.search = StubbySearch(
            cluster=cluster,
            vertical_transformations=vertical,
            horizontal_transformations=horizontal,
            rrs=rrs,
            seed=seed,
            optimize_configurations=optimize_configurations,
        )

    # ------------------------------------------------------------------ API
    def optimize(self, plan_or_workflow) -> OptimizationResult:
        """Optimize a plan (or raw workflow) and return the optimized result."""
        plan = self._as_plan(plan_or_workflow)
        started = time.perf_counter()
        optimized, reports = self.search.run(plan, phases=self.phases)
        elapsed = time.perf_counter() - started
        estimate = self.whatif.estimate_workflow(optimized.workflow)
        return OptimizationResult(
            plan=optimized,
            estimated_cost_s=estimate.total_s,
            optimization_time_s=elapsed,
            optimizer=self.variant_name,
            unit_reports=reports,
        )

    @property
    def variant_name(self) -> str:
        """Stubby / Vertical / Horizontal, depending on the enabled phases."""
        if self.phases == ("vertical",):
            return "Vertical"
        if self.phases == ("horizontal",):
            return "Horizontal"
        return self.name

    # --------------------------------------------------------------- helpers
    @staticmethod
    def _as_plan(plan_or_workflow) -> Plan:
        if isinstance(plan_or_workflow, Plan):
            return plan_or_workflow
        if isinstance(plan_or_workflow, Workflow):
            return Plan(plan_or_workflow)
        raise TypeError("optimize() expects a Plan or a Workflow")

    @classmethod
    def vertical_only(cls, cluster: ClusterSpec, **kwargs) -> "StubbyOptimizer":
        """The paper's *Vertical* variant (§7.2)."""
        return cls(cluster, phases=("vertical",), **kwargs)

    @classmethod
    def horizontal_only(cls, cluster: ClusterSpec, **kwargs) -> "StubbyOptimizer":
        """The paper's *Horizontal* variant (§7.2)."""
        return cls(cluster, phases=("horizontal",), **kwargs)
