"""The Stubby optimizer facade.

:class:`StubbyOptimizer` wires together the transformation groups, the
two-phase greedy search, Recursive Random Search, and the What-if engine.
It exposes the paper's three evaluated variants:

* **Stubby** — both the Vertical and Horizontal transformation groups;
* **Vertical** — only the Vertical group (plus partition-function and
  configuration transformations);
* **Horizontal** — only the Horizontal group (plus partition-function and
  configuration transformations).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cluster import ClusterSpec
from repro.core.costing import CostService, CostServiceStats, StatsWindow, ensure_cost_service
from repro.core.decision_cache import DecisionCache, ensure_decision_cache
from repro.core.plan import Plan
from repro.core.rrs import RecursiveRandomSearch
from repro.core.search import StubbySearch, UnitReport, plan_decision_fingerprint
from repro.core.subresults import SubResultCatalog, ensure_subresult_catalog
from repro.core.transformations import (
    HorizontalPacking,
    InterJobVerticalPacking,
    IntraJobVerticalPacking,
    PartitionFunctionTransformation,
    SubResultReuseTransformation,
)
from repro.workflow.graph import Workflow


@dataclass
class OptimizationResult:
    """Outcome of one optimizer run."""

    plan: Plan
    estimated_cost_s: float
    optimization_time_s: float
    optimizer: str
    unit_reports: List[UnitReport] = field(default_factory=list)
    #: Cost-service counters for this run (what-if queries, cache hits,
    #: re-costed jobs); ``None`` when the optimizer bypassed the service.
    cost_stats: Optional[CostServiceStats] = None
    #: Execution backend the search ran on (e.g. "serial:1", "process:4").
    search_backend: str = "serial:1"

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the optimized plan."""
        return self.plan.num_jobs

    def plan_signature(self) -> Tuple:
        """Structural signature of the optimized plan."""
        return self.plan.signature()

    def decision_fingerprint(self) -> Tuple:
        """Canonical decision identity (structure + per-job configurations).

        Two results with equal fingerprints represent byte-identical
        optimizer decisions; this is the value the planning service's
        bit-identity contract (and the experiment orchestration tests)
        compare against a cold serial run.
        """
        return plan_decision_fingerprint(self.plan)

    @property
    def whatif_queries(self) -> int:
        """Workflow-level what-if queries issued during this run."""
        return self.cost_stats.queries if self.cost_stats is not None else 0

    @property
    def transformations_applied(self) -> List[str]:
        """Names of all transformations recorded in the optimized plan."""
        return self.plan.transformations_applied()

    @property
    def unit_decision_hits(self) -> int:
        """Optimization units whose entire search was skipped via a memoized decision."""
        return sum(report.unit_decision_hits for report in self.unit_reports)

    @property
    def unit_decision_misses(self) -> int:
        """Optimization units that were searched (and whose decision was recorded)."""
        return sum(report.unit_decision_misses for report in self.unit_reports)

    @property
    def cross_origin_decision_hits(self) -> int:
        """Decision hits served by another origin (cell, run, or persisted file)."""
        return sum(report.cross_origin_decision_hits for report in self.unit_reports)

    @property
    def subresult_reuse_applications(self) -> int:
        """Reuse rewrites in the optimized plan: producing subgraphs replaced
        by stored catalog sub-results (exact — counted from the plan history,
        so search-time candidates that lost the cost arbitration don't show)."""
        return self.plan.count_applied(SubResultReuseTransformation.name)

    @property
    def jobs_eliminated_by_reuse(self) -> int:
        """Jobs the optimized plan no longer runs because a stored sub-result
        was substituted for their output."""
        return sum(
            len(applied.target_jobs)
            for applied in self.plan.history
            if applied.transformation == SubResultReuseTransformation.name
        )


class StubbyOptimizer:
    """Cost-based, transformation-based optimizer for MapReduce workflows."""

    name = "Stubby"

    def __init__(
        self,
        cluster: ClusterSpec,
        phases: Sequence[str] = ("vertical", "horizontal"),
        rrs: Optional[RecursiveRandomSearch] = None,
        allow_extended_horizontal: bool = True,
        optimize_configurations: bool = True,
        seed: int = 17,
        cost_service: Optional[CostService] = None,
        backend=None,
        cache_path: Optional[str] = None,
        decision_cache: Optional[DecisionCache] = None,
        decision_cache_path: Optional[str] = None,
        subresult_catalog: Optional[SubResultCatalog] = None,
        subresult_catalog_path: Optional[str] = None,
    ) -> None:
        # Phases are validated lazily, when optimize() actually uses them, so
        # an optimizer can be constructed from not-yet-complete configuration
        # (and so per-call phase overrides go through the same validation).
        #
        # ``cache_path`` (or the STUBBY_COST_CACHE environment variable) makes
        # a standalone optimizer warm-start its cost service from a persisted
        # cache; call ``self.costs.save_cache()`` to write the store back.
        # It is ignored when an explicit ``cost_service`` is shared in.
        # ``decision_cache`` / ``decision_cache_path`` work the same way for
        # the unit-level decision memo (STUBBY_DECISION_CACHE).
        self.cluster = cluster
        self.phases = tuple(phases)
        self.costs = ensure_cost_service(cluster, cost_service, cache_path=cache_path)
        self.whatif = self.costs.engine
        self.decisions = ensure_decision_cache(
            cluster, decision_cache, cache_path=decision_cache_path
        )
        # ``subresult_catalog`` / ``subresult_catalog_path`` wire the
        # ReStore-style sub-result reuse rewrite (STUBBY_SUBRESULT_CATALOG).
        # A fresh empty catalog is behaviourally invisible: the reuse
        # transformation proposes no applications until something registers.
        self.subresults = ensure_subresult_catalog(
            cluster, subresult_catalog, cache_path=subresult_catalog_path
        )
        reuse = SubResultReuseTransformation(self.subresults)
        vertical = [
            reuse,
            IntraJobVerticalPacking(),
            InterJobVerticalPacking(),
            PartitionFunctionTransformation(),
        ]
        horizontal = [
            reuse,
            HorizontalPacking(allow_extended=allow_extended_horizontal),
            PartitionFunctionTransformation(),
        ]
        self.search = StubbySearch(
            cluster=cluster,
            vertical_transformations=vertical,
            horizontal_transformations=horizontal,
            rrs=rrs,
            seed=seed,
            optimize_configurations=optimize_configurations,
            cost_service=self.costs,
            backend=backend,
            decision_cache=self.decisions,
        )

    # ------------------------------------------------------------------ API
    def optimize(
        self,
        plan_or_workflow,
        phases: Optional[Sequence[str]] = None,
        budget=None,
    ) -> OptimizationResult:
        """Optimize a plan (or raw workflow) and return the optimized result.

        ``phases`` overrides the phases configured at construction for this
        one call (e.g. to run only the vertical pass on a Stubby optimizer).
        Phase names are validated here — lazily — so both the constructor
        configuration and per-call overrides fail with the same error.

        ``budget`` is an optional :class:`repro.core.budget.TimeBudget` the
        search checks cooperatively between candidate evaluations; when it
        expires the call raises :class:`~repro.common.errors.DeadlineExceeded`
        instead of returning a partially searched plan.
        """
        plan = self._as_plan(plan_or_workflow)
        selected = self._validated_phases(self.phases if phases is None else tuple(phases))
        with StatsWindow(self.costs) as window:
            started = time.perf_counter()
            optimized, reports = self.search.run(plan, phases=selected, budget=budget)
            # The search is the reported optimization time (comparable with
            # Figure 13); the final estimate below is accounting, not search.
            elapsed = time.perf_counter() - started
            estimate = self.costs.estimate_workflow(optimized.workflow)
        return OptimizationResult(
            plan=optimized,
            estimated_cost_s=estimate.total_s,
            optimization_time_s=elapsed,
            # Label the result by the phases that actually ran, so divergence
            # reports from phase-restricted calls name the right variant.
            optimizer=self._variant_for(selected),
            unit_reports=reports,
            cost_stats=window.delta,
            search_backend=self.search.backend.spec,
        )

    @property
    def variant_name(self) -> str:
        """Stubby / Vertical / Horizontal, depending on the enabled phases."""
        return self._variant_for(self.phases)

    @classmethod
    def _variant_for(cls, phases: Sequence[str]) -> str:
        if tuple(phases) == ("vertical",):
            return "Vertical"
        if tuple(phases) == ("horizontal",):
            return "Horizontal"
        return cls.name

    # --------------------------------------------------------------- helpers
    @staticmethod
    def _validated_phases(phases: Sequence[str]) -> tuple:
        for phase in phases:
            if phase not in ("vertical", "horizontal"):
                raise ValueError(f"unknown phase {phase!r}")
        return tuple(phases)

    @staticmethod
    def _as_plan(plan_or_workflow) -> Plan:
        if isinstance(plan_or_workflow, Plan):
            return plan_or_workflow
        if isinstance(plan_or_workflow, Workflow):
            return Plan(plan_or_workflow)
        raise TypeError("optimize() expects a Plan or a Workflow")

    @classmethod
    def vertical_only(cls, cluster: ClusterSpec, **kwargs) -> "StubbyOptimizer":
        """The paper's *Vertical* variant (§7.2)."""
        return cls(cluster, phases=("vertical",), **kwargs)

    @classmethod
    def horizontal_only(cls, cluster: ClusterSpec, **kwargs) -> "StubbyOptimizer":
        """The paper's *Horizontal* variant (§7.2)."""
        return cls(cluster, phases=("horizontal",), **kwargs)
