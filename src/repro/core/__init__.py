"""Stubby's core: plan representation, transformations, search, and the optimizer."""

from repro.core.optimizer import OptimizationResult, StubbyOptimizer
from repro.core.parallel import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    create_backend,
    resolve_backend,
)
from repro.core.plan import Plan
from repro.core.rrs import RecursiveRandomSearch, RRSResult

__all__ = [
    "ExecutionBackend",
    "OptimizationResult",
    "ProcessBackend",
    "SerialBackend",
    "StubbyOptimizer",
    "ThreadBackend",
    "Plan",
    "RecursiveRandomSearch",
    "RRSResult",
    "available_backends",
    "create_backend",
    "resolve_backend",
]
