"""Stubby's core: plan representation, transformations, search, and the optimizer."""

from repro.core.optimizer import OptimizationResult, StubbyOptimizer
from repro.core.plan import Plan
from repro.core.rrs import RecursiveRandomSearch, RRSResult

__all__ = [
    "OptimizationResult",
    "StubbyOptimizer",
    "Plan",
    "RecursiveRandomSearch",
    "RRSResult",
]
