"""Content-key helpers shared by the decision cache and sub-result catalog.

A leaf module (no ``repro.core`` imports) so both
:mod:`repro.core.decision_cache` and :mod:`repro.core.subresults` can build
keys without an import cycle through the transformation registry.  The
search composes these into full decision keys; the catalog composes them
into subgraph signatures.  They all return hashable, picklable,
*content-based* plain tuples — ``hash()`` is only ever used for shard
placement; equality (and therefore hits) is by content.
"""

from __future__ import annotations

import os
from typing import Mapping, Optional, Tuple

__all__ = [
    "dataset_annotation_key",
    "filter_annotation_key",
    "job_annotations_key",
    "partition_function_key",
    "plain_value_key",
    "rrs_search_key",
    "transformation_key",
]

_FALSE_STRINGS = frozenset({"0", "false", "no", "off"})


def _env_flag(env_var: str, default: bool) -> bool:
    raw = os.environ.get(env_var, "").strip().lower()
    if not raw:
        return default
    return raw not in _FALSE_STRINGS


def plain_value_key(value) -> Tuple:
    """A hashable content tuple for an arbitrary annotation/condition value.

    Objects exposing a ``decision_key_content()`` method (e.g. the
    :class:`~repro.core.subresults.SubResultCatalog` held by the reuse
    transformation) are keyed by that content tuple rather than ``repr`` —
    their identity is irrelevant, but their *content* changes which
    candidates a search can enumerate, so it must move the key.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return ("atom", value)
    if isinstance(value, (tuple, list)):
        return ("seq",) + tuple(plain_value_key(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return ("set",) + tuple(sorted((plain_value_key(item) for item in value), key=repr))
    if isinstance(value, Mapping):
        return ("map",) + tuple(
            sorted(((str(k), plain_value_key(v)) for k, v in value.items()), key=repr)
        )
    content = getattr(value, "decision_key_content", None)
    if callable(content):
        return ("content", type(value).__name__, content())
    return ("repr", type(value).__name__, repr(value))


def partition_function_key(partitioner) -> Optional[Tuple]:
    """Content key of a :class:`~repro.mapreduce.partitioner.PartitionFunction`."""
    if partitioner is None:
        return None
    return (
        partitioner.kind,
        tuple(partitioner.fields),
        tuple(partitioner.effective_sort_fields),
        tuple(partitioner.split_points),
    )


def filter_annotation_key(filter_annotation) -> Optional[Tuple]:
    """Content key of a :class:`~repro.workflow.annotations.FilterAnnotation`."""
    if filter_annotation is None:
        return None
    return tuple(
        sorted(
            (name, rng.low, rng.high)
            for name, rng in filter_annotation.ranges.items()
        )
    )


def schema_annotation_key(schema) -> Optional[Tuple]:
    """Content key of a :class:`~repro.workflow.annotations.SchemaAnnotation`."""
    if schema is None:
        return None
    return tuple(
        None if component is None else tuple(sorted(component))
        for component in (schema.k1, schema.v1, schema.k2, schema.v2, schema.k3, schema.v3)
    )


def job_annotations_key(annotations) -> Tuple:
    """Content key of one job's :class:`JobAnnotations`.

    The profile is deliberately *not* re-keyed here: its content already
    reaches the decision key through the vertex local key
    (:attr:`~repro.whatif.model._VertexLocalKey.profile_key`).
    """
    return (
        schema_annotation_key(annotations.schema),
        filter_annotation_key(annotations.filter),
        tuple(
            sorted(
                (name, filter_annotation_key(flt))
                for name, flt in annotations.per_input_filters.items()
            )
        ),
        partition_function_key(annotations.partition_constraint),
        tuple(
            sorted(
                ((str(name), plain_value_key(value)) for name, value in annotations.conditions.items()),
                key=repr,
            )
        ),
    )


def dataset_annotation_key(annotation) -> Optional[Tuple]:
    """Content key of a :class:`~repro.workflow.annotations.DatasetAnnotation`."""
    if annotation is None:
        return None
    return (
        annotation.schema,
        annotation.partition_kind,
        annotation.partition_fields,
        annotation.split_points,
        annotation.sort_fields,
        annotation.compressed,
        annotation.size_bytes,
        annotation.num_records,
        tuple(sorted(annotation.field_ranges.items())),
    )


def rrs_search_key(rrs) -> Tuple:
    """Every knob of a :class:`~repro.core.rrs.RecursiveRandomSearch` that
    can change which configuration the search returns."""
    return (
        rrs.exploration_samples,
        rrs.exploitation_samples,
        rrs.initial_radius,
        rrs.shrink_factor,
        rrs.min_radius,
        rrs.restarts,
        rrs.seed,
    )


def transformation_key(transformation) -> Tuple:
    """Content key of one transformation instance: name plus every
    constructor option (e.g. ``HorizontalPacking.allow_extended``).

    A transformation may expose ``decision_key_extra()`` for state that
    lives outside its instance dict but changes which applications it can
    find — the sub-result reuse module's global kill switch is the one
    user.  The classic five transformations define no extra, so their keys
    are byte-identical to earlier releases and persisted decision files
    stay valid.
    """
    options = tuple(
        sorted(
            ((name, plain_value_key(value)) for name, value in vars(transformation).items()),
            key=repr,
        )
    )
    extra = getattr(transformation, "decision_key_extra", None)
    if callable(extra):
        return (transformation.name, options, extra())
    return (transformation.name, options)
