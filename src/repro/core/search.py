"""Stubby's two-phase greedy enumeration and search strategy (paper §4).

The search traverses the workflow graph twice.  In the first phase the
Vertical-group transformations (intra- and inter-job vertical packing, plus
the partition-function transformation) are applied within dynamically
generated optimization units; in the second phase the Horizontal-group
transformations are applied the same way.  Within each unit:

1. all combinations of the (non-configuration) transformations applicable to
   the unit's jobs are enumerated exhaustively, producing the unit's
   candidate subplans ``p1..pn`` (Figure 10);
2. Recursive Random Search finds the best configuration transformation for
   every candidate subplan, using the What-if engine to cost each sampled
   configuration;
3. the candidate with the lowest estimated cost is retained and the search
   moves to the next unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster import ClusterSpec
from repro.common.rng import DeterministicRNG
from repro.core.costing import CostService, StatsWindow, ensure_cost_service
from repro.core.optimization_unit import OptimizationUnit, OptimizationUnitGenerator
from repro.core.plan import Plan
from repro.core.rrs import RecursiveRandomSearch
from repro.core.transformations.base import Transformation, TransformationApplication
from repro.core.transformations.configuration import ConfigurationTransformation
from repro.mapreduce.config import ConfigDimension, ConfigurationSpace

#: Caps keeping the exhaustive enumeration inside a unit bounded; in practice
#: (paper §4.2) the number of unique subplans per unit is small.
MAX_SUBPLANS_PER_UNIT = 24
MAX_ENUMERATION_DEPTH = 6


@dataclass
class SubplanRecord:
    """One candidate subplan enumerated inside an optimization unit."""

    plan: Plan
    transformations: Tuple[str, ...]
    estimated_cost: float = float("inf")
    best_settings: Dict[str, Mapping[str, object]] = field(default_factory=dict)
    rrs_evaluations: int = 0


@dataclass
class UnitReport:
    """Everything the search did inside one optimization unit."""

    unit: OptimizationUnit
    phase: str
    subplans: List[SubplanRecord] = field(default_factory=list)
    chosen_index: int = -1
    #: Cost-service activity attributed to this unit: workflow-level what-if
    #: queries issued, job estimates served from the cache, and jobs that
    #: actually had to be re-costed.
    cost_queries: int = 0
    job_cache_hits: int = 0
    jobs_recosted: int = 0
    #: The full plan before and after this unit was optimized.  The
    #: differential-verification harness replays ``plan_after`` to bisect an
    #: output divergence down to the single unit — and therefore the single
    #: set of transformation applications — that introduced it.
    #: ``plan_before`` is a *reference* (the search never mutates a plan in
    #: place, so no copy is needed); ``plan_after`` is an isolated copy.
    plan_before: Optional[Plan] = None
    plan_after: Optional[Plan] = None

    @property
    def chosen(self) -> Optional[SubplanRecord]:
        """The subplan that was retained for this unit."""
        if 0 <= self.chosen_index < len(self.subplans):
            return self.subplans[self.chosen_index]
        return None

    @property
    def chosen_transformations(self) -> Tuple[str, ...]:
        """Names of the structural transformations applied in this unit."""
        chosen = self.chosen
        return chosen.transformations if chosen is not None else ()


class StubbySearch:
    """Greedy, unit-by-unit plan search over the transformation space."""

    def __init__(
        self,
        cluster: ClusterSpec,
        vertical_transformations: Sequence[Transformation],
        horizontal_transformations: Sequence[Transformation],
        rrs: Optional[RecursiveRandomSearch] = None,
        seed: int = 17,
        optimize_configurations: bool = True,
        cost_service: Optional[CostService] = None,
    ) -> None:
        self.cluster = cluster
        #: All cost queries go through the shared (memoizing) service; the
        #: underlying engine stays reachable for cold/diagnostic estimates.
        self.costs = ensure_cost_service(cluster, cost_service)
        self.whatif = self.costs.engine
        self.vertical_transformations = list(vertical_transformations)
        self.horizontal_transformations = list(horizontal_transformations)
        self.rrs = rrs or RecursiveRandomSearch(
            exploration_samples=10, exploitation_samples=8, restarts=1, seed=seed
        )
        self.optimize_configurations = optimize_configurations
        self._rng = DeterministicRNG(seed)

    # ------------------------------------------------------------------ API
    def run(self, plan: Plan, phases: Sequence[str] = ("vertical", "horizontal")) -> Tuple[Plan, List[UnitReport]]:
        """Run the requested phases over the plan; returns the optimized plan."""
        reports: List[UnitReport] = []
        current = plan
        for phase in phases:
            transformations = (
                self.vertical_transformations if phase == "vertical" else self.horizontal_transformations
            )
            current, phase_reports = self._run_phase(current, transformations, phase)
            reports.extend(phase_reports)
        return current, reports

    # ---------------------------------------------------------------- phase
    def _run_phase(
        self,
        plan: Plan,
        transformations: Sequence[Transformation],
        phase: str,
    ) -> Tuple[Plan, List[UnitReport]]:
        generator = OptimizationUnitGenerator()
        reports: List[UnitReport] = []
        current = plan
        while True:
            unit = generator.next_unit(current)
            if unit is None:
                break
            current, report = self.optimize_unit(current, unit, transformations, phase)
            reports.append(report)
            generator.mark_handled(current, unit)
        return current, reports

    # ----------------------------------------------------------------- unit
    def optimize_unit(
        self,
        plan: Plan,
        unit: OptimizationUnit,
        transformations: Sequence[Transformation],
        phase: str = "vertical",
    ) -> Tuple[Plan, UnitReport]:
        """Enumerate, cost, and pick the best subplan for one unit."""
        report = UnitReport(unit=unit, phase=phase, plan_before=plan)
        candidates = self.enumerate_subplans(plan, unit, transformations)

        best_index = -1
        best_cost = float("inf")
        with StatsWindow(self.costs) as window:
            for index, record in enumerate(candidates):
                cost, settings, evaluations = self._cost_with_configurations(
                    record.plan, record_unit_jobs(record, unit)
                )
                record.estimated_cost = cost
                record.best_settings = settings
                record.rrs_evaluations = evaluations
                report.subplans.append(record)
                if cost < best_cost:
                    best_cost = cost
                    best_index = index
        report.cost_queries = window.delta.queries
        report.job_cache_hits = window.delta.job_cache_hits
        report.jobs_recosted = window.delta.job_cache_misses

        report.chosen_index = best_index
        if best_index < 0:
            report.plan_after = plan
            return plan, report

        chosen = report.subplans[best_index]
        optimized = chosen.plan.copy()
        if chosen.best_settings:
            ConfigurationTransformation.apply_settings_in_place(optimized, chosen.best_settings)
            for job_name, settings in chosen.best_settings.items():
                optimized.record(
                    ConfigurationTransformation.application_for(job_name, settings).as_applied()
                )
        report.plan_after = optimized.copy()
        return optimized, report

    # ----------------------------------------------------------- enumeration
    def enumerate_subplans(
        self,
        plan: Plan,
        unit: OptimizationUnit,
        transformations: Sequence[Transformation],
    ) -> List[SubplanRecord]:
        """Exhaustively enumerate the unit's subplans (configuration excluded)."""
        structural = [t for t in transformations if t.name != ConfigurationTransformation.name]
        initial = SubplanRecord(plan=plan.copy(), transformations=())
        seen = {plan.signature()}
        results: List[SubplanRecord] = [initial]
        frontier: List[Tuple[SubplanRecord, Tuple[str, ...]]] = [(initial, unit.jobs)]
        depth = 0

        while frontier and depth < MAX_ENUMERATION_DEPTH and len(results) < MAX_SUBPLANS_PER_UNIT:
            next_frontier: List[Tuple[SubplanRecord, Tuple[str, ...]]] = []
            for record, unit_jobs in frontier:
                for transformation in structural:
                    for application in transformation.find_applications(record.plan, unit_jobs):
                        new_plan = transformation.apply(record.plan, application)
                        signature = new_plan.signature()
                        if signature in seen:
                            continue
                        seen.add(signature)
                        new_unit_jobs = self._updated_unit_jobs(record.plan, new_plan, unit_jobs)
                        new_record = SubplanRecord(
                            plan=new_plan,
                            transformations=record.transformations + (transformation.name,),
                        )
                        results.append(new_record)
                        next_frontier.append((new_record, new_unit_jobs))
                        if len(results) >= MAX_SUBPLANS_PER_UNIT:
                            break
                    if len(results) >= MAX_SUBPLANS_PER_UNIT:
                        break
                if len(results) >= MAX_SUBPLANS_PER_UNIT:
                    break
            frontier = next_frontier
            depth += 1
        return results

    @staticmethod
    def _updated_unit_jobs(old_plan: Plan, new_plan: Plan, unit_jobs: Tuple[str, ...]) -> Tuple[str, ...]:
        old_names = set(old_plan.workflow.job_names)
        new_names = set(new_plan.workflow.job_names)
        created = [name for name in new_plan.workflow.job_names if name not in old_names]
        surviving = [name for name in unit_jobs if name in new_names]
        return tuple(surviving + [name for name in created if name not in surviving])

    # ------------------------------------------------------------- costing
    def _cost_with_configurations(
        self,
        plan: Plan,
        unit_jobs: Sequence[str],
    ) -> Tuple[float, Dict[str, Mapping[str, object]], int]:
        baseline_estimate = self.costs.estimate_workflow(plan.workflow)
        if baseline_estimate.cost_basis != "whatif" or not self.optimize_configurations:
            return baseline_estimate.total_s, {}, 0

        jobs_to_tune = [name for name in unit_jobs if plan.workflow.has_job(name)]
        if not jobs_to_tune:
            return baseline_estimate.total_s, {}, 0

        space, initial = self._joint_space(plan, jobs_to_tune)
        if not space.dimensions:
            return baseline_estimate.total_s, {}, 0

        def objective(point: Mapping[str, object]) -> float:
            candidate = plan.copy()
            ConfigurationTransformation.apply_settings_in_place(
                candidate, self._split_point(point)
            )
            return self.costs.estimate_workflow(candidate.workflow).total_s

        result = self.rrs.search(space, objective, initial_point=initial, rng=self._rng.fork(str(sorted(jobs_to_tune))))
        best_settings = self._split_point(result.best_point)
        best_cost = min(result.best_value, baseline_estimate.total_s)
        if result.best_value > baseline_estimate.total_s:
            best_settings = {}
        return best_cost, best_settings, result.evaluations

    def _joint_space(self, plan: Plan, job_names: Sequence[str]) -> Tuple[ConfigurationSpace, Dict[str, object]]:
        dimensions: List[ConfigDimension] = []
        initial: Dict[str, object] = {}
        for job_name in job_names:
            job_space = ConfigurationTransformation.space_for_job(plan, job_name, self.cluster)
            current = plan.workflow.job(job_name).job.config.as_dict()
            for dim in job_space.dimensions:
                prefixed = ConfigDimension(
                    name=f"{job_name}::{dim.name}", kind=dim.kind, low=dim.low, high=dim.high
                )
                dimensions.append(prefixed)
                if dim.name in current:
                    initial[prefixed.name] = current[dim.name]
        return ConfigurationSpace(dimensions=dimensions), initial

    @staticmethod
    def _split_point(point: Mapping[str, object]) -> Dict[str, Dict[str, object]]:
        by_job: Dict[str, Dict[str, object]] = {}
        for name, value in point.items():
            if "::" not in name:
                continue
            job_name, param = name.split("::", 1)
            by_job.setdefault(job_name, {})[param] = value
        return by_job


def record_unit_jobs(record: SubplanRecord, unit: OptimizationUnit) -> Tuple[str, ...]:
    """Unit job names that still exist in a candidate subplan, plus merges.

    Merged jobs are resolved through the plan's explicit merge provenance
    (:meth:`~repro.core.plan.Plan.merge_sources`, recorded by the packing
    transformations): any job of the candidate plan that absorbed a unit job
    keeps the unit's configuration search focused on the right jobs — no
    job-name parsing involved.
    """
    names = set(record.plan.workflow.job_names)
    surviving = [name for name in unit.jobs if name in names]
    # Unit jobs may themselves be merges from an earlier phase, so membership
    # is checked at the granularity of original job names on both sides.
    unit_sources = set()
    for name in unit.jobs:
        unit_sources.update(record.plan.merge_sources(name))
    for name in record.plan.workflow.job_names:
        if name in surviving:
            continue
        sources = record.plan.merge_sources(name)
        if len(sources) > 1 and any(source in unit_sources for source in sources):
            surviving.append(name)
    return tuple(surviving)
