"""Stubby's two-phase greedy enumeration and search strategy (paper §4).

The search traverses the workflow graph twice.  In the first phase the
Vertical-group transformations (intra- and inter-job vertical packing, plus
the partition-function transformation) are applied within dynamically
generated optimization units; in the second phase the Horizontal-group
transformations are applied the same way.  Within each unit:

1. the unit is split into *independent sub-units* — connected components of
   jobs sharing dataset vertices
   (:meth:`~repro.core.optimization_unit.OptimizationUnitGenerator.independent_subunits`)
   — whose candidate subplans rewrite disjoint parts of the graph;
2. all combinations of the (non-configuration) transformations applicable to
   each sub-unit's jobs are enumerated exhaustively, producing the sub-unit's
   candidate subplans ``p1..pn`` (Figure 10);
3. Recursive Random Search finds the best configuration transformation for
   every candidate subplan, using the shared cost service to cost each
   sampled configuration;
4. per sub-unit, the candidate with the lowest estimated cost is retained
   (ties broken by candidate index); the chosen rewrites are composed in
   sub-unit order and the search moves to the next unit.

Steps 2–3 are independent across candidates and sub-units, so they fan out
on a pluggable :class:`~repro.core.parallel.ExecutionBackend`: with several
candidates in flight the backend maps whole candidate costings; with a
single candidate it maps the RRS sample generations instead (the batched
``objective_batch`` of :class:`~repro.core.rrs.RecursiveRandomSearch`).
Every backend produces bit-identical decisions — same chosen subplans, same
settings, same costs — at any worker count: candidates derive their RNG from
a stable key, results are consumed in enumeration order, and the cost
service guarantees estimates identical with or without cache reuse.  See
``docs/search.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster import ClusterSpec
from repro.common.faults import fault_site
from repro.common.rng import DeterministicRNG
from repro.core.budget import UNBOUNDED, TimeBudget
from repro.core.costing import (
    CostService,
    CostServiceStats,
    cost_service_side_channel,
    ensure_cost_service,
)
from repro.core.decision_cache import (
    DecisionCache,
    SubunitChoice,
    UnitDecision,
    dataset_annotation_key,
    ensure_decision_cache,
    job_annotations_key,
    partition_function_key,
    rrs_search_key,
    transformation_key,
)
from repro.core.optimization_unit import OptimizationUnit, OptimizationUnitGenerator
from repro.core.subresults import SubResultUnavailableError
from repro.core.parallel import BackendSession, ExecutionBackend, resolve_backend
from repro.core.plan import Plan
from repro.core.rrs import RecursiveRandomSearch
from repro.core.transformations.base import Transformation, TransformationApplication
from repro.core.transformations.configuration import ConfigurationTransformation
from repro.mapreduce.config import ConfigDimension, ConfigurationSpace
from repro.whatif import model as whatif_model
from repro.whatif.service import cluster_cache_key

#: Caps keeping the exhaustive enumeration inside a unit bounded; in practice
#: (paper §4.2) the number of unique subplans per unit is small.
MAX_SUBPLANS_PER_UNIT = 24
MAX_ENUMERATION_DEPTH = 6
#: Cap on the composed cross-product combinations scored when a unit was
#: split into several independent sub-units.
MAX_COMPOSED_COMBINATIONS = 64


def plan_decision_fingerprint(plan: Plan) -> Tuple:
    """The canonical identity of an optimizer's decision for one plan.

    ``plan.signature()`` captures structure only; the fingerprint adds every
    job's chosen configuration, so two plans compare equal exactly when the
    optimizer made byte-identical decisions.  This is the value the
    determinism contract is stated in — replay verification, the experiment
    orchestration tests, and the planning service's bit-identity battery all
    compare it.
    """
    return (
        plan.signature(),
        tuple(
            sorted(
                (vertex.name, tuple(sorted(vertex.job.config.as_dict().items())))
                for vertex in plan.workflow.jobs
            )
        ),
    )


@dataclass
class SubplanRecord:
    """One candidate subplan enumerated inside an optimization unit."""

    plan: Plan
    transformations: Tuple[str, ...]
    #: The exact application chain that produced this candidate from the
    #: unit's input plan; the search replays it when composing the chosen
    #: rewrites of several independent sub-units.
    applications: Tuple[TransformationApplication, ...] = ()
    estimated_cost: float = float("inf")
    best_settings: Dict[str, Mapping[str, object]] = field(default_factory=dict)
    rrs_evaluations: int = 0
    #: Exact cost-service activity of costing *this* candidate (queries, job
    #: cache hits, re-costed jobs), captured through a per-candidate
    #: attribution sink — correct even when candidates run concurrently.
    cost_stats: CostServiceStats = field(default_factory=CostServiceStats)


@dataclass
class UnitReport:
    """Everything the search did inside one optimization (sub-)unit."""

    unit: OptimizationUnit
    phase: str
    subplans: List[SubplanRecord] = field(default_factory=list)
    chosen_index: int = -1
    #: Cost-service activity attributed to this unit: workflow-level what-if
    #: queries issued, job estimates served from the cache, and jobs that
    #: actually had to be re-costed.  Sums of the explicit per-candidate
    #: deltas (:attr:`SubplanRecord.cost_stats`), not an ambient window —
    #: so the attribution is exact under any execution backend.
    cost_queries: int = 0
    job_cache_hits: int = 0
    jobs_recosted: int = 0
    #: What-if queries spent scoring composed sub-unit combinations (set on
    #: the first report of a split unit; zero for unsplit units).
    composition_queries: int = 0
    #: Composed index-vector combinations considered for a split unit (set
    #: on the first report, like ``composition_queries``).  Content-identical
    #: compositions are costed once, so ``composition_queries`` can be lower.
    composition_combinations: int = 0
    #: Decision-cache activity of this unit (set on the first report of the
    #: unit's group): 1 hit when the whole unit search was skipped and the
    #: recorded decision replayed, 1 miss when the search ran (and its
    #: outcome was recorded), 0/0 when the decision cache is disabled.
    unit_decision_hits: int = 0
    unit_decision_misses: int = 0
    #: Hits served by a decision another origin recorded (a different
    #: experiment cell or a warm-started persisted decision file).
    cross_origin_decision_hits: int = 0
    #: The full plan before and after this unit was optimized.  The
    #: differential-verification harness replays ``plan_after`` to bisect an
    #: output divergence down to the single unit — and therefore the single
    #: set of transformation applications — that introduced it.
    #: ``plan_before`` is a *reference* (the search never mutates a plan in
    #: place, so no copy is needed); ``plan_after`` is an isolated copy.
    plan_before: Optional[Plan] = None
    plan_after: Optional[Plan] = None

    @property
    def chosen(self) -> Optional[SubplanRecord]:
        """The subplan that was retained for this unit."""
        if 0 <= self.chosen_index < len(self.subplans):
            return self.subplans[self.chosen_index]
        return None

    @property
    def chosen_transformations(self) -> Tuple[str, ...]:
        """Names of the structural transformations applied in this unit."""
        chosen = self.chosen
        return chosen.transformations if chosen is not None else ()


@dataclass
class _CostTask:
    """One candidate costing dispatched to the execution backend."""

    index: int
    subunit_index: int
    candidate_index: int
    record: SubplanRecord
    unit_jobs: Tuple[str, ...]
    #: Stable identity of this candidate within the unit — the basis of its
    #: forked RNG stream, so the stream does not depend on which worker (or
    #: how many workers) costs the candidate.
    rng_key: str


class StubbySearch:
    """Greedy, unit-by-unit plan search over the transformation space."""

    def __init__(
        self,
        cluster: ClusterSpec,
        vertical_transformations: Sequence[Transformation],
        horizontal_transformations: Sequence[Transformation],
        rrs: Optional[RecursiveRandomSearch] = None,
        seed: int = 17,
        optimize_configurations: bool = True,
        cost_service: Optional[CostService] = None,
        backend=None,
        decision_cache: Optional[DecisionCache] = None,
    ) -> None:
        self.cluster = cluster
        #: All cost queries go through the shared (memoizing) service; the
        #: underlying engine stays reachable for cold/diagnostic estimates.
        self.costs = ensure_cost_service(cluster, cost_service)
        self.whatif = self.costs.engine
        self.vertical_transformations = list(vertical_transformations)
        self.horizontal_transformations = list(horizontal_transformations)
        self.rrs = rrs or RecursiveRandomSearch(
            exploration_samples=10, exploitation_samples=8, restarts=1, seed=seed
        )
        self.optimize_configurations = optimize_configurations
        #: Where candidate costings and RRS sample generations execute; a
        #: backend instance, a spec string ("process:4"), or None (the
        #: STUBBY_SEARCH_BACKEND environment variable, default serial).
        self.backend: ExecutionBackend = resolve_backend(backend)
        self.seed = seed
        self._rng = DeterministicRNG(seed)
        #: Memoized unit decisions (:mod:`repro.core.decision_cache`): a unit
        #: whose content key was solved before replays its recorded rewrite
        #: chain instead of searching.  Shared in by the optimizer/harness
        #: for cross-run and cross-cell reuse; constructed fresh (and
        #: possibly warm-started from STUBBY_DECISION_CACHE) otherwise.
        self.decisions = ensure_decision_cache(cluster, decision_cache)
        self._cluster_key = cluster_cache_key(cluster)
        #: Cooperative deadline for the *current* ``run()``; checked between
        #: candidate evaluations (never mid-rewrite).  Per-run state — like
        #: the RNG, one search instance serves one run at a time.
        self._budget: TimeBudget = UNBOUNDED
        #: Serving-ladder rung 1: replay memoized decisions only.  A unit
        #: whose content key has a recorded decision replays it exactly; a
        #: unit without one is left untouched — no enumeration, no RRS, and
        #: crucially no decision store (a skipped search must never record
        #: the no-op as that unit's optimal decision).
        self.replay_only = False

    # ------------------------------------------------------------------ API
    def run(
        self,
        plan: Plan,
        phases: Sequence[str] = ("vertical", "horizontal"),
        budget: Optional[TimeBudget] = None,
    ) -> Tuple[Plan, List[UnitReport]]:
        """Run the requested phases over the plan; returns the optimized plan.

        ``budget`` bounds this run cooperatively: the search raises
        :class:`~repro.common.errors.DeadlineExceeded` at the next check
        point after expiry, leaving every already-composed rewrite valid.
        """
        previous = self._budget
        self._budget = budget if budget is not None else UNBOUNDED
        try:
            reports: List[UnitReport] = []
            current = plan
            for phase in phases:
                transformations = (
                    self.vertical_transformations if phase == "vertical" else self.horizontal_transformations
                )
                current, phase_reports = self._run_phase(current, transformations, phase)
                reports.extend(phase_reports)
            return current, reports
        finally:
            self._budget = previous

    # ---------------------------------------------------------------- phase
    def _run_phase(
        self,
        plan: Plan,
        transformations: Sequence[Transformation],
        phase: str,
    ) -> Tuple[Plan, List[UnitReport]]:
        generator = OptimizationUnitGenerator()
        reports: List[UnitReport] = []
        current = plan
        while True:
            self._budget.check("search.unit")
            unit = generator.next_unit(current)
            if unit is None:
                break
            subunits = generator.independent_subunits(current, unit)
            current, unit_reports = self.optimize_units(current, subunits, transformations, phase)
            reports.extend(unit_reports)
            generator.mark_handled(current, unit)
        return current, reports

    # ----------------------------------------------------------------- unit
    def optimize_unit(
        self,
        plan: Plan,
        unit: OptimizationUnit,
        transformations: Sequence[Transformation],
        phase: str = "vertical",
    ) -> Tuple[Plan, UnitReport]:
        """Enumerate, cost, and pick the best subplan for one unit.

        Single-unit convenience over :meth:`optimize_units` (no sub-unit
        splitting), used by the Figure 14 deep dive and the unit-level tests.
        """
        optimized, reports = self.optimize_units(plan, [unit], transformations, phase)
        return optimized, reports[0]

    def optimize_units(
        self,
        plan: Plan,
        subunits: Sequence[OptimizationUnit],
        transformations: Sequence[Transformation],
        phase: str = "vertical",
    ) -> Tuple[Plan, List[UnitReport]]:
        """Optimize one unit's independent sub-units: memoized search.

        With the decision cache enabled, the unit's content key is looked up
        first: a hit **replays** the recorded rewrite chain through
        :meth:`_apply_candidate` — no enumeration, no RRS, no costing — and
        is bit-identical to a fresh search by the key's construction
        (``verify_hits`` mode asserts it on every hit).  A miss runs the
        full search (:meth:`_search_units`) and records the winning
        per-sub-unit chains.
        """
        decisions = self.decisions
        key = None
        origin = None
        if decisions is not None and decisions.enabled:
            key = self._decision_key(plan, subunits, transformations, phase)
            origin = self.costs.current_origin()
            hit = decisions.lookup(key, origin=origin)
            if hit is not None and len(hit[0].choices) == len(subunits):
                decision, cross_origin = hit
                try:
                    replayed = self._replay_decision(
                        plan, subunits, decision, transformations, phase
                    )
                except SubResultUnavailableError:
                    # The recorded chain substitutes a stored sub-result that
                    # is no longer available (evicted, or its backing records
                    # were deleted).  Drop the stale decision and fall through
                    # to a full search — recomputation, never a failed plan.
                    decisions.invalidate_key(key)
                else:
                    replayed[1][0].unit_decision_hits = 1
                    if cross_origin:
                        replayed[1][0].cross_origin_decision_hits = 1
                    if decisions.verify_hits:
                        self._verify_replay(plan, subunits, transformations, phase, replayed[0])
                    return replayed

        if self.replay_only:
            # Rung-1 serving mode: no memoized decision for this unit, so it
            # is served untouched.  Nothing is stored — the unit was never
            # searched, and recording a no-op here would poison later full
            # searches of the same content key.
            reports = []
            for subunit in subunits:
                report = UnitReport(unit=subunit, phase=phase, plan_before=plan)
                report.plan_after = plan.copy()
                reports.append(report)
            if key is not None:
                reports[0].unit_decision_misses = 1
            return plan, reports

        optimized, reports = self._search_units(plan, subunits, transformations, phase)
        if key is not None:
            reports[0].unit_decision_misses = 1
            decisions.store(key, self._record_decision(reports), origin=origin)
        return optimized, reports

    def _search_units(
        self,
        plan: Plan,
        subunits: Sequence[OptimizationUnit],
        transformations: Sequence[Transformation],
        phase: str = "vertical",
    ) -> Tuple[Plan, List[UnitReport]]:
        """Enumerate, cost, choose, and compose over independent sub-units.

        All candidates of all sub-units are costed through the execution
        backend.  A lone sub-unit keeps the classic choice (cheapest
        candidate, ties by index); a split unit makes a *joint* choice over
        composed candidate combinations (:meth:`_choose_composed`) and then
        composes the winning rewrites in sub-unit order by replaying each
        chosen candidate's application chain (the sub-units touch disjoint
        vertices, so replay order cannot change any individual rewrite).
        """
        tasks: List[_CostTask] = []
        per_subunit: List[List[SubplanRecord]] = []
        for subunit_index, subunit in enumerate(subunits):
            candidates = self.enumerate_subplans(plan, subunit, transformations)
            per_subunit.append(candidates)
            for candidate_index, record in enumerate(candidates):
                tasks.append(
                    _CostTask(
                        index=len(tasks),
                        subunit_index=subunit_index,
                        candidate_index=candidate_index,
                        record=record,
                        unit_jobs=record_unit_jobs(record, subunit),
                        rng_key=(
                            f"{phase}/{'|'.join(subunit.producers)}"
                            f"/candidate-{candidate_index}"
                        ),
                    )
                )

        self._cost_tasks(tasks)

        if len(subunits) == 1:
            return self._choose_single(plan, subunits[0], per_subunit[0], phase)
        return self._choose_composed(plan, subunits, per_subunit, transformations, phase)

    # ----------------------------------------------------- decision memoization
    def _decision_key(
        self,
        plan: Plan,
        subunits: Sequence[OptimizationUnit],
        transformations: Sequence[Transformation],
        phase: str,
    ) -> Tuple:
        """Everything that determines this unit's argmin, as a hashable tuple.

        Workflow cost is a per-level makespan — a *max* — so a unit's best
        rewrite can depend on jobs outside the unit; the key therefore pins
        the **whole plan's** content (per-vertex local keys, configurations,
        partitioners, annotations, dataset annotations, merge lineage,
        structural signature), the unit decomposition, and every search knob
        (RRS parameters including the seed, the transformation set with its
        options, the enumeration caps, the cost-model version, the cluster).
        Equal keys are decision-equivalent by construction; any input change
        produces a miss, never a stale hit.
        """
        workflow = plan.workflow
        job_parts = []
        for vertex in workflow.jobs:
            job = vertex.job
            job_parts.append(
                (
                    vertex.name,
                    self.whatif.vertex_content_key(vertex),
                    tuple(sorted(job.config.as_dict().items())),
                    partition_function_key(job.effective_partitioner),
                    job_annotations_key(vertex.annotations),
                )
            )
        dataset_parts = []
        for dataset_vertex in workflow.datasets:
            dataset = dataset_vertex.dataset
            dataset_parts.append(
                (
                    dataset_vertex.name,
                    dataset_annotation_key(dataset_vertex.annotation),
                    None
                    if dataset is None
                    else (dataset.logical_bytes, dataset.logical_records),
                )
            )
        return (
            ("unit", tuple((subunit.producers, subunit.consumers) for subunit in subunits)),
            ("jobs", tuple(job_parts)),
            ("datasets", tuple(dataset_parts)),
            ("lineage", tuple(sorted(plan.merge_lineage.items()))),
            ("structure", plan.signature()),
            (
                "knobs",
                phase,
                self.seed,
                self.optimize_configurations,
                rrs_search_key(self.rrs),
                tuple(transformation_key(t) for t in transformations),
                (MAX_SUBPLANS_PER_UNIT, MAX_ENUMERATION_DEPTH, MAX_COMPOSED_COMBINATIONS),
                # Read through the module so a version bump (or a test
                # monkeypatching it) invalidates in-memory keys too.
                whatif_model.COST_MODEL_VERSION,
                self._cluster_key,
            ),
        )

    def _replay_decision(
        self,
        plan: Plan,
        subunits: Sequence[OptimizationUnit],
        decision: UnitDecision,
        transformations: Sequence[Transformation],
        phase: str,
    ) -> Tuple[Plan, List[UnitReport]]:
        """Reproduce a recorded decision without searching.

        Each sub-unit's stored chain is replayed through the same
        :meth:`_apply_candidate` the composed search path uses, so the
        resulting plan — structure, configurations, recorded application
        history — is bit-identical to the one the original search returned.
        The reports carry one synthetic :class:`SubplanRecord` (the chosen
        one) each; counters that measure search work stay zero, because no
        search work happened.
        """
        current = plan
        reports: List[UnitReport] = []
        for subunit, choice in zip(subunits, decision.choices):
            report = UnitReport(unit=subunit, phase=phase, plan_before=current)
            record = SubplanRecord(
                plan=current,
                transformations=choice.transformations,
                applications=choice.applications,
                estimated_cost=choice.estimated_cost,
                best_settings=choice.settings_dict(),
            )
            current = self._apply_candidate(current, record, transformations)
            report.subplans = [record]
            report.chosen_index = 0
            report.plan_after = current.copy()
            reports.append(report)
        return current, reports

    @staticmethod
    def _record_decision(reports: Sequence[UnitReport]) -> UnitDecision:
        """The searched outcome as a storable decision: one choice per report.

        Both choice paths emit exactly one report per sub-unit, in sub-unit
        order; a report that retained nothing stores the no-op choice.
        """
        choices = []
        for report in reports:
            chosen = report.chosen
            if chosen is None:
                choices.append(SubunitChoice.no_op())
            else:
                choices.append(SubunitChoice.from_record(chosen))
        return UnitDecision(choices=tuple(choices))

    def _verify_replay(
        self,
        plan: Plan,
        subunits: Sequence[OptimizationUnit],
        transformations: Sequence[Transformation],
        phase: str,
        replayed: Plan,
    ) -> None:
        """Debug mode: re-run the full search and assert replay identity.

        The extra search pollutes wall-clock and cost counters (that is the
        point of a debug mode); decisions must not diverge, or the key is
        missing an input — a bug worth crashing on.
        """
        searched, _reports = self._search_units(plan, subunits, transformations, phase)
        if self._plan_decision_fingerprint(searched) != self._plan_decision_fingerprint(replayed):
            raise RuntimeError(
                "decision cache replay diverged from a fresh search for unit "
                f"{[s.producers for s in subunits]!r} in phase {phase!r}; "
                "the decision key is missing an input that affects the argmin"
            )

    @staticmethod
    def _plan_decision_fingerprint(plan: Plan) -> Tuple:
        """Structure plus per-job configurations (signature excludes configs)."""
        return plan_decision_fingerprint(plan)

    def _choose_single(
        self,
        plan: Plan,
        unit: OptimizationUnit,
        candidates: List[SubplanRecord],
        phase: str,
    ) -> Tuple[Plan, List[UnitReport]]:
        """The unsplit-unit choice: lowest estimated cost, ties by index."""
        report = UnitReport(unit=unit, phase=phase, plan_before=plan)
        best_index = -1
        best_cost = float("inf")
        for index, record in enumerate(candidates):
            report.subplans.append(record)
            if record.estimated_cost < best_cost:
                best_cost = record.estimated_cost
                best_index = index
        self._attribute_unit_stats(report)

        report.chosen_index = best_index
        if best_index < 0:
            report.plan_after = plan
            return plan, [report]

        chosen = report.subplans[best_index]
        optimized = chosen.plan.copy()
        self._apply_chosen_settings(optimized, chosen)
        report.plan_after = optimized.copy()
        return optimized, [report]

    def _choose_composed(
        self,
        plan: Plan,
        subunits: Sequence[OptimizationUnit],
        per_subunit: List[List[SubplanRecord]],
        transformations: Sequence[Transformation],
        phase: str,
    ) -> Tuple[Plan, List[UnitReport]]:
        """Joint choice over a split unit's sub-unit candidates.

        Workflow cost is a per-level makespan — a *max*, not a sum — so the
        best candidate of one sub-unit can depend on what the others chose
        (a rewrite may look cost-neutral at the base plan simply because a
        neighbouring sub-unit's job dominates the level).  Choosing each
        sub-unit independently would discard such rewrites, so instead the
        (bounded, deterministic) cross-product of per-sub-unit candidates
        is composed onto the plan and re-scored with single what-if
        estimates — cheap against the warm incremental cache, since the
        expensive per-candidate RRS tuning already ran, fanned out, above.
        Ties prefer the lexicographically smallest index vector, keeping
        the choice backend-independent.

        Content-identical compositions are costed once: different index
        vectors can denote the same composed plan (two candidates of one
        sub-unit may share a structural signature and chosen settings), so
        each combination's *content key* — the per-candidate
        ``(plan.signature(), settings)`` pairs — memoizes its cost within
        the unit.  Duplicates reuse the memoized cost and, comparing with
        strict ``<``, can never displace the (earlier, lexicographically
        smaller) first occurrence — the argmin is unchanged.
        """
        combos = self._candidate_combinations(per_subunit)
        candidate_keys = [
            [
                (
                    record.plan.signature(),
                    tuple(
                        (job, tuple(sorted(settings.items())))
                        for job, settings in sorted(record.best_settings.items())
                    ),
                )
                for record in candidates
            ]
            for candidates in per_subunit
        ]
        composition_stats = CostServiceStats()
        best_combo = combos[0]
        best_cost = float("inf")
        combo_costs: Dict[Tuple, float] = {}
        with self.costs.attribute_to(composition_stats):
            for combo in combos:
                self._budget.check("search.compose")
                content = tuple(
                    candidate_keys[subunit_index][candidate_index]
                    for subunit_index, candidate_index in enumerate(combo)
                )
                cost = combo_costs.get(content)
                if cost is None:
                    composed = plan
                    for subunit_index, candidate_index in enumerate(combo):
                        composed = self._apply_candidate(
                            composed, per_subunit[subunit_index][candidate_index], transformations
                        )
                    cost = self.costs.estimate_workflow(composed.workflow).total_s
                    combo_costs[content] = cost
                if cost < best_cost:
                    best_cost = cost
                    best_combo = combo

        current = plan
        reports: List[UnitReport] = []
        for subunit_index, subunit in enumerate(subunits):
            report = UnitReport(unit=subunit, phase=phase, plan_before=current)
            report.subplans = list(per_subunit[subunit_index])
            self._attribute_unit_stats(report)
            report.chosen_index = best_combo[subunit_index]
            chosen = report.subplans[report.chosen_index]
            current = self._apply_candidate(current, chosen, transformations)
            report.plan_after = current.copy()
            reports.append(report)
        reports[0].composition_queries = composition_stats.queries
        reports[0].composition_combinations = len(combos)
        return current, reports

    @staticmethod
    def _attribute_unit_stats(report: UnitReport) -> None:
        """Per-unit aggregates: explicit sums of the per-candidate deltas."""
        report.cost_queries = sum(r.cost_stats.queries for r in report.subplans)
        report.job_cache_hits = sum(r.cost_stats.job_cache_hits for r in report.subplans)
        report.jobs_recosted = sum(r.cost_stats.job_cache_misses for r in report.subplans)

    def _apply_candidate(
        self,
        plan: Plan,
        record: SubplanRecord,
        transformations: Sequence[Transformation],
    ) -> Plan:
        """Apply one candidate's rewrite chain and settings onto ``plan``.

        Never mutates ``plan``: replay produces fresh plans, and a
        settings-only candidate is applied to a copy.  A candidate with
        neither applications nor settings returns ``plan`` unchanged.
        """
        if record.applications:
            out = self._replay_applications(plan, record.applications, transformations)
        elif record.best_settings:
            out = plan.copy()
        else:
            return plan
        self._apply_chosen_settings(out, record)
        return out

    @staticmethod
    def _apply_chosen_settings(optimized: Plan, chosen: SubplanRecord) -> None:
        if not chosen.best_settings:
            return
        ConfigurationTransformation.apply_settings_in_place(optimized, chosen.best_settings)
        for job_name, settings in chosen.best_settings.items():
            optimized.record(
                ConfigurationTransformation.application_for(job_name, settings).as_applied()
            )

    @staticmethod
    def _candidate_combinations(per_subunit: List[List[SubplanRecord]]) -> List[Tuple[int, ...]]:
        """Index vectors to score, in lexicographic order, bounded.

        The full cross-product is used when it fits under
        :data:`MAX_COMPOSED_COMBINATIONS`; otherwise shortlists are shrunk
        deterministically by dropping the worst at-base candidate (highest
        estimated cost, ties by highest index — never the untransformed
        index 0) from the largest shortlist until the product fits.
        """
        shortlists = [list(range(len(candidates))) for candidates in per_subunit]

        def product_size() -> int:
            size = 1
            for shortlist in shortlists:
                size *= len(shortlist)
            return size

        while product_size() > MAX_COMPOSED_COMBINATIONS:
            largest = max(range(len(shortlists)), key=lambda i: len(shortlists[i]))
            droppable = [
                index for index in shortlists[largest] if index != 0
            ]
            worst = max(
                droppable,
                key=lambda index: (per_subunit[largest][index].estimated_cost, index),
            )
            shortlists[largest].remove(worst)

        combos: List[Tuple[int, ...]] = [()]
        for shortlist in shortlists:
            combos = [combo + (index,) for combo in combos for index in shortlist]
        return combos

    # --------------------------------------------------------- task fan-out
    def _cost_tasks(self, tasks: List[_CostTask]) -> None:
        """Cost every task on the backend, writing results onto the records.

        Granularity is adaptive: with several candidates, whole candidate
        costings are mapped across workers (each worker runs its RRS
        serially); with a single candidate, the backend instead maps the
        candidate's RRS sample *generations* point-by-point, so even
        one-candidate units parallelize.  Both placements produce identical
        values, so the choice affects wall-clock only.
        """
        if not tasks:
            return

        def worker_fn(request):
            kind = request[0]
            if kind == "candidate":
                return self._cost_candidate(tasks[request[1]])
            if kind == "point":
                return self._evaluate_point(tasks[request[1]], request[2])
            raise ValueError(f"unknown search work request {request[0]!r}")

        side = cost_service_side_channel(self.costs)
        results: List[Tuple] = []
        with self.backend.session(worker_fn, side) as session:
            if len(tasks) == 1:
                results.append(self._cost_candidate(tasks[0], point_session=session))
            else:
                results = session.run([("candidate", task.index) for task in tasks])

        for task, result in zip(tasks, results):
            cost, settings, evaluations, stats = result
            record = task.record
            record.estimated_cost = cost
            record.best_settings = settings
            record.rrs_evaluations = evaluations
            record.cost_stats = stats

    def _cost_candidate(
        self,
        task: _CostTask,
        point_session: Optional[BackendSession] = None,
    ) -> Tuple[float, Dict[str, Mapping[str, object]], int, CostServiceStats]:
        """Cost one candidate (baseline estimate + RRS configuration search)."""
        self._budget.check("search.candidate")
        fault_site("search.candidate", rng_key=task.rng_key)
        stats = CostServiceStats()
        with self.costs.attribute_to(stats):
            cost, settings, evaluations = self._cost_with_configurations(task, point_session)
        return cost, settings, evaluations, stats

    def _evaluate_point(self, task: _CostTask, point: Mapping[str, object]) -> float:
        """Objective value of one RRS configuration sample for a candidate.

        The hottest loop of the whole search: one CoW plan clone per sample,
        privatizing only the jobs whose configuration the sample moves.
        (Also the finest-grained deadline check point — an unbounded budget
        costs one attribute read here.)
        """
        self._budget.check("search.rrs_point")
        candidate = task.record.plan.copy()
        ConfigurationTransformation.apply_settings_in_place(candidate, self._split_point(point))
        return self.costs.estimate_workflow(candidate.workflow).total_s

    # ----------------------------------------------------------- enumeration
    def enumerate_subplans(
        self,
        plan: Plan,
        unit: OptimizationUnit,
        transformations: Sequence[Transformation],
    ) -> List[SubplanRecord]:
        """Exhaustively enumerate the unit's subplans (configuration excluded).

        Candidate plans are copy-on-write clones: each application privatizes
        only the vertices its rewrite touches, so enumerating (and later
        re-costing) a candidate costs O(vertices touched), not O(workflow).
        """
        structural = [t for t in transformations if t.name != ConfigurationTransformation.name]
        initial = SubplanRecord(plan=plan.copy(), transformations=())
        seen = {plan.signature()}
        results: List[SubplanRecord] = [initial]
        frontier: List[Tuple[SubplanRecord, Tuple[str, ...]]] = [(initial, unit.jobs)]
        depth = 0

        while frontier and depth < MAX_ENUMERATION_DEPTH and len(results) < MAX_SUBPLANS_PER_UNIT:
            self._budget.check("search.enumerate")
            next_frontier: List[Tuple[SubplanRecord, Tuple[str, ...]]] = []
            for record, unit_jobs in frontier:
                for transformation in structural:
                    for application in transformation.find_applications(record.plan, unit_jobs):
                        try:
                            new_plan = transformation.apply(record.plan, application)
                        except SubResultUnavailableError:
                            # A concurrent eviction can retract a stored
                            # sub-result between find_applications and apply;
                            # the candidate simply disappears and the
                            # recompute plan stays in the pool.
                            continue
                        signature = new_plan.signature()
                        if signature in seen:
                            continue
                        seen.add(signature)
                        new_unit_jobs = self._updated_unit_jobs(record.plan, new_plan, unit_jobs)
                        new_record = SubplanRecord(
                            plan=new_plan,
                            transformations=record.transformations + (transformation.name,),
                            applications=record.applications + (application,),
                        )
                        results.append(new_record)
                        next_frontier.append((new_record, new_unit_jobs))
                        if len(results) >= MAX_SUBPLANS_PER_UNIT:
                            break
                    if len(results) >= MAX_SUBPLANS_PER_UNIT:
                        break
                if len(results) >= MAX_SUBPLANS_PER_UNIT:
                    break
            frontier = next_frontier
            depth += 1
        return results

    @staticmethod
    def _updated_unit_jobs(old_plan: Plan, new_plan: Plan, unit_jobs: Tuple[str, ...]) -> Tuple[str, ...]:
        old_names = set(old_plan.workflow.job_names)
        new_names = set(new_plan.workflow.job_names)
        created = [name for name in new_plan.workflow.job_names if name not in old_names]
        surviving = [name for name in unit_jobs if name in new_names]
        return tuple(surviving + [name for name in created if name not in surviving])

    # ----------------------------------------------------------- composition
    @staticmethod
    def _replay_applications(
        plan: Plan,
        applications: Sequence[TransformationApplication],
        transformations: Sequence[Transformation],
    ) -> Plan:
        """Re-apply a chosen candidate's application chain onto ``plan``.

        Used when several independent sub-units each chose a rewrite: the
        chains target disjoint vertex sets, so replaying them sequentially
        reproduces each sub-unit's chosen subplan exactly.
        """
        registry = {t.name: t for t in transformations}
        current = plan
        for application in applications:
            transformation = registry.get(application.transformation)
            if transformation is None:
                raise KeyError(
                    f"cannot replay application of unknown transformation "
                    f"{application.transformation!r}"
                )
            current = transformation.apply(current, application)
        return current

    # ------------------------------------------------------------- costing
    def _cost_with_configurations(
        self,
        task: _CostTask,
        point_session: Optional[BackendSession] = None,
    ) -> Tuple[float, Dict[str, Mapping[str, object]], int]:
        plan = task.record.plan
        baseline_estimate = self.costs.estimate_workflow(plan.workflow)
        if baseline_estimate.cost_basis != "whatif" or not self.optimize_configurations:
            return baseline_estimate.total_s, {}, 0

        jobs_to_tune = [name for name in task.unit_jobs if plan.workflow.has_job(name)]
        if not jobs_to_tune:
            return baseline_estimate.total_s, {}, 0

        space, initial = self._joint_space(plan, jobs_to_tune)
        if not space.dimensions:
            return baseline_estimate.total_s, {}, 0

        if point_session is None:
            def objective_batch(points):
                return [self._evaluate_point(task, point) for point in points]
        else:
            def objective_batch(points):
                return point_session.run(
                    [("point", task.index, dict(point)) for point in points]
                )

        rng = self._rng.fork(f"{task.rng_key}/{','.join(sorted(jobs_to_tune))}")
        result = self.rrs.search(
            space, objective_batch=objective_batch, initial_point=initial, rng=rng
        )
        best_settings = self._split_point(result.best_point)
        best_cost = min(result.best_value, baseline_estimate.total_s)
        if result.best_value > baseline_estimate.total_s:
            best_settings = {}
        return best_cost, best_settings, result.evaluations

    def _joint_space(self, plan: Plan, job_names: Sequence[str]) -> Tuple[ConfigurationSpace, Dict[str, object]]:
        dimensions: List[ConfigDimension] = []
        initial: Dict[str, object] = {}
        for job_name in job_names:
            job_space = ConfigurationTransformation.space_for_job(plan, job_name, self.cluster)
            current = plan.workflow.job(job_name).job.config.as_dict()
            for dim in job_space.dimensions:
                prefixed = ConfigDimension(
                    name=f"{job_name}::{dim.name}", kind=dim.kind, low=dim.low, high=dim.high
                )
                dimensions.append(prefixed)
                if dim.name in current:
                    initial[prefixed.name] = current[dim.name]
        return ConfigurationSpace(dimensions=dimensions), initial

    @staticmethod
    def _split_point(point: Mapping[str, object]) -> Dict[str, Dict[str, object]]:
        by_job: Dict[str, Dict[str, object]] = {}
        for name, value in point.items():
            if "::" not in name:
                continue
            job_name, param = name.split("::", 1)
            by_job.setdefault(job_name, {})[param] = value
        return by_job


def record_unit_jobs(record: SubplanRecord, unit: OptimizationUnit) -> Tuple[str, ...]:
    """Unit job names that still exist in a candidate subplan, plus merges.

    Merged jobs are resolved through the plan's explicit merge provenance
    (:meth:`~repro.core.plan.Plan.merge_sources`, recorded by the packing
    transformations): any job of the candidate plan that absorbed a unit job
    keeps the unit's configuration search focused on the right jobs — no
    job-name parsing involved.
    """
    names = set(record.plan.workflow.job_names)
    surviving = [name for name in unit.jobs if name in names]
    # Unit jobs may themselves be merges from an earlier phase, so membership
    # is checked at the granularity of original job names on both sides.
    unit_sources = set()
    for name in unit.jobs:
        unit_sources.update(record.plan.merge_sources(name))
    for name in record.plan.workflow.job_names:
        if name in surviving:
            continue
        sources = record.plan.merge_sources(name)
        if len(sources) > 1 and any(source in unit_sources for source in sources):
            surviving.append(name)
    return tuple(surviving)
