"""Unit-level decision memoization: skip the search for solved units.

Stubby's cost is dominated by per-unit candidate enumeration, RRS sampling,
and what-if costing.  Under repeated traffic — experiment cells sharing
workloads, warm-started runs, near-identical user workflows — the *same*
optimization units recur constantly, and the search re-derives the same
answer every time.  :class:`DecisionCache` memoizes the **decision** itself:
a map from a unit *content signature* to the recorded
:class:`~repro.core.transformations.base.TransformationApplication` chain
and chosen configuration settings that won that unit's search.

On a hit, :meth:`~repro.core.search.StubbySearch.optimize_units` skips
enumeration, RRS, and costing entirely and deterministically **replays** the
recorded chain through the existing composition-replay machinery
(:meth:`~repro.core.search.StubbySearch._apply_candidate`); on a miss it
runs the full search and records the winning chain.  The hard contract —
asserted by ``tests/test_decision_cache.py`` and the
``BENCH_decision_cache.json`` benchmark — is that a replayed plan is
**bit-identical** to a freshly searched one: same ``signature()``, same
configurations, same recorded history.

What makes a hit provably decision-equivalent is the key.  The search
(:meth:`~repro.core.search.StubbySearch._decision_key`) derives it from
everything that can influence the unit's argmin:

* the unit subgraph's per-vertex local content keys (the incremental
  :meth:`~repro.whatif.model.WhatIfEngine.vertex_content_key`), plus every
  job's configuration, partitioner, and :class:`JobAnnotations` content;
* input dataset profiles/annotations and the plan's structural signature —
  workflow cost is a per-level *makespan* (a max), so a unit's best rewrite
  can depend on neighbouring jobs, and the whole-plan content must pin it;
* the :class:`~repro.cluster.ClusterSpec` and the search knobs: RRS
  seed/budget, the transformation set (including per-transformation
  options), enumeration caps, and
  :data:`~repro.whatif.model.COST_MODEL_VERSION`.

Change any of these and the key changes — the cache *misses*, never serves
a stale decision (property-tested in ``tests/test_decision_cache.py``).

Concurrency and persistence mirror :class:`~repro.whatif.service.CostService`
exactly: lock-striped LRU shards, atomic stats with thread-local attribution
sinks, fork-worker export-log/merge-on-join, origin-tagged entries for
cross-cell hit attribution, and a versioned pickle snapshot
(``STUBBY_DECISION_CACHE``) written atomically and rejected wholesale on any
version/cluster mismatch.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cluster import ClusterSpec
from repro.common.faults import fault_site

# Content-key helpers live in the leaf module ``repro.core.content_keys``
# (shared with the sub-result catalog); re-exported here because the search
# and the test suite have always imported them from this module.
from repro.core.content_keys import (  # noqa: F401  (re-exports)
    dataset_annotation_key,
    filter_annotation_key,
    job_annotations_key,
    partition_function_key,
    plain_value_key,
    rrs_search_key,
    schema_annotation_key,
    transformation_key,
)
from repro.core.parallel import SideChannel
from repro.core.transformations.base import TransformationApplication
from repro.whatif import model as whatif_model
from repro.whatif.service import (
    CacheLoadReport,
    _RestrictedUnpickler,
    _ShardedCache,
    atomic_pickle_write,
    cluster_cache_key,
)

__all__ = [
    "DECISION_CACHE_ENABLED_ENV_VAR",
    "DECISION_CACHE_FORMAT_VERSION",
    "DECISION_CACHE_PATH_ENV_VAR",
    "DECISION_CACHE_VERIFY_ENV_VAR",
    "DecisionCache",
    "DecisionCacheStats",
    "SubunitChoice",
    "UnitDecision",
    "decision_cache_enabled",
    "decision_cache_side_channel",
    "ensure_decision_cache",
    "resolve_decision_cache_path",
]

#: Default bound on memoized unit decisions; old entries are evicted LRU.
#: Decisions are tiny (a few application records), but unlike cost entries
#: each one short-circuits an entire unit search, so the bound is generous.
DEFAULT_MAX_DECISIONS = 50_000

#: On-disk layout version of persisted decision files; files written under a
#: different layout are rejected wholesale.
DECISION_CACHE_FORMAT_VERSION = 1

#: Environment variable naming a persisted decision-cache path — the
#: decision-level sibling of ``STUBBY_COST_CACHE``, deliberately separate so
#: cost-cache warm starts and decision warm starts can be opted into
#: independently.
DECISION_CACHE_PATH_ENV_VAR = "STUBBY_DECISION_CACHE"

#: Environment kill switch: "0"/"false"/"no"/"off" disables decision
#: memoization everywhere (the nightly equivalence sweep runs both ways).
DECISION_CACHE_ENABLED_ENV_VAR = "STUBBY_DECISION_CACHE_ENABLED"

#: Environment debug switch: truthy values make every cache hit *also* run
#: the full search and assert the replayed plan is bit-identical to the
#: searched one (slow; for debugging and the identity test suite).
DECISION_CACHE_VERIFY_ENV_VAR = "STUBBY_DECISION_CACHE_VERIFY"

#: Cap on decisions a forked worker ships back on merge-on-join.
MAX_EXPORTED_DECISIONS = 5_000

_FALSE_STRINGS = frozenset({"0", "false", "no", "off"})


def _env_flag(env_var: str, default: bool) -> bool:
    raw = os.environ.get(env_var, "").strip().lower()
    if not raw:
        return default
    return raw not in _FALSE_STRINGS


def decision_cache_enabled(enabled: Optional[bool] = None) -> bool:
    """Normalize the enable flag: explicit argument, else environment, else on."""
    if enabled is not None:
        return enabled
    return _env_flag(DECISION_CACHE_ENABLED_ENV_VAR, True)


def decision_cache_verify(verify: Optional[bool] = None) -> bool:
    """Normalize the verify-hits flag: explicit argument, else environment."""
    if verify is not None:
        return verify
    return _env_flag(DECISION_CACHE_VERIFY_ENV_VAR, False)


def resolve_decision_cache_path(path: Optional[str]) -> Optional[str]:
    """Normalize a decision-cache path: explicit path, else the environment.

    ``None`` consults :data:`DECISION_CACHE_PATH_ENV_VAR`; an empty string
    (explicit or from the environment) means "no persistence".
    """
    if path is not None:
        return path or None
    return os.environ.get(DECISION_CACHE_PATH_ENV_VAR, "").strip() or None


@dataclass(frozen=True)
class SubunitChoice:
    """The winning rewrite of one independent sub-unit.

    Everything :meth:`~repro.core.search.StubbySearch._apply_candidate`
    needs to reproduce the chosen candidate without searching: the
    application chain, the RRS-chosen settings (stored as sorted plain
    tuples so the choice is hashable and picklable), and the recorded cost.
    """

    transformations: Tuple[str, ...]
    applications: Tuple[TransformationApplication, ...]
    #: ``((job_name, ((param, value), ...)), ...)`` sorted by job then param.
    best_settings: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...]
    estimated_cost: float = float("inf")

    def settings_dict(self) -> Dict[str, Dict[str, object]]:
        """The stored settings as the mapping the replay machinery applies."""
        return {job: dict(params) for job, params in self.best_settings}

    @classmethod
    def from_record(cls, record) -> "SubunitChoice":
        """Build from a chosen :class:`~repro.core.search.SubplanRecord`."""
        return cls(
            transformations=tuple(record.transformations),
            applications=tuple(record.applications),
            best_settings=tuple(
                sorted(
                    (job, tuple(sorted(params.items())))
                    for job, params in record.best_settings.items()
                )
            ),
            estimated_cost=record.estimated_cost,
        )

    @classmethod
    def no_op(cls) -> "SubunitChoice":
        """The empty choice (a unit whose search retained nothing)."""
        return cls(transformations=(), applications=(), best_settings=())


@dataclass(frozen=True)
class UnitDecision:
    """The complete recorded outcome of one unit's search: one choice per
    independent sub-unit, in sub-unit order."""

    choices: Tuple[SubunitChoice, ...]


@dataclass
class DecisionCacheStats:
    """Counters describing how often unit searches were skipped.

    ``decision_hits`` / ``decision_misses`` count unit-level lookups (one per
    ``optimize_units`` call with the cache enabled).  ``cross_origin_hits``
    counts the hits served by a decision another origin (a different
    experiment cell, or a warm-started persisted file) recorded — mirroring
    :attr:`~repro.whatif.service.CostServiceStats.cross_origin_hits`.
    ``replayed_subunits`` counts the sub-unit searches a hit saved.
    """

    decision_hits: int = 0
    decision_misses: int = 0
    cross_origin_hits: int = 0
    stores: int = 0
    replayed_subunits: int = 0

    @property
    def lookups(self) -> int:
        """Unit-level lookups performed."""
        return self.decision_hits + self.decision_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of unit lookups answered from the cache."""
        if self.lookups == 0:
            return 0.0
        return self.decision_hits / self.lookups

    def accumulate(self, delta: "DecisionCacheStats") -> None:
        """Add another stats delta into this one, in place."""
        self.decision_hits += delta.decision_hits
        self.decision_misses += delta.decision_misses
        self.cross_origin_hits += delta.cross_origin_hits
        self.stores += delta.stores
        self.replayed_subunits += delta.replayed_subunits

    def snapshot(self) -> "DecisionCacheStats":
        """Immutable copy of the current counters."""
        return replace(self)

    def since(self, before: "DecisionCacheStats") -> "DecisionCacheStats":
        """Counter delta between this snapshot and an earlier one."""
        return DecisionCacheStats(
            decision_hits=self.decision_hits - before.decision_hits,
            decision_misses=self.decision_misses - before.decision_misses,
            cross_origin_hits=self.cross_origin_hits - before.cross_origin_hits,
            stores=self.stores - before.stores,
            replayed_subunits=self.replayed_subunits - before.replayed_subunits,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reports and benchmark JSON."""
        return {
            "decision_hits": self.decision_hits,
            "decision_misses": self.decision_misses,
            "cross_origin_hits": self.cross_origin_hits,
            "stores": self.stores,
            "replayed_subunits": self.replayed_subunits,
            "hit_rate": self.hit_rate,
        }


class DecisionCache:
    """Sharded, LRU, optionally persisted memo of unit search decisions.

    One instance is safe to share across search threads, forked workers, and
    experiment cells — the concurrency model is the
    :class:`~repro.whatif.service.CostService` one: lock-striped shards,
    atomic stats with thread-local attribution sinks, export-log
    merge-on-join for forked workers, origin-tagged entries.

    ``enabled=False`` (or ``STUBBY_DECISION_CACHE_ENABLED=0``) turns every
    lookup into a no-answer and every store into a no-op, so a disabled
    cache is behaviourally invisible.  ``verify_hits=True`` (or
    ``STUBBY_DECISION_CACHE_VERIFY=1``) makes the search re-derive every hit
    from scratch and assert bit-identity — the debug mode of the hard
    replay-equals-search contract.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        max_entries: int = DEFAULT_MAX_DECISIONS,
        enabled: Optional[bool] = None,
        cache_path: Optional[str] = None,
        verify_hits: Optional[bool] = None,
    ) -> None:
        self.cluster = cluster
        self.enabled = decision_cache_enabled(enabled)
        self.verify_hits = decision_cache_verify(verify_hits)
        self.max_entries = max(1, max_entries)
        self._cache = _ShardedCache(self.max_entries)
        self.stats = DecisionCacheStats()
        self._stats_lock = threading.Lock()
        self._sinks = threading.local()
        #: Append-only log of decisions stored since :meth:`start_export_log`;
        #: enabled only inside forked workers (single-threaded).
        self._export_log: Optional[List[Tuple[Tuple, UnitDecision, object]]] = None
        self.cache_path = cache_path
        #: Outcome of the constructor's warm-start attempt (``None`` when no
        #: path was configured or the cache is disabled).
        self.last_load: Optional[CacheLoadReport] = None
        if self.cache_path and self.enabled:
            self.last_load = self.load_cache(self.cache_path)

    # ------------------------------------------------------------------ API
    def lookup(self, key: Tuple, origin: Optional[str] = None) -> Optional[Tuple[UnitDecision, bool]]:
        """The recorded decision for ``key``, or ``None`` on a miss.

        Returns ``(decision, cross_origin)`` — the second element is True
        when the entry was stored under a different origin label than the
        caller's (another cell's work, or a warm-started file).
        """
        if not self.enabled:
            return None
        entry = self._cache.lookup(key)
        delta = DecisionCacheStats()
        if entry is None:
            delta.decision_misses = 1
            self._apply_delta(delta)
            return None
        decision, entry_origin = entry
        cross_origin = entry_origin != origin
        delta.decision_hits = 1
        if cross_origin:
            delta.cross_origin_hits = 1
        delta.replayed_subunits = len(decision.choices)
        self._apply_delta(delta)
        return decision, cross_origin

    def store(self, key: Tuple, decision: UnitDecision, origin: Optional[str] = None) -> None:
        """Record the winning decision for ``key`` (no-op when disabled)."""
        if not self.enabled:
            return
        new = self._cache.store(key, decision, origin)
        self._apply_delta(DecisionCacheStats(stores=1))
        if new and self._export_log is not None:
            self._export_log.append((key, decision, origin))

    # ------------------------------------------------------- stats plumbing
    def _apply_delta(self, delta: DecisionCacheStats) -> None:
        """Fold a stats delta into the global counters and this thread's sinks."""
        with self._stats_lock:
            self.stats.accumulate(delta)
        for sink in self._sink_stack():
            sink.accumulate(delta)

    def _sink_stack(self) -> List[DecisionCacheStats]:
        stack = getattr(self._sinks, "stack", None)
        if stack is None:
            stack = []
            self._sinks.stack = stack
        return stack

    @contextmanager
    def attribute_to(self, sink: DecisionCacheStats):
        """Also credit this thread's lookups/stores to ``sink`` while active."""
        stack = self._sink_stack()
        stack.append(sink)
        try:
            yield sink
        finally:
            stack.pop()

    def apply_external_delta(self, delta: DecisionCacheStats) -> None:
        """Fold in work performed by a foreign process (merge-on-join)."""
        self._apply_delta(delta)

    def apply_sink_only_delta(self, delta: DecisionCacheStats) -> None:
        """Re-attribute work already counted globally to this thread's sinks."""
        for sink in self._sink_stack():
            sink.accumulate(delta)

    def stats_snapshot(self) -> DecisionCacheStats:
        """Consistent copy of the global counters."""
        with self._stats_lock:
            return self.stats.snapshot()

    # ------------------------------------------------- process merge-on-join
    def start_export_log(self) -> None:
        """Begin recording newly stored decisions (forked workers only)."""
        self._export_log = []

    def export_log_entries(self) -> List[Tuple[Tuple, UnitDecision, object]]:
        """Drain the export log; freshest :data:`MAX_EXPORTED_DECISIONS` win."""
        log = self._export_log or []
        self._export_log = None
        return log[-MAX_EXPORTED_DECISIONS:]

    def absorb_entries(self, entries: List[Tuple[Tuple, UnitDecision, object]]) -> None:
        """Merge decisions exported by a worker (or loaded from disk).

        Keys are content-based and decisions deterministic, so merging is
        idempotent and order-independent; entries keep the origin label they
        were stored under, preserving cross-origin attribution.
        """
        for key, decision, origin in entries:
            self._cache.store(key, decision, origin)

    # ------------------------------------------------------------ persistence
    def save_cache(self, path: Optional[str] = None, merge_first: bool = False) -> int:
        """Persist the decision store to ``path`` (default: ``cache_path``).

        The payload is stamped with the on-disk format version, the cost
        model version, and the cluster key — a decision is only valid for
        the exact cost model and cluster it was searched under.  The write
        is atomic (temp file + ``os.replace``).  Returns the entry count.

        ``merge_first=True`` re-absorbs the current file (if valid) before
        writing — the long-lived-service idiom: a replica that restarted
        cold never shrinks a richer store persisted by another.  Decisions
        are content-keyed and deterministic, so the merge is conflict-free.
        """
        path = path or self.cache_path
        if not path:
            raise ValueError("no decision cache path configured (pass path= or set cache_path)")
        if merge_first:
            self.load_cache(path)
        entries = [
            (key, decision, origin)
            for rows in self._cache.shard_items()
            for key, decision, origin in rows
        ]
        payload = {
            "format_version": DECISION_CACHE_FORMAT_VERSION,
            # Read through the module so tests monkeypatching the version
            # see the stamp move.
            "model_version": whatif_model.COST_MODEL_VERSION,
            "cluster_key": cluster_cache_key(self.cluster),
            "entries": entries,
        }
        atomic_pickle_write(path, payload)
        fault_site("decisions.save", path=path)
        return len(entries)

    def load_cache(self, path: Optional[str] = None) -> CacheLoadReport:
        """Warm-start from a persisted decision file; never raises on bad input.

        Rejection is quiet and all-or-nothing: missing, corrupt, truncated,
        or version/cluster-mismatched files contribute nothing.
        """
        path = path or self.cache_path
        if not path:
            raise ValueError("no decision cache path configured (pass path= or set cache_path)")
        # Before the open: a corrupt/truncate fault mangles what we then read.
        fault_site("decisions.load", path=path)
        if not os.path.exists(path):
            return CacheLoadReport(loaded=False, reason="no cache file")
        try:
            with open(path, "rb") as handle:
                payload = _RestrictedUnpickler(handle).load()
        except Exception as exc:  # corrupt, truncated, or not a pickle at all
            return CacheLoadReport(
                loaded=False, reason=f"unreadable cache file ({type(exc).__name__})"
            )
        if not isinstance(payload, dict):
            return CacheLoadReport(loaded=False, reason="malformed cache payload")
        if payload.get("format_version") != DECISION_CACHE_FORMAT_VERSION:
            return CacheLoadReport(
                loaded=False,
                reason=f"format version mismatch ({payload.get('format_version')!r} "
                f"!= {DECISION_CACHE_FORMAT_VERSION!r})",
            )
        if payload.get("model_version") != whatif_model.COST_MODEL_VERSION:
            return CacheLoadReport(
                loaded=False,
                reason=f"cost model version mismatch ({payload.get('model_version')!r} "
                f"!= {whatif_model.COST_MODEL_VERSION!r})",
            )
        if payload.get("cluster_key") != cluster_cache_key(self.cluster):
            return CacheLoadReport(
                loaded=False, reason="cache was computed for a different ClusterSpec"
            )
        entries = payload.get("entries")
        if not isinstance(entries, list):
            return CacheLoadReport(loaded=False, reason="malformed cache payload")
        # Validate every row before absorbing any — all-or-nothing.
        for row in entries:
            if not (
                isinstance(row, tuple)
                and len(row) == 3
                and isinstance(row[0], tuple)
                and isinstance(row[1], UnitDecision)
            ):
                return CacheLoadReport(loaded=False, reason="malformed cache entries")
        self.absorb_entries(entries)
        return CacheLoadReport(loaded=True, entries=len(entries), reason="ok")

    # ------------------------------------------------------------ cache mgmt
    def invalidate(self) -> None:
        """Drop every memoized decision (stats are kept)."""
        self._cache.clear()

    def invalidate_key(self, key: Tuple) -> bool:
        """Drop one memoized decision; True when it existed.

        Used when a recorded decision turns out to be unreplayable — e.g. it
        substitutes a sub-result whose catalog entry has since been evicted —
        so the next lookup runs a fresh search instead of failing again.
        """
        return self._cache.discard(key)

    @property
    def cache_size(self) -> int:
        """Number of memoized unit decisions."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecisionCache(entries={len(self._cache)}, enabled={self.enabled}, "
            f"hits={self.stats.decision_hits}, misses={self.stats.decision_misses})"
        )


def ensure_decision_cache(
    cluster: ClusterSpec,
    cache: Optional[DecisionCache] = None,
    cache_path: Optional[str] = None,
) -> DecisionCache:
    """Return ``cache`` if given, else a fresh :class:`DecisionCache`.

    The sibling of :func:`~repro.core.costing.ensure_cost_service`: a shared
    cache must have been built for the same cluster — a recorded decision is
    only the argmin for the cluster it was searched under, so cross-cluster
    sharing would silently replay wrong plans.  ``cache_path`` applies only
    when a fresh cache is constructed (explicit argument, else the
    ``STUBBY_DECISION_CACHE`` environment variable).
    """
    if cache is None:
        return DecisionCache(cluster, cache_path=resolve_decision_cache_path(cache_path))
    if cache.cluster != cluster:
        raise ValueError(
            "decision cache was built for a different ClusterSpec; "
            "recorded decisions are only valid for the cluster they were searched on"
        )
    return cache


def decision_cache_side_channel(cache: DecisionCache) -> SideChannel:
    """Wire a :class:`DecisionCache` into a backend session's side channel.

    The exact analogue of
    :func:`~repro.core.costing.cost_service_side_channel`: thread workers
    re-attribute their stats delta to the calling thread's sinks, forked
    workers export their privately recorded decisions and full stats delta
    for merge-on-join.  Origins need no propagation of their own — the
    search reads its origin from the cost service, whose side channel
    already re-establishes the session opener's label per worker chunk.
    """

    def chunk_begin():
        sink = DecisionCacheStats()
        cache._sink_stack().append(sink)
        return sink

    def chunk_end(sink) -> DecisionCacheStats:
        cache._sink_stack().pop()
        return sink

    return SideChannel(
        worker_init=cache.start_export_log,
        chunk_begin=chunk_begin,
        chunk_end=chunk_end,
        chunk_absorb_shared=cache.apply_sink_only_delta,
        chunk_absorb_foreign=cache.apply_external_delta,
        final_export=cache.export_log_entries,
        final_absorb=cache.absorb_entries,
    )


