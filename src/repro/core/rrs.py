"""Recursive Random Search (RRS) over configuration spaces.

Stubby uses RRS [24] to search the large, high-dimensional configuration
space of each enumerated subplan (paper §4.2).  RRS alternates two phases:

* **explore** — sample the space uniformly at random to find a promising
  region (a point whose cost is in the best fraction seen so far);
* **exploit** — sample recursively inside a shrinking neighbourhood of the
  best point, re-centring on improvements and shrinking on failures, until
  the neighbourhood collapses; then restart exploration.

Sampling is **generation-batched**: each phase first draws a whole
generation of sample points from the RNG, then hands the generation to the
objective in one call (``objective_batch``), and only then folds the values
back into the search state.  Because every point of a generation is drawn
before any of them is evaluated, the points cannot depend on each other's
values — which is exactly what lets the parallel unit search dispatch a
whole generation of what-if costings at once
(:mod:`repro.core.parallel`) while staying bit-identical to serial
evaluation.  Within a generation, ties are broken by sample index.

The implementation is deterministic given its RNG seed, which keeps the
optimizer's output reproducible across runs, backends, and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.common.rng import DeterministicRNG
from repro.mapreduce.config import ConfigurationSpace

Objective = Callable[[Mapping[str, object]], float]
#: Evaluate a whole generation of points at once; must return one value per
#: point, in point order.
BatchObjective = Callable[[Sequence[Mapping[str, object]]], Sequence[float]]


@dataclass
class RRSResult:
    """Outcome of one RRS run."""

    best_point: Dict[str, object]
    best_value: float
    evaluations: int
    trajectory: List[float] = field(default_factory=list)
    #: Sampled points that were *not* dispatched to the objective because an
    #: identical point had already been evaluated in this search (within the
    #: same generation or an earlier one).  ``evaluations`` counts only
    #: dispatched points, so ``evaluations + duplicate_points`` is the total
    #: number of points the search drew.
    duplicate_points: int = 0


class RecursiveRandomSearch:
    """Minimize a black-box objective over a :class:`ConfigurationSpace`."""

    def __init__(
        self,
        exploration_samples: int = 12,
        exploitation_samples: int = 10,
        initial_radius: float = 0.3,
        shrink_factor: float = 0.5,
        min_radius: float = 0.05,
        restarts: int = 2,
        seed: int = 13,
    ) -> None:
        if exploration_samples <= 0 or exploitation_samples <= 0:
            raise ValueError("sample counts must be positive")
        if not 0.0 < shrink_factor < 1.0:
            raise ValueError("shrink_factor must be in (0, 1)")
        self.exploration_samples = exploration_samples
        self.exploitation_samples = exploitation_samples
        self.initial_radius = initial_radius
        self.shrink_factor = shrink_factor
        self.min_radius = min_radius
        self.restarts = restarts
        self.seed = seed

    def search(
        self,
        space: ConfigurationSpace,
        objective: Optional[Objective] = None,
        initial_point: Optional[Mapping[str, object]] = None,
        rng: Optional[DeterministicRNG] = None,
        objective_batch: Optional[BatchObjective] = None,
    ) -> RRSResult:
        """Run RRS and return the best point found.

        ``initial_point`` (typically the job's current configuration) is
        always evaluated first so the search can never return something worse
        than the starting configuration.

        Exactly one of ``objective`` (evaluated point-by-point) or
        ``objective_batch`` (evaluated one generation at a time) must be
        provided; with both given, ``objective_batch`` wins.  The two are
        interchangeable as long as ``objective_batch(points)`` returns
        ``[objective(p) for p in points]`` — the search draws every point of
        a generation before evaluating any of them either way.
        """
        if objective is None and objective_batch is None:
            raise ValueError("search() needs an objective or an objective_batch")
        evaluate: BatchObjective = objective_batch or (
            lambda points: [objective(point) for point in points]
        )
        rng = rng or DeterministicRNG(self.seed)
        evaluations = 0
        duplicate_points = 0
        trajectory: List[float] = []
        #: Every value computed so far, keyed by point content.  Identical
        #: points — within one generation or across generations of the same
        #: search — are dispatched to the objective once; duplicates reuse
        #: the memoized value.  The objective is deterministic in the point
        #: (same forked RNG stream per candidate), so the per-point values
        #: the search state folds in are identical to evaluating everything,
        #: and the argmin is unchanged.
        evaluated: Dict[tuple, float] = {}

        best_point: Dict[str, object] = {}
        best_value = float("inf")

        def point_key(point: Mapping[str, object]) -> tuple:
            return tuple(sorted(point.items()))

        def run_generation(points: Sequence[Mapping[str, object]]) -> List[float]:
            nonlocal evaluations, duplicate_points
            fresh: List[Mapping[str, object]] = []
            fresh_keys: List[tuple] = []
            keys = [point_key(point) for point in points]
            for point, key in zip(points, keys):
                if key not in evaluated and key not in fresh_keys:
                    fresh.append(point)
                    fresh_keys.append(key)
            duplicate_points += len(points) - len(fresh)
            values = list(evaluate(fresh)) if fresh else []
            if len(values) != len(fresh):
                raise ValueError(
                    f"objective_batch returned {len(values)} values for {len(fresh)} points"
                )
            evaluations += len(values)
            trajectory.extend(values)
            for key, value in zip(fresh_keys, values):
                evaluated[key] = value
            return [evaluated[key] for key in keys]

        if not space.dimensions:
            value = run_generation([{}])[0]
            return RRSResult(
                best_point={},
                best_value=value,
                evaluations=evaluations,
                trajectory=trajectory,
                duplicate_points=duplicate_points,
            )

        if initial_point is not None:
            candidate = space.clamp(initial_point)
            value = run_generation([candidate])[0]
            best_point, best_value = candidate, value

        for _ in range(self.restarts):
            # Exploration generation: draw everything, then evaluate at once.
            explore_points = [space.sample(rng) for _ in range(self.exploration_samples)]
            explore_values = run_generation(explore_points)
            region_center = None
            region_value = float("inf")
            for point, value in zip(explore_points, explore_values):
                if value < region_value:
                    region_center, region_value = point, value
                if value < best_value:
                    best_point, best_value = point, value

            if region_center is None:
                continue

            # Exploitation: each round samples one generation around the
            # round's center, then re-centres on the generation's best (ties
            # by sample index) or shrinks when nothing improved.  The round
            # cap bounds the run when the objective keeps improving slightly.
            radius = self.initial_radius
            center, center_value = dict(region_center), region_value
            rounds = 0
            while radius >= self.min_radius and rounds < 12:
                rounds += 1
                exploit_points = [
                    space.sample_near(center, radius, rng)
                    for _ in range(self.exploitation_samples)
                ]
                exploit_values = run_generation(exploit_points)
                improved = False
                for point, value in zip(exploit_points, exploit_values):
                    if value < center_value:
                        center, center_value = dict(point), value
                        improved = True
                    if value < best_value:
                        best_point, best_value = dict(point), value
                if not improved:
                    radius *= self.shrink_factor

        return RRSResult(
            best_point=best_point,
            best_value=best_value,
            evaluations=evaluations,
            trajectory=trajectory,
            duplicate_points=duplicate_points,
        )
