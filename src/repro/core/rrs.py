"""Recursive Random Search (RRS) over configuration spaces.

Stubby uses RRS [24] to search the large, high-dimensional configuration
space of each enumerated subplan (paper §4.2).  RRS alternates two phases:

* **explore** — sample the space uniformly at random to find a promising
  region (a point whose cost is in the best fraction seen so far);
* **exploit** — sample recursively inside a shrinking neighbourhood of the
  best point, re-centring on improvements and shrinking on failures, until
  the neighbourhood collapses; then restart exploration.

The implementation is deterministic given its RNG seed, which keeps the
optimizer's output reproducible across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.common.rng import DeterministicRNG
from repro.mapreduce.config import ConfigurationSpace

Objective = Callable[[Mapping[str, object]], float]


@dataclass
class RRSResult:
    """Outcome of one RRS run."""

    best_point: Dict[str, object]
    best_value: float
    evaluations: int
    trajectory: List[float] = field(default_factory=list)


class RecursiveRandomSearch:
    """Minimize a black-box objective over a :class:`ConfigurationSpace`."""

    def __init__(
        self,
        exploration_samples: int = 12,
        exploitation_samples: int = 10,
        initial_radius: float = 0.3,
        shrink_factor: float = 0.5,
        min_radius: float = 0.05,
        restarts: int = 2,
        seed: int = 13,
    ) -> None:
        if exploration_samples <= 0 or exploitation_samples <= 0:
            raise ValueError("sample counts must be positive")
        if not 0.0 < shrink_factor < 1.0:
            raise ValueError("shrink_factor must be in (0, 1)")
        self.exploration_samples = exploration_samples
        self.exploitation_samples = exploitation_samples
        self.initial_radius = initial_radius
        self.shrink_factor = shrink_factor
        self.min_radius = min_radius
        self.restarts = restarts
        self.seed = seed

    def search(
        self,
        space: ConfigurationSpace,
        objective: Objective,
        initial_point: Optional[Mapping[str, object]] = None,
        rng: Optional[DeterministicRNG] = None,
    ) -> RRSResult:
        """Run RRS and return the best point found.

        ``initial_point`` (typically the job's current configuration) is
        always evaluated first so the search can never return something worse
        than the starting configuration.
        """
        rng = rng or DeterministicRNG(self.seed)
        evaluations = 0
        trajectory: List[float] = []

        best_point: Dict[str, object] = {}
        best_value = float("inf")

        if not space.dimensions:
            value = objective({})
            return RRSResult(best_point={}, best_value=value, evaluations=1, trajectory=[value])

        if initial_point is not None:
            candidate = space.clamp(initial_point)
            value = objective(candidate)
            evaluations += 1
            trajectory.append(value)
            best_point, best_value = candidate, value

        for _ in range(self.restarts):
            # Exploration phase.
            region_center = None
            region_value = float("inf")
            for _ in range(self.exploration_samples):
                candidate = space.sample(rng)
                value = objective(candidate)
                evaluations += 1
                trajectory.append(value)
                if value < region_value:
                    region_center, region_value = candidate, value
                if value < best_value:
                    best_point, best_value = candidate, value

            if region_center is None:
                continue

            # Exploitation phase: recursive re-centring/shrinking.  The round
            # cap bounds the run when the objective keeps improving slightly.
            radius = self.initial_radius
            center, center_value = dict(region_center), region_value
            rounds = 0
            while radius >= self.min_radius and rounds < 12:
                rounds += 1
                improved = False
                for _ in range(self.exploitation_samples):
                    candidate = space.sample_near(center, radius, rng)
                    value = objective(candidate)
                    evaluations += 1
                    trajectory.append(value)
                    if value < center_value:
                        center, center_value = dict(candidate), value
                        improved = True
                    if value < best_value:
                        best_point, best_value = dict(candidate), value
                if not improved:
                    radius *= self.shrink_factor

        return RRSResult(
            best_point=best_point,
            best_value=best_value,
            evaluations=evaluations,
            trajectory=trajectory,
        )
