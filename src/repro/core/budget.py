"""Cooperative time budgets for the optimizer search.

A :class:`TimeBudget` is an absolute deadline on the monotonic clock that
cooperating code checks at safe points — the search checks between unit
optimizations, between enumeration waves, before each candidate costing,
and per RRS sample (:mod:`repro.core.search`), so a
:class:`~repro.common.errors.DeadlineExceeded` is only ever raised
*between* evaluations, never mid-rewrite: the plan under optimization
stays consistent and the caller (the planning server's degradation
ladder) can fall back to a cheaper rung.

Deadlines are absolute on ``time.monotonic()``, which on Linux is the
system-wide ``CLOCK_MONOTONIC`` — a budget created in the dispatcher is
meaningful inside a forked worker too.  An unbounded budget's ``check``
is a single attribute comparison, so threading a budget through the hot
loops costs nothing when no deadline is set.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.common.errors import DeadlineExceeded

__all__ = ["TimeBudget", "UNBOUNDED"]


class TimeBudget:
    """An absolute monotonic deadline with a cooperative ``check()``."""

    __slots__ = ("deadline_at", "_clock")

    def __init__(
        self,
        seconds: Optional[float] = None,
        deadline_at: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and deadline_at is not None:
            raise ValueError("pass seconds= or deadline_at=, not both")
        self._clock = clock
        if deadline_at is not None:
            self.deadline_at = deadline_at
        elif seconds is not None:
            self.deadline_at = clock() + seconds
        else:
            self.deadline_at = None  # unbounded

    @property
    def unbounded(self) -> bool:
        return self.deadline_at is None

    def remaining(self) -> float:
        """Seconds until the deadline (``inf`` when unbounded, floored at 0)."""
        if self.deadline_at is None:
            return float("inf")
        return max(0.0, self.deadline_at - self._clock())

    @property
    def expired(self) -> bool:
        return self.deadline_at is not None and self._clock() >= self.deadline_at

    def check(self, site: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the deadline has passed."""
        if self.deadline_at is None:
            return
        now = self._clock()
        if now >= self.deadline_at:
            raise DeadlineExceeded(site=site, overshoot_s=now - self.deadline_at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.deadline_at is None:
            return "TimeBudget(unbounded)"
        return f"TimeBudget(remaining={self.remaining():.3f}s)"


#: The shared no-op budget; ``check`` returns after one attribute read.
UNBOUNDED = TimeBudget()
