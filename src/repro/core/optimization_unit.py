"""Dynamic generation of optimization units (paper §4.1).

An optimization unit brings together a set of related decisions that affect
each other but are independent of decisions made at other units: it consists
of a set of concurrently runnable *producer* jobs plus their direct
*consumer* jobs.  Units are generated dynamically while traversing the
workflow graph in topological order, because transformations applied inside a
unit can change the graph (Figure 9: after J3 and J4 are packed into J4', the
next unit is built around J4').

The generator below maintains the set of job names that have already served
as producers ("handled").  At each step the next unit's producers are the
jobs all of whose upstream jobs are handled; a job created by merging a
producer with its consumer is *not* handled, so it becomes a producer of a
later unit — exactly the dynamic behaviour of Figure 9.

Each :meth:`OptimizationUnitGenerator.next_unit` call walks the topological
order and the producer/consumer adjacency of every unhandled job; both are
answered from the workflow's incremental topology index (cached order, O(1)
adjacency — see :mod:`repro.workflow.graph`), so unit generation over a
whole run is O(units · (jobs + edges)) instead of the O(jobs³) the
brute-force scans cost on wide DAGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.core.plan import Plan


@dataclass(frozen=True)
class OptimizationUnit:
    """One optimization unit: producer jobs and their direct consumers."""

    producers: Tuple[str, ...]
    consumers: Tuple[str, ...]

    @property
    def jobs(self) -> Tuple[str, ...]:
        """All job names in the unit (producers first, then consumers)."""
        seen = set()
        ordered: List[str] = []
        for name in self.producers + self.consumers:
            if name not in seen:
                seen.add(name)
                ordered.append(name)
        return tuple(ordered)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"U(producers={list(self.producers)}, consumers={list(self.consumers)})"


class OptimizationUnitGenerator:
    """Generates optimization units dynamically as the plan evolves.

    Usage::

        generator = OptimizationUnitGenerator()
        unit = generator.next_unit(plan)
        while unit is not None:
            plan = optimize_unit_somehow(plan, unit)
            generator.mark_handled(plan, unit)
            unit = generator.next_unit(plan)
    """

    def __init__(self) -> None:
        self._handled: Set[str] = set()
        self._emitted: List[OptimizationUnit] = []

    @property
    def handled(self) -> Set[str]:
        """Names of jobs that have already served as unit producers."""
        return set(self._handled)

    @property
    def units_emitted(self) -> List[OptimizationUnit]:
        """Every unit generated so far, in order."""
        return list(self._emitted)

    def next_unit(self, plan: Plan) -> "OptimizationUnit | None":
        """The next optimization unit of ``plan``, or ``None`` when done."""
        workflow = plan.workflow
        producers: List[str] = []
        for vertex in workflow.topological_order():
            if vertex.name in self._handled:
                continue
            upstream = workflow.producer_jobs(vertex.name)
            if all(up.name in self._handled for up in upstream):
                producers.append(vertex.name)
        if not producers:
            return None
        consumers: List[str] = []
        for producer_name in producers:
            for consumer in workflow.consumer_jobs(producer_name):
                if consumer.name not in consumers and consumer.name not in producers:
                    consumers.append(consumer.name)
        unit = OptimizationUnit(producers=tuple(producers), consumers=tuple(consumers))
        self._emitted.append(unit)
        return unit

    def independent_subunits(self, plan: Plan, unit: OptimizationUnit) -> List[OptimizationUnit]:
        """Split a unit into sub-units that share no workflow vertices.

        Two jobs of the unit belong to the same sub-unit when they touch a
        common dataset vertex (one reads what the other writes, or they read
        the same input).  Every transformation's applications span jobs
        connected through datasets — vertical packing follows produce/consume
        edges, horizontal packing requires a shared input — so the candidate
        subplans of different sub-units rewrite disjoint parts of the
        workflow graph and can be enumerated, costed, and chosen
        independently; the parallel search fans them out and composes the
        chosen rewrites afterwards (see ``docs/search.md``).

        Sub-units are returned in a deterministic order (by each sub-unit's
        first producer in the original unit's producer order), which the
        composition step relies on for backend-independent results.
        """
        workflow = plan.workflow
        jobs = list(unit.jobs)
        parent: Dict[str, str] = {name: name for name in jobs}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        touched: Dict[str, str] = {}
        for name in jobs:
            job = workflow.job(name).job
            for dataset in list(job.input_datasets) + list(job.output_datasets):
                if dataset in touched:
                    union(touched[dataset], name)
                else:
                    touched[dataset] = name

        groups: Dict[str, List[str]] = {}
        for name in jobs:
            groups.setdefault(find(name), []).append(name)

        producer_set = set(unit.producers)
        subunits: List[OptimizationUnit] = []
        for members in groups.values():
            member_set = set(members)
            producers = tuple(n for n in unit.producers if n in member_set)
            consumers = tuple(n for n in unit.consumers if n in member_set)
            if not producers:
                # A consumer group with no producer cannot arise: every
                # consumer shares its input dataset with a unit producer.
                producers = tuple(n for n in members if n not in producer_set)
            subunits.append(OptimizationUnit(producers=producers, consumers=consumers))
        order = {name: index for index, name in enumerate(unit.jobs)}
        subunits.sort(key=lambda sub: min(order[n] for n in sub.jobs))
        return subunits

    def mark_handled(self, plan: Plan, unit: OptimizationUnit) -> None:
        """Record which of the unit's producers still exist and are now handled.

        Producers that were merged away (their name no longer exists in the
        plan) are dropped; merged jobs keep their new names un-handled so they
        become producers of a later unit.
        """
        workflow = plan.workflow
        for name in unit.producers:
            if workflow.has_job(name):
                self._handled.add(name)
        # Drop handled names that no longer exist to keep the set tidy.
        self._handled = {name for name in self._handled if workflow.has_job(name)}

    def iterate(self, plan: Plan) -> Iterator[OptimizationUnit]:
        """Iterate units over a *static* plan (no transformations applied).

        Useful for inspecting the unit structure of a workflow without
        optimizing it.
        """
        while True:
            unit = self.next_unit(plan)
            if unit is None:
                return
            self.mark_handled(plan, unit)
            yield unit
