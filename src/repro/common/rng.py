"""Deterministic random number generation.

All stochastic components (data generators, the profiler's sampling noise,
Recursive Random Search) draw from a :class:`DeterministicRNG` seeded
explicitly, so experiments and tests are reproducible run to run.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

from repro.common.hashing import stable_hash

T = TypeVar("T")


class DeterministicRNG:
    """A thin wrapper over :class:`random.Random` with convenience helpers.

    Parameters
    ----------
    seed:
        Any hashable seed.  Two instances created with the same seed produce
        identical streams.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    def fork(self, label: str) -> "DeterministicRNG":
        """Derive an independent generator for a named sub-component.

        Forking keeps sub-components insulated from each other: adding a
        random draw in one component does not shift the stream seen by
        another.  The child seed is derived with a process-independent hash
        (built-in ``hash()`` is salted per process for strings), so forked
        streams are reproducible across runs — a requirement for replaying a
        differential-verification divergence from its seed.
        """
        return DeterministicRNG(stable_hash((self._seed, label)) & 0x7FFFFFFF)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element uniformly at random."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list:
        """Sample ``k`` distinct elements without replacement."""
        return self._random.sample(items, k)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def gauss(self, mu: float, sigma: float) -> float:
        """Gaussian sample."""
        return self._random.gauss(mu, sigma)

    def zipf(self, n: int, alpha: float = 1.5) -> int:
        """Sample an integer in ``[1, n]`` from a (truncated) Zipf law.

        Used by the power-law data generators (web graph, coauthor pairs).
        """
        if n <= 0:
            raise ValueError("zipf domain must be positive")
        # Inverse-CDF sampling over the truncated harmonic weights.
        weights = [1.0 / (i ** alpha) for i in range(1, n + 1)]
        total = sum(weights)
        target = self._random.random() * total
        acc = 0.0
        for i, w in enumerate(weights, start=1):
            acc += w
            if acc >= target:
                return i
        return n
