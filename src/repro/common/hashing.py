"""Process-independent hashing.

Python's built-in ``hash()`` is salted per process for strings
(``PYTHONHASHSEED``), so anything derived from it — partition assignment,
forked RNG streams — would differ between runs and make "reproduce this
divergence from seed S" impossible.  Every component that needs a hash for
*placement* or *seeding* (never for security) uses :func:`stable_hash`, a
64-bit FNV-1a over the stringified material.
"""

from __future__ import annotations

from typing import Iterable

_FNV_OFFSET = 1469598103934665603
_FNV_PRIME = 1099511628211
_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(material: Iterable[object]) -> int:
    """64-bit FNV-1a hash of an iterable of items, stable across processes.

    Items are folded in via ``str()``, with a separator byte between items so
    ``("ab", "c")`` and ``("a", "bc")`` hash differently.
    """
    acc = _FNV_OFFSET
    for item in material:
        for ch in str(item):
            acc ^= ord(ch)
            acc = (acc * _FNV_PRIME) & _MASK
        acc ^= 0xFF
        acc = (acc * _FNV_PRIME) & _MASK
    return acc
