"""Exception hierarchy for the repro package.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.

The serving stack additionally needs a **retryable-vs-terminal** split:
when a request's full search fails, the planning server's degradation
ladder retries on a cheaper rung — unless the failure says no amount of
retrying will help (:class:`TerminalError`), in which case the request
fails outright.  :func:`is_terminal` is the single classification point;
anything not explicitly terminal is treated as transient, because the
ladder exists precisely so that an unexpected optimizer bug degrades a
response instead of failing it.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class WorkflowValidationError(ReproError):
    """A workflow DAG is malformed (cycles, dangling edges, bad vertices)."""


class AnnotationError(ReproError):
    """An annotation is missing, inconsistent, or malformed."""


class ExecutionError(ReproError):
    """The local MapReduce engine failed to execute a job or workflow."""


class CostModelError(ReproError):
    """The What-if engine could not estimate a cost from the given inputs."""


class OptimizationError(ReproError):
    """The optimizer produced or was given an invalid plan."""


class InterfaceCompilationError(ReproError):
    """The dataflow interface could not compile a logical plan to MapReduce."""


class RetryableError(ReproError):
    """A transient failure: a retry — or a degraded fallback — may succeed."""

    retryable = True


class TerminalError(ReproError):
    """A permanent failure: no retry or fallback can produce a valid answer."""

    retryable = False


class DeadlineExceeded(RetryableError):
    """A cooperative time budget expired (see :mod:`repro.core.budget`).

    Raised between candidate evaluations by the search, never mid-rewrite,
    so the plan being optimized is always left in a consistent state.
    ``site`` names the check point that tripped; ``overshoot_s`` is how far
    past the deadline the check ran.
    """

    def __init__(self, site: str = "", overshoot_s: float = 0.0) -> None:
        where = f" at {site}" if site else ""
        super().__init__(f"time budget exhausted{where} ({overshoot_s * 1e3:.1f}ms over)")
        self.site = site
        self.overshoot_s = overshoot_s


def is_terminal(exc: BaseException) -> bool:
    """True when no degradation rung should retry after this failure."""
    return isinstance(exc, TerminalError)
