"""Exception hierarchy for the repro package.

Every error raised intentionally by the library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class WorkflowValidationError(ReproError):
    """A workflow DAG is malformed (cycles, dangling edges, bad vertices)."""


class AnnotationError(ReproError):
    """An annotation is missing, inconsistent, or malformed."""


class ExecutionError(ReproError):
    """The local MapReduce engine failed to execute a job or workflow."""


class CostModelError(ReproError):
    """The What-if engine could not estimate a cost from the given inputs."""


class OptimizationError(ReproError):
    """The optimizer produced or was given an invalid plan."""


class InterfaceCompilationError(ReproError):
    """The dataflow interface could not compile a logical plan to MapReduce."""
