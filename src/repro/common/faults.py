"""Near-zero-cost fault-injection sites for the chaos harness.

Production modules mark the places where a fault *could* happen — a task
about to execute, a cache file about to be read, a serving rung about to
run — by calling :func:`fault_site` with a stable site name and whatever
keyword context identifies the visit (``worker_slot=0``, ``path=...``,
``tenant=...``).  With no plan installed the call is one module-global
read and a ``None`` check; with a plan installed, the plan decides whether
this particular visit fires a fault (raise, sleep, SIGKILL, corrupt the
named file).

The hook lives in :mod:`repro.common` — a leaf package — so any layer
(``core.parallel``, ``whatif.service``, ``service.server``) can import it
without cycles.  The plans themselves, with their seeding, matching, and
reporting, live in :mod:`repro.verification.faults`; this module only
holds the indirection they install into.

Installation is process-wide: a forked worker inherits the active plan by
memory, which is exactly what lets a plan target ``worker_slot=0`` of a
process pool.  Hit counters live on the plan object and are therefore
per-process after a fork — parent-side reports only see parent-side
fires; child-side fires are observed through their effects (a worker
death, a retried task).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["active_plan", "fault_site", "set_active_plan"]

#: The installed fault plan (duck-typed: anything with ``visit(site, info)``).
_active = None


def active_plan() -> Optional[object]:
    """The currently installed plan, or ``None``."""
    return _active


def set_active_plan(plan: Optional[object]) -> None:
    """Install (or with ``None`` remove) the process-wide fault plan."""
    global _active
    _active = plan


def fault_site(name: str, **info) -> None:
    """Declare one visit to the named injection site.

    No-op unless a plan is installed; an installed plan may raise, sleep,
    kill the current process, or mangle the file named by ``info["path"]``
    before returning.
    """
    plan = _active
    if plan is not None:
        plan.visit(name, info)
