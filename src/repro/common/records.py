"""Record helpers.

A *record* throughout this package is a plain ``dict`` mapping field names to
values.  Key-value pairs exchanged between MapReduce functions are
``(key_record, value_record)`` tuples of such dicts.  Schema annotations
(paper §2.2) describe keys and values as sets of field names, so dict-based
records let the optimizer reason about "data flowing unchanged" by field name.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

Record = Dict[str, object]
KeyValue = Tuple[Record, Record]


def project(record: Mapping[str, object], fields: Iterable[str]) -> Record:
    """Return a new record containing only ``fields`` (missing fields skipped)."""
    return {field: record[field] for field in fields if field in record}


def merge(*records: Mapping[str, object]) -> Record:
    """Merge records left to right; later records win on field collisions."""
    merged: Record = {}
    for record in records:
        merged.update(record)
    return merged


def sort_key_for(record: Mapping[str, object], fields: Sequence[str]) -> tuple:
    """Build a tuple usable as a sort/group key over ``fields``.

    Values are wrapped with their type name so heterogeneous columns (e.g.
    ``None`` mixed with ints) still compare deterministically.
    """
    key = []
    for field in fields:
        value = record.get(field)
        if value is None:
            key.append((0, ""))
        elif isinstance(value, bool):
            key.append((1, int(value)))
        elif isinstance(value, (int, float)):
            key.append((2, float(value)))
        else:
            key.append((3, str(value)))
    return tuple(key)


def record_size_bytes(record: Mapping[str, object]) -> int:
    """Rough serialized size of a record, used for byte-level dataflow stats.

    The estimate mirrors a simple text serialization: 8 bytes per numeric
    field, string length for strings, plus 2 bytes of per-field overhead.
    """
    size = 0
    for field, value in record.items():
        size += 2
        if value is None:
            size += 1
        elif isinstance(value, (int, float, bool)):
            size += 8
        else:
            size += len(str(value))
        size += len(field) // 4  # amortized field-name overhead
    return max(size, 1)


def canonicalize(value: object, float_digits: int = 9) -> tuple:
    """Map a value to a totally ordered, type-tagged canonical representation.

    Floats are rounded to ``float_digits`` decimal places (integral floats
    collapse to ints) so results that differ only by floating-point
    accumulation order — which MapReduce transformations legitimately change —
    canonicalize identically.
    """
    if value is None:
        return ("none", "")
    if isinstance(value, bool):
        return ("bool", str(value))
    if isinstance(value, float) and value.is_integer():
        return ("num", int(value))
    if isinstance(value, float):
        return ("num", round(value, float_digits))
    if isinstance(value, int):
        return ("num", value)
    return ("str", str(value))


def canonical_record(record: Mapping[str, object], float_digits: int = 9) -> tuple:
    """Canonical, hashable form of one record (field order insensitive)."""
    return tuple(sorted((k, canonicalize(v, float_digits)) for k, v in record.items()))


def record_multiset(
    records: Iterable[Mapping[str, object]],
    float_digits: int = 9,
) -> "Counter[tuple]":
    """Multiset (canonical record -> count) of a record collection.

    This is the canonical form the differential-execution harness compares:
    order-insensitive, field-order-insensitive, and float-tolerant.
    """
    return Counter(canonical_record(record, float_digits) for record in records)


def records_equal(
    left: Iterable[Mapping[str, object]],
    right: Iterable[Mapping[str, object]],
    float_digits: int = 9,
) -> bool:
    """Order-insensitive multiset equality of two record collections.

    Used by correctness tests to check that a transformed plan P+ produces
    the same result as the original plan P−.
    """
    return record_multiset(left, float_digits) == record_multiset(right, float_digits)


def diff_record_multisets(
    reference: Iterable[Mapping[str, object]],
    candidate: Iterable[Mapping[str, object]],
    float_digits: int = 6,
    float_atol: float = 1e-6,
) -> Tuple[List[Record], List[Record]]:
    """Records present in one collection but not the other, tolerance-aware.

    Returns ``(missing, extra)``: records (as plain dicts rebuilt from their
    canonical form) the candidate is missing relative to the reference, and
    records it has in surplus.  After the exact (quantized) multiset diff, a
    reconciliation pass pairs off missing/extra records whose non-float fields
    match exactly and whose float fields agree within ``float_atol`` — this
    absorbs quantization-boundary artifacts where two nearly equal floats
    round to adjacent grid points.
    """
    left = record_multiset(reference, float_digits)
    right = record_multiset(candidate, float_digits)
    missing_canonical = list((left - right).elements())
    extra_canonical = list((right - left).elements())

    surviving_missing: List[tuple] = []
    for canonical in missing_canonical:
        match_index = None
        for index, other in enumerate(extra_canonical):
            if _approximately_equal(canonical, other, float_atol):
                match_index = index
                break
        if match_index is None:
            surviving_missing.append(canonical)
        else:
            extra_canonical.pop(match_index)

    return (
        [_record_from_canonical(c) for c in surviving_missing],
        [_record_from_canonical(c) for c in extra_canonical],
    )


def _approximately_equal(left: tuple, right: tuple, float_atol: float) -> bool:
    """Whether two canonical records match up to ``float_atol`` on numerics."""
    if len(left) != len(right):
        return False
    for (l_field, l_value), (r_field, r_value) in zip(left, right):
        if l_field != r_field or l_value[0] != r_value[0]:
            return False
        if l_value[0] == "num":
            l_num, r_num = l_value[1], r_value[1]
            if isinstance(l_num, int) and isinstance(r_num, int):
                # Exact integers stay exact: float() would collapse distinct
                # ints above 2**53 and hide a real divergence behind the
                # tolerance meant for float accumulation noise.
                if l_num != r_num:
                    return False
            elif abs(float(l_num) - float(r_num)) > float_atol:
                return False
        elif l_value != r_value:
            return False
    return True


def _record_from_canonical(canonical: tuple) -> Record:
    """Rebuild a plain record dict from its canonical form (for reporting)."""
    rebuilt: Record = {}
    for field, (tag, value) in canonical:
        if tag == "none":
            rebuilt[field] = None
        elif tag == "bool":
            rebuilt[field] = value == "True"
        else:
            rebuilt[field] = value
    return rebuilt
