"""Record helpers.

A *record* throughout this package is a plain ``dict`` mapping field names to
values.  Key-value pairs exchanged between MapReduce functions are
``(key_record, value_record)`` tuples of such dicts.  Schema annotations
(paper §2.2) describe keys and values as sets of field names, so dict-based
records let the optimizer reason about "data flowing unchanged" by field name.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

Record = Dict[str, object]
KeyValue = Tuple[Record, Record]


def project(record: Mapping[str, object], fields: Iterable[str]) -> Record:
    """Return a new record containing only ``fields`` (missing fields skipped)."""
    return {field: record[field] for field in fields if field in record}


def merge(*records: Mapping[str, object]) -> Record:
    """Merge records left to right; later records win on field collisions."""
    merged: Record = {}
    for record in records:
        merged.update(record)
    return merged


def sort_key_for(record: Mapping[str, object], fields: Sequence[str]) -> tuple:
    """Build a tuple usable as a sort/group key over ``fields``.

    Values are wrapped with their type name so heterogeneous columns (e.g.
    ``None`` mixed with ints) still compare deterministically.
    """
    key = []
    for field in fields:
        value = record.get(field)
        if value is None:
            key.append((0, ""))
        elif isinstance(value, bool):
            key.append((1, int(value)))
        elif isinstance(value, (int, float)):
            key.append((2, float(value)))
        else:
            key.append((3, str(value)))
    return tuple(key)


def record_size_bytes(record: Mapping[str, object]) -> int:
    """Rough serialized size of a record, used for byte-level dataflow stats.

    The estimate mirrors a simple text serialization: 8 bytes per numeric
    field, string length for strings, plus 2 bytes of per-field overhead.
    """
    size = 0
    for field, value in record.items():
        size += 2
        if value is None:
            size += 1
        elif isinstance(value, (int, float, bool)):
            size += 8
        else:
            size += len(str(value))
        size += len(field) // 4  # amortized field-name overhead
    return max(size, 1)


def records_equal(
    left: Iterable[Mapping[str, object]],
    right: Iterable[Mapping[str, object]],
) -> bool:
    """Order-insensitive multiset equality of two record collections.

    Used by correctness tests to check that a transformed plan P+ produces
    the same result as the original plan P−.
    """
    def canonical(records: Iterable[Mapping[str, object]]) -> list:
        normalized = []
        for record in records:
            normalized.append(tuple(sorted((k, _normalize(v)) for k, v in record.items())))
        return sorted(normalized)

    return canonical(left) == canonical(right)


def _normalize(value: object) -> tuple:
    """Map a value to a totally ordered, type-tagged representation."""
    if value is None:
        return ("none", "")
    if isinstance(value, bool):
        return ("bool", str(value))
    if isinstance(value, float) and value.is_integer():
        return ("num", int(value))
    if isinstance(value, float):
        return ("num", round(value, 9))
    if isinstance(value, int):
        return ("num", value)
    return ("str", str(value))
