"""Shared utilities: errors, deterministic random numbers, record helpers."""

from repro.common.errors import (
    AnnotationError,
    CostModelError,
    ExecutionError,
    OptimizationError,
    ReproError,
    WorkflowValidationError,
)
from repro.common.records import (
    project,
    record_size_bytes,
    records_equal,
    sort_key_for,
)
from repro.common.rng import DeterministicRNG

__all__ = [
    "ReproError",
    "AnnotationError",
    "CostModelError",
    "ExecutionError",
    "OptimizationError",
    "WorkflowValidationError",
    "project",
    "record_size_bytes",
    "records_equal",
    "sort_key_for",
    "DeterministicRNG",
]
