"""Differential-execution verification of Stubby's transformations.

Three layers (see ``docs/verification.md``):

* :mod:`repro.verification.generator` — seeded random workflow generation
  from the workload building blocks;
* :mod:`repro.verification.differential` — execute original vs. optimized
  plans and diff canonicalized outputs, with job-level diagnostics and
  per-transformation bisection;
* :mod:`repro.verification.faults` — seeded deterministic fault plans
  (worker kills, site exceptions/hangs, cache corruption) installed into
  the :func:`repro.common.faults.fault_site` hooks threaded through the
  execution and serving stack (``docs/resilience.md``);
* ``tests/test_differential_equivalence.py`` — the ``-m equivalence`` battery
  sweeping the optimizer variants over random and canned workflows.
"""

from repro.verification.differential import (
    CulpritReport,
    DatasetDivergence,
    DifferentialExecutor,
    DifferentialReport,
)
from repro.verification.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TerminalInjectedFault,
    corrupt_file,
    install_fault_plan,
    truncate_file,
)
from repro.verification.generator import (
    GeneratedWorkflow,
    GeneratorConfig,
    RandomWorkflowGenerator,
)

__all__ = [
    "CulpritReport",
    "DatasetDivergence",
    "DifferentialExecutor",
    "DifferentialReport",
    "FaultPlan",
    "FaultSpec",
    "GeneratedWorkflow",
    "GeneratorConfig",
    "InjectedFault",
    "RandomWorkflowGenerator",
    "TerminalInjectedFault",
    "corrupt_file",
    "install_fault_plan",
    "truncate_file",
]
