"""Seeded, deterministic fault plans for the chaos harness.

PR 8's only fault coverage was one ad-hoc SIGKILL test; this module
generalizes it into a reusable subsystem.  Production code declares
**injection sites** with :func:`repro.common.faults.fault_site`; a
:class:`FaultPlan` — an ordered list of :class:`FaultSpec` triggers — is
installed process-wide (:func:`install_fault_plan`) and decides, per
visit, whether a fault fires:

* ``exception`` / ``terminal`` — raise :class:`InjectedFault` (retryable,
  the degradation ladder steps down) or :class:`TerminalInjectedFault`
  (the request fails outright);
* ``hang`` / ``latency`` — sleep ``delay_s`` (a long sleep models a hung
  dependency a deadline must cut short, a short one models a slow task);
* ``kill`` — SIGKILL the *current process*; refused unless it runs in a
  forked worker (matching ``worker_slot``), so a misauthored plan can
  never take down the test runner;
* ``corrupt`` / ``truncate`` — deterministically mangle the file named by
  the site's ``path=`` context (seeded garbage / cut to half), modeling
  cache or catalog damage mid-run.

Determinism: a spec fires on exact **matching-visit ordinals**
(``at_hits``, 1-based, counted per process after the match filter) or on
every match up to ``max_fires``.  Every fire is counted, so a test can
reconcile observed degradations against ``plan.fires()`` exactly.  Fires
inside forked workers count in the *worker's* copy of the plan (hit
state is inherited at fork, then diverges) — the parent observes those
through their effects: a worker death, a retried task, a rejected cache
file.

``STUBBY_FAULT_PLAN`` holds a JSON list of spec dicts; the test suite's
conftest installs it when set, which is how the nightly chaos sweep runs
the whole equivalence battery under injected faults.
"""

from __future__ import annotations

import json
import os
import random
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import RetryableError, TerminalError
from repro.common.faults import active_plan, set_active_plan

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "TerminalInjectedFault",
    "corrupt_file",
    "install_fault_plan",
    "install_from_env",
    "plan_from_env",
    "truncate_file",
]

#: Environment variable holding a JSON list of spec dicts.
FAULT_PLAN_ENV_VAR = "STUBBY_FAULT_PLAN"

#: Every fault behaviour a spec can request.
FAULT_KINDS = ("exception", "terminal", "hang", "latency", "kill", "corrupt", "truncate")


class InjectedFault(RetryableError):
    """A deliberately injected transient failure (degrade, don't fail)."""


class TerminalInjectedFault(TerminalError):
    """A deliberately injected permanent failure (fail the request)."""


def corrupt_file(path: str, seed: int = 0) -> bool:
    """Overwrite ``path`` with deterministic seeded garbage; True if it existed.

    The garbage is the same length as the original content (a plausible
    bit-rot model: the file is there, the pickle inside is not), derived
    from ``seed`` and the file name only — re-running a scenario mangles
    the file identically.
    """
    if not os.path.exists(path):
        return False
    size = max(1, os.path.getsize(path))
    rng = random.Random(f"fault-garbage:{seed}:{os.path.basename(path)}")
    with open(path, "wb") as handle:
        handle.write(rng.randbytes(size))
    return True


def truncate_file(path: str, fraction: float = 0.5) -> bool:
    """Cut ``path`` to ``fraction`` of its size (a torn write / full disk)."""
    if not os.path.exists(path):
        return False
    if not 0.0 <= fraction < 1.0:
        raise ValueError("truncate fraction must be in [0, 1)")
    keep = int(os.path.getsize(path) * fraction)
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return True


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic trigger: where, what, and on which visits.

    ``site`` names the injection site exactly; ``match`` filters visits by
    their keyword context (every key must be present and equal — e.g.
    ``{"worker_slot": 0}`` arms only one fork-pool worker).  ``at_hits``
    (1-based ordinals of *matching* visits) pins exact firing points;
    empty means every matching visit fires, bounded by ``max_fires``.
    """

    site: str
    kind: str = "exception"
    match: Mapping[str, Any] = field(default_factory=dict)
    at_hits: Tuple[int, ...] = ()
    max_fires: Optional[int] = None
    delay_s: float = 0.05
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        object.__setattr__(self, "at_hits", tuple(int(n) for n in self.at_hits))
        if any(n < 1 for n in self.at_hits):
            raise ValueError("at_hits ordinals are 1-based and must be >= 1")

    def matches(self, info: Mapping[str, Any]) -> bool:
        for key, expected in self.match.items():
            if key not in info or info[key] != expected:
                return False
        return True

    def as_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "kind": self.kind,
            "match": dict(self.match),
            "at_hits": list(self.at_hits),
            "max_fires": self.max_fires,
            "delay_s": self.delay_s,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "FaultSpec":
        return cls(
            site=raw["site"],
            kind=raw.get("kind", "exception"),
            match=dict(raw.get("match", {})),
            at_hits=tuple(raw.get("at_hits", ())),
            max_fires=raw.get("max_fires"),
            delay_s=float(raw.get("delay_s", 0.05)),
            message=raw.get("message", ""),
        )


class FaultPlan:
    """An installed set of :class:`FaultSpec` triggers with exact accounting."""

    def __init__(
        self, specs: Sequence[FaultSpec], seed: int = 0, name: str = "faultplan"
    ) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self.name = name
        self._lock = threading.Lock()
        self._hits: List[int] = [0] * len(self.specs)
        self._fires: List[int] = [0] * len(self.specs)
        self._site_visits: Dict[str, int] = {}
        #: Fork detector for the kill guard: only a process that is *not*
        #: the installing one (i.e. a forked worker) may be SIGKILLed.
        self._installed_pid = os.getpid()

    # -------------------------------------------------------------- the hook
    def visit(self, site: str, info: Mapping[str, Any]) -> None:
        """Called by :func:`repro.common.faults.fault_site` on every visit."""
        to_fire: List[Tuple[int, FaultSpec]] = []
        with self._lock:
            self._site_visits[site] = self._site_visits.get(site, 0) + 1
            for index, spec in enumerate(self.specs):
                if spec.site != site or not spec.matches(info):
                    continue
                self._hits[index] += 1
                hit = self._hits[index]
                if spec.at_hits:
                    fire = hit in spec.at_hits
                else:
                    fire = spec.max_fires is None or self._fires[index] < spec.max_fires
                if fire and spec.max_fires is not None and self._fires[index] >= spec.max_fires:
                    fire = False
                if fire:
                    self._fires[index] += 1
                    to_fire.append((self._fires[index], spec))
        for fire_number, spec in to_fire:
            self._fire(spec, fire_number, info)

    def _fire(self, spec: FaultSpec, fire_number: int, info: Mapping[str, Any]) -> None:
        detail = spec.message or (
            f"injected {spec.kind} at {spec.site} (fire #{fire_number}, plan {self.name!r})"
        )
        if spec.kind == "exception":
            raise InjectedFault(detail)
        if spec.kind == "terminal":
            raise TerminalInjectedFault(detail)
        if spec.kind in ("hang", "latency"):
            time.sleep(spec.delay_s)
            return
        if spec.kind == "kill":
            if os.getpid() == self._installed_pid:
                # Never SIGKILL the process that installed the plan (the
                # test runner / the server parent): a kill spec is meant
                # for forked workers, matched by worker_slot.
                raise TerminalInjectedFault(
                    f"kill fault at {spec.site} refused: not in a forked worker "
                    "(add a worker_slot match to target a process-pool worker)"
                )
            os.kill(os.getpid(), signal.SIGKILL)
            return  # pragma: no cover - unreachable
        path = info.get("path")
        if not path:
            return  # file faults need a site that names its file
        if spec.kind == "corrupt":
            corrupt_file(str(path), seed=self.seed)
        elif spec.kind == "truncate":
            truncate_file(str(path))

    # ------------------------------------------------------------ accounting
    def fires(self, site: Optional[str] = None) -> int:
        """Total fires in *this process*, optionally for one site only."""
        with self._lock:
            return sum(
                count
                for spec, count in zip(self.specs, self._fires)
                if site is None or spec.site == site
            )

    def report(self) -> Dict[str, Any]:
        """Exact parent-side accounting for reconciliation assertions."""
        with self._lock:
            return {
                "name": self.name,
                "seed": self.seed,
                "site_visits": dict(self._site_visits),
                "specs": [
                    {**spec.as_dict(), "hits": hits, "fires": fires}
                    for spec, hits, fires in zip(self.specs, self._hits, self._fires)
                ],
                "total_fires": sum(self._fires),
            }

    def as_json(self) -> str:
        """The plan's specs as the JSON the env variable accepts."""
        return json.dumps([spec.as_dict() for spec in self.specs])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(name={self.name!r}, specs={len(self.specs)}, fires={self.fires()})"


@contextmanager
def install_fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` process-wide for the duration of the block."""
    previous = active_plan()
    set_active_plan(plan)
    try:
        yield plan
    finally:
        set_active_plan(previous)


def plan_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """Parse ``STUBBY_FAULT_PLAN`` into a plan; ``None`` when unset/empty.

    A malformed value raises — a chaos run silently running without its
    faults would report a misleading all-green.
    """
    raw = (environ if environ is not None else os.environ).get(FAULT_PLAN_ENV_VAR, "").strip()
    if not raw:
        return None
    specs = [FaultSpec.from_dict(item) for item in json.loads(raw)]
    seed = int((environ if environ is not None else os.environ).get("STUBBY_FAULT_SEED", "0"))
    return FaultPlan(specs, seed=seed, name="env")


def install_from_env() -> Optional[FaultPlan]:
    """Install the env-configured plan (if any) and return it."""
    plan = plan_from_env()
    if plan is not None:
        set_active_plan(plan)
    return plan
