"""Differential execution: prove an optimized plan equals the original.

Stubby's transformations are only useful if they are semantics-preserving
rewrites.  This module *executes* both sides — the unoptimized workflow and a
candidate (optimized) plan — on the same base datasets through the local
engine, and compares canonicalized outputs: sorted key/value multisets with
float tolerance (transformations legitimately change float accumulation
order, never the multiset of results).

When the candidate diverges, the report localizes the failure:

* **dataset level** — which output dataset differs, with missing/extra
  record samples and counts;
* **job level** — which job produced the diverging dataset on each side;
* **transformation level** — :meth:`DifferentialExecutor.verify_result`
  replays the per-unit plan snapshots recorded by the search
  (:class:`~repro.core.search.UnitReport`) and bisects the divergence to the
  first optimization unit — and therefore the specific transformation
  applications — that introduced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.records import Record, diff_record_multisets
from repro.core.plan import Plan
from repro.dfs.dataset import Dataset
from repro.workflow.executor import WorkflowExecutor
from repro.workflow.graph import Workflow


@dataclass
class DatasetDivergence:
    """One output dataset on which reference and candidate disagree."""

    dataset: str
    #: Jobs that produced the dataset on each side (None: base/missing).
    reference_job: Optional[str] = None
    candidate_job: Optional[str] = None
    missing_count: int = 0
    extra_count: int = 0
    #: Record-level samples (bounded) of what diverged.
    missing_sample: List[Record] = field(default_factory=list)
    extra_sample: List[Record] = field(default_factory=list)
    #: Set when the candidate never produced the dataset at all.
    dataset_absent: bool = False

    def describe(self) -> str:
        """One-paragraph, job/record-level description of this divergence."""
        producer = self.candidate_job or self.reference_job or "<base dataset>"
        if self.dataset_absent:
            return (
                f"dataset {self.dataset!r}: absent from the candidate plan "
                f"(reference producer: {self.reference_job!r})"
            )
        lines = [
            f"dataset {self.dataset!r} (reference job {self.reference_job!r}, "
            f"candidate job {producer!r}): "
            f"{self.missing_count} record(s) missing, {self.extra_count} extra"
        ]
        for record in self.missing_sample:
            lines.append(f"    missing: {record!r}")
        for record in self.extra_sample:
            lines.append(f"    extra:   {record!r}")
        return "\n".join(lines)


@dataclass
class CulpritReport:
    """The optimization unit a divergence was bisected to."""

    unit_index: int
    phase: str
    unit_jobs: Tuple[str, ...]
    transformations: Tuple[str, ...]
    divergences: List[DatasetDivergence] = field(default_factory=list)
    error: Optional[str] = None

    def describe(self) -> str:
        """Human-readable summary naming the guilty transformations."""
        what = ", ".join(self.transformations) or "<no structural transformation>"
        lines = [
            f"first divergence introduced by unit #{self.unit_index} "
            f"({self.phase} phase, jobs {list(self.unit_jobs)}): {what}"
        ]
        if self.error:
            lines.append(f"  candidate execution failed: {self.error}")
        lines.extend("  " + d.describe() for d in self.divergences)
        return "\n".join(lines)


@dataclass
class DifferentialReport:
    """Outcome of one differential verification run."""

    workflow_name: str
    optimizer: str = ""
    compared_datasets: List[str] = field(default_factory=list)
    divergences: List[DatasetDivergence] = field(default_factory=list)
    culprit: Optional[CulpritReport] = None
    #: Exception text when the candidate plan failed to execute at all.
    error: Optional[str] = None

    @property
    def equivalent(self) -> bool:
        """True when the candidate produced exactly the reference outputs."""
        return not self.divergences and self.error is None

    def describe(self) -> str:
        """Full, human-readable divergence report."""
        header = f"differential report for {self.workflow_name!r}"
        if self.optimizer:
            header += f" optimized by {self.optimizer}"
        if self.equivalent:
            return f"{header}: equivalent on {len(self.compared_datasets)} dataset(s)"
        lines = [f"{header}: NOT equivalent"]
        if self.error:
            lines.append(f"  candidate execution failed: {self.error}")
        lines.extend("  " + d.describe() for d in self.divergences)
        if self.culprit is not None:
            lines.append(self.culprit.describe())
        return "\n".join(lines)


class DifferentialExecutor:
    """Runs original and candidate plans and compares canonicalized outputs."""

    def __init__(
        self,
        executor: Optional[WorkflowExecutor] = None,
        float_digits: int = 6,
        float_atol: float = 1e-6,
        max_samples: int = 5,
    ) -> None:
        self.executor = executor or WorkflowExecutor()
        self.float_digits = float_digits
        self.float_atol = float_atol
        self.max_samples = max_samples

    # ------------------------------------------------------------------ API
    def compare(
        self,
        reference: Workflow,
        candidate,
        base_datasets: Mapping[str, Dataset],
        datasets: Optional[Sequence[str]] = None,
    ) -> DifferentialReport:
        """Execute ``reference`` and ``candidate`` and diff their outputs.

        ``candidate`` may be a :class:`Workflow` or a :class:`Plan`.  By
        default the *terminal* datasets of the reference workflow (its
        results) are compared; intermediate datasets are fair game for the
        optimizer to restructure or eliminate.
        """
        compared = self._compared_datasets(reference, datasets)
        reference_outputs = self._execute(reference, base_datasets)
        return self._compare_against(
            reference, reference_outputs, candidate, base_datasets, compared
        )

    def verify_result(
        self,
        reference: Workflow,
        base_datasets: Mapping[str, Dataset],
        result,
        datasets: Optional[Sequence[str]] = None,
    ) -> DifferentialReport:
        """Verify an :class:`~repro.core.optimizer.OptimizationResult`.

        On divergence, the per-unit plan snapshots in ``result.unit_reports``
        are replayed in order to bisect the failure to the first unit whose
        optimized plan no longer reproduces the reference outputs.  The
        reference workflow is executed exactly once; its outputs are reused
        for the initial comparison and for every bisection step.
        """
        compared = self._compared_datasets(reference, datasets)
        reference_outputs = self._execute(reference, base_datasets)
        report = self._compare_against(
            reference, reference_outputs, result.plan, base_datasets, compared
        )
        report.optimizer = getattr(result, "optimizer", "") or ""
        if not report.equivalent and getattr(result, "unit_reports", None):
            report.culprit = self._bisect(
                reference, reference_outputs, base_datasets, result.unit_reports, compared
            )
        return report

    # -------------------------------------------------------------- internals
    def _execute(
        self, target, base_datasets: Mapping[str, Dataset]
    ) -> Dict[str, List[Record]]:
        """Run a workflow or plan, returning {dataset name: records} per job."""
        if isinstance(target, Plan):
            execution, _ = self.executor.execute_plan(
                target.copy(), base_datasets=base_datasets, collect_outputs=True
            )
        else:
            execution, _ = self.executor.execute(
                target.copy(), base_datasets=base_datasets, collect_outputs=True
            )
        outputs: Dict[str, List[Record]] = {}
        for job_outputs in execution.job_outputs.values():
            outputs.update(job_outputs)
        return outputs

    def _diff_outputs(
        self,
        reference: Workflow,
        candidate: Workflow,
        reference_outputs: Mapping[str, List[Record]],
        candidate_outputs: Mapping[str, List[Record]],
        compared: Sequence[str],
    ) -> List[DatasetDivergence]:
        divergences: List[DatasetDivergence] = []
        for name in compared:
            reference_job = self._producer_name(reference, name)
            if name not in candidate_outputs:
                divergences.append(
                    DatasetDivergence(
                        dataset=name,
                        reference_job=reference_job,
                        dataset_absent=True,
                        missing_count=len(reference_outputs.get(name, [])),
                    )
                )
                continue
            missing, extra = diff_record_multisets(
                reference_outputs.get(name, []),
                candidate_outputs[name],
                float_digits=self.float_digits,
                float_atol=self.float_atol,
            )
            if not missing and not extra:
                continue
            divergences.append(
                DatasetDivergence(
                    dataset=name,
                    reference_job=reference_job,
                    candidate_job=self._producer_name(candidate, name),
                    missing_count=len(missing),
                    extra_count=len(extra),
                    missing_sample=missing[: self.max_samples],
                    extra_sample=extra[: self.max_samples],
                )
            )
        return divergences

    def _bisect(
        self,
        reference: Workflow,
        reference_outputs: Mapping[str, List[Record]],
        base_datasets: Mapping[str, Dataset],
        unit_reports: Sequence,
        compared: Sequence[str],
    ) -> Optional[CulpritReport]:
        """Find the first unit whose after-plan diverges from the reference."""
        for index, unit_report in enumerate(unit_reports):
            plan_after = getattr(unit_report, "plan_after", None)
            if plan_after is None:
                continue
            step = self._compare_against(
                reference, reference_outputs, plan_after, base_datasets, compared
            )
            if step.equivalent:
                continue
            return CulpritReport(
                unit_index=index,
                phase=getattr(unit_report, "phase", "?"),
                unit_jobs=tuple(getattr(unit_report.unit, "jobs", ())),
                transformations=tuple(getattr(unit_report, "chosen_transformations", ())),
                divergences=step.divergences,
                error=step.error,
            )
        return None

    @staticmethod
    def _compared_datasets(
        reference: Workflow, datasets: Optional[Sequence[str]]
    ) -> List[str]:
        """Datasets to diff: the reference's terminal *produced* results.

        Unconsumed base datasets are inputs, not outputs, and intermediates
        are the optimizer's to restructure or eliminate.
        """
        if datasets is not None:
            return list(datasets)
        return [
            d.name
            for d in reference.terminal_datasets()
            if reference.producer_of(d.name) is not None
        ]

    def _compare_against(
        self,
        reference: Workflow,
        reference_outputs: Mapping[str, List[Record]],
        candidate,
        base_datasets: Mapping[str, Dataset],
        compared: Sequence[str],
    ) -> DifferentialReport:
        """Diff a candidate against already-computed reference outputs."""
        candidate_workflow = candidate.workflow if isinstance(candidate, Plan) else candidate
        report = DifferentialReport(
            workflow_name=reference.name, compared_datasets=list(compared)
        )
        try:
            candidate_outputs = self._execute(candidate, base_datasets)
        except Exception as exc:  # noqa: BLE001 - the report carries the cause
            report.error = f"{type(exc).__name__}: {exc}"
            return report
        report.divergences = self._diff_outputs(
            reference, candidate_workflow, reference_outputs, candidate_outputs, compared
        )
        return report

    @staticmethod
    def _producer_name(workflow: Workflow, dataset_name: str) -> Optional[str]:
        if not workflow.has_dataset(dataset_name):
            return None
        producer = workflow.producer_of(dataset_name)
        return producer.name if producer is not None else None
