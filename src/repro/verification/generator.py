"""Randomized workflow generation for differential verification.

The generator composes arbitrary DAGs from the same building blocks the
evaluation workloads use — the map/reduce function factories of
:mod:`repro.workloads.common` and the annotations of
:mod:`repro.workflow.annotations` — under a seeded
:class:`~repro.common.rng.DeterministicRNG`.  The same seed always yields the
same workflow *and* the same base datasets, so any divergence the
differential harness finds is reproducible from its seed alone.

Every generated job is drawn from a catalog of *order-insensitive* shapes
(sums, min/max/avg/count, distinct counts, sorted concatenation, identity
re-shuffles, projections, filters): MapReduce transformations preserve the
multiset of results but not intra-group value order, so reducers whose output
depends on value arrival order would flag false divergences.

Knobs (see :class:`GeneratorConfig`):

* ``min_jobs``/``max_jobs`` and ``max_depth`` control DAG size and depth;
* ``max_fanout`` and ``share_probability`` control how often several jobs
  read the same dataset (horizontal-packing opportunities);
* ``depth_bias`` controls how often a job consumes the newest dataset
  (vertical-packing chains);
* ``annotation_density`` controls the fraction of jobs keeping their schema
  annotations (absent annotations must disable transformations, never break
  correctness);
* ``profile`` runs the profiler so the What-if engine sees real statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.rng import DeterministicRNG
from repro.core.plan import Plan
from repro.dfs.dataset import Dataset
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import MapReduceJob, simple_job
from repro.profiler.profiler import Profiler
from repro.workflow.annotations import FilterAnnotation, JobAnnotations, SchemaAnnotation
from repro.workflow.graph import Workflow
from repro.workloads import common

#: Fields every generated base-dataset record carries.
BASE_FIELDS: Tuple[str, ...] = ("k", "g", "x", "y", "n")


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable knobs of the random workflow generator."""

    min_jobs: int = 2
    max_jobs: int = 6
    #: Maximum chain length from a base dataset to any job's input.
    max_depth: int = 4
    #: Maximum number of consumer jobs per dataset.
    max_fanout: int = 3
    #: Probability that a job re-reads an already-consumed dataset
    #: (creating scan-sharing / horizontal-packing opportunities).
    share_probability: float = 0.35
    #: Probability that a chain-extending job consumes the newest dataset.
    depth_bias: float = 0.6
    #: Probability that any one job keeps its schema annotation.
    annotation_density: float = 1.0
    #: Probability that a reduce job carries a compatible combiner.
    combiner_probability: float = 0.5
    #: Probability that a map-side filter (plus filter annotation) is added.
    filter_probability: float = 0.3
    #: Number of base datasets to generate (inclusive bounds).
    min_base_datasets: int = 1
    max_base_datasets: int = 2
    #: Records per generated base dataset.
    records_per_dataset: int = 220
    #: Distinct values of the primary group key ``k``.
    num_groups: int = 12
    #: Whether to run the profiler (attaches profile + dataset annotations).
    profile: bool = True

    def __post_init__(self) -> None:
        if self.min_jobs < 1 or self.max_jobs < self.min_jobs:
            raise ValueError("need 1 <= min_jobs <= max_jobs")
        if self.min_base_datasets < 1 or self.max_base_datasets < self.min_base_datasets:
            raise ValueError("need 1 <= min_base_datasets <= max_base_datasets")
        if self.max_depth < 1 or self.max_fanout < 1:
            raise ValueError("max_depth and max_fanout must be positive")


@dataclass
class GeneratedWorkflow:
    """A generated workflow, its inputs, and the seed that reproduces it."""

    seed: int
    workflow: Workflow
    base_datasets: Dict[str, Dataset]
    config: GeneratorConfig = field(default_factory=GeneratorConfig)

    @property
    def plan(self) -> Plan:
        """A fresh plan over a copy of the workflow, ready for optimization."""
        return Plan(self.workflow.copy())


# One catalog entry builds a job reading ``input_name`` and writing
# ``output_name`` with the given rng, and returns (job, annotations).
_JobBuilder = Callable[[str, str, str, DeterministicRNG, GeneratorConfig], Tuple[MapReduceJob, JobAnnotations]]


class RandomWorkflowGenerator:
    """Seeded generator of random-but-valid annotated MapReduce workflows."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        self._catalog: List[Tuple[str, _JobBuilder]] = [
            ("project", self._build_project),
            ("filter", self._build_filter),
            ("sum", self._build_sum),
            ("aggregate", self._build_aggregate),
            ("distinct", self._build_distinct),
            ("collect", self._build_collect),
            ("reshuffle", self._build_reshuffle),
        ]

    # ------------------------------------------------------------------ API
    def generate(self, seed: int) -> GeneratedWorkflow:
        """Generate the workflow for ``seed`` (same seed, same workflow)."""
        config = self.config
        rng = DeterministicRNG(seed)
        data_rng = rng.fork("data")
        structure_rng = rng.fork("structure")

        workflow = Workflow(name=f"rand-{seed}")
        base_datasets: Dict[str, Dataset] = {}
        num_base = structure_rng.randint(config.min_base_datasets, config.max_base_datasets)
        for index in range(num_base):
            name = f"rand{seed}_src{index}"
            base_datasets[name] = self._make_dataset(name, data_rng.fork(name))

        depth: Dict[str, int] = {name: 0 for name in base_datasets}
        consumers: Dict[str, int] = {name: 0 for name in base_datasets}

        num_jobs = structure_rng.randint(config.min_jobs, config.max_jobs)
        for index in range(num_jobs):
            input_name = self._pick_input(structure_rng, depth, consumers)
            output_name = f"rand{seed}_d{index}"
            kind, builder = structure_rng.choice(self._catalog)
            job, annotations = builder(
                f"R{seed}_J{index}", input_name, output_name, structure_rng.fork(f"job{index}"), config
            )
            if structure_rng.random() > config.annotation_density:
                annotations = JobAnnotations(filter=annotations.filter)
            workflow.add_job(job, annotations)
            consumers[input_name] = consumers.get(input_name, 0) + 1
            consumers.setdefault(output_name, 0)
            depth[output_name] = depth.get(input_name, 0) + 1

        return self._finalize(seed, workflow, base_datasets)

    def with_config(self, **overrides) -> "RandomWorkflowGenerator":
        """A generator whose config replaces the given fields."""
        return RandomWorkflowGenerator(replace(self.config, **overrides))

    def diamond_shared_sink(self, seed: int) -> GeneratedWorkflow:
        """A diamond fan-in feeding a shared-scan sink (fixed workload shape).

        Structure (all from the random catalog's building blocks, sized by
        ``seed``)::

                       src
                      /    \\
                (project)  (filter)      <- diamond branches share src's scan
                     |        |
                    d0        d1
                      \\      /
                     (fan-in sum)        <- one pipeline reading BOTH datasets
                          |
                          d2
                        /    \\
                (aggregate)  (distinct)  <- sink jobs share d2's scan

        The shape exercises exactly the corners the random DAGs rarely hit
        together: a multi-input pipeline (fan-in), two horizontal-packing
        opportunities at different depths, and vertical chains above and
        below the fan-in.  Profiled and validated like every generated
        workflow; the same seed always yields the same workflow and data.
        """
        config = self.config
        rng = DeterministicRNG(seed)
        data_rng = rng.fork("diamond-data")
        job_rng = rng.fork("diamond-jobs")

        workflow = Workflow(name=f"diamond-{seed}")
        src = f"diamond{seed}_src"
        base_datasets = {src: self._make_dataset(src, data_rng.fork(src))}

        branch_a, annotations_a = self._build_project(
            f"D{seed}_J0", src, f"diamond{seed}_d0", job_rng.fork("j0"), config
        )
        branch_b, annotations_b = self._build_filter(
            f"D{seed}_J1", src, f"diamond{seed}_d1", job_rng.fork("j1"), config
        )
        workflow.add_job(branch_a, annotations_a)
        workflow.add_job(branch_b, annotations_b)

        fan_in, fan_in_annotations = self._build_sum(
            f"D{seed}_J2", f"diamond{seed}_d0", f"diamond{seed}_d2", job_rng.fork("j2"), config
        )
        # Widen the sum job's single pipeline to read both diamond branches:
        # the map keys by "k" either way, and summing is order-insensitive,
        # so the fan-in is a pure multiset union of the two inputs.
        fan_in.pipelines[0].input_datasets = (f"diamond{seed}_d0", f"diamond{seed}_d1")
        workflow.add_job(fan_in, fan_in_annotations)

        sink_a, sink_a_annotations = self._build_aggregate(
            f"D{seed}_J3", f"diamond{seed}_d2", f"diamond{seed}_d3", job_rng.fork("j3"), config
        )
        sink_b, sink_b_annotations = self._build_distinct(
            f"D{seed}_J4", f"diamond{seed}_d2", f"diamond{seed}_d4", job_rng.fork("j4"), config
        )
        workflow.add_job(sink_a, sink_a_annotations)
        workflow.add_job(sink_b, sink_b_annotations)
        return self._finalize(seed, workflow, base_datasets)

    def wide_fanout(self, seed: int, num_jobs: int = 32) -> GeneratedWorkflow:
        """A telemetry-style wide fan-out: one source, ``num_jobs`` siblings.

        Every job reads the single base dataset (one per-channel extraction
        each, à la a telemetry server fanning one raw log into per-metric
        streams), so the whole workflow is one level of ``num_jobs``
        concurrently runnable jobs — the regime where brute-force topology
        scans cost O(jobs²) per costing query and the adjacency index must
        answer in O(jobs).  Shapes are drawn from the catalog entries whose
        outputs are independent (no job reads another's output).
        """
        if num_jobs < 1:
            raise ValueError("num_jobs must be positive")
        config = self.config
        rng = DeterministicRNG(seed)
        data_rng = rng.fork("fanout-data")
        job_rng = rng.fork("fanout-jobs")

        workflow = Workflow(name=f"fanout-{seed}-{num_jobs}")
        src = f"fanout{seed}_src"
        base_datasets = {src: self._make_dataset(src, data_rng.fork(src))}
        for index in range(num_jobs):
            kind, builder = job_rng.choice(self._catalog)
            job, annotations = builder(
                f"F{seed}_J{index}", src, f"fanout{seed}_d{index}",
                job_rng.fork(f"job{index}"), config,
            )
            workflow.add_job(job, annotations)
        return self._finalize(seed, workflow, base_datasets)

    def telemetry_rollup(
        self, seed: int, num_channels: int = 32, fanin: int = 8
    ) -> GeneratedWorkflow:
        """Wide fan-out into staged fan-in: channels → rollups → one total.

        Structure (telemetry-pipeline shaped)::

                                src
                 /      /       |        \\      \\
               (ch0)  (ch1)   (ch2)  ...  (chN-1)     <- per-channel extraction
                 |      |       |          |
                 d0     d1      d2   ...   dN-1
                  \\_____|______/ ... \\____/
                   (rollup0)    ...   (rollupM)       <- one per ``fanin`` channels
                       \\______________/
                           (total)                    <- grand rollup (fan-in M)

        ``num_channels`` parallel channel jobs (catalog shapes whose outputs
        keep the ``k``/``x`` fields flowing), ``ceil(num_channels/fanin)``
        multi-input rollup sums, and one grand total — wide levels *and*
        many-to-one fan-in, the two shapes that break quadratic graph scans
        first.  Total jobs: ``num_channels + ceil(num_channels/fanin) + 1``
        (the grand total is skipped when only one rollup exists).
        """
        if num_channels < 1 or fanin < 1:
            raise ValueError("num_channels and fanin must be positive")
        config = self.config
        rng = DeterministicRNG(seed)
        data_rng = rng.fork("telemetry-data")
        job_rng = rng.fork("telemetry-jobs")

        workflow = Workflow(name=f"telemetry-{seed}-{num_channels}")
        src = f"telemetry{seed}_src"
        base_datasets = {src: self._make_dataset(src, data_rng.fork(src))}

        # Channel shapes must keep "k" and "x" flowing for the rollup sums.
        channel_builders = (self._build_project, self._build_filter, self._build_sum)
        channel_outputs: List[str] = []
        for index in range(num_channels):
            builder = job_rng.choice(channel_builders)
            output = f"telemetry{seed}_ch{index}"
            job, annotations = builder(
                f"T{seed}_C{index}", src, output, job_rng.fork(f"ch{index}"), config
            )
            workflow.add_job(job, annotations)
            channel_outputs.append(output)

        rollup_outputs: List[str] = []
        for index, start in enumerate(range(0, num_channels, fanin)):
            group = channel_outputs[start : start + fanin]
            output = f"telemetry{seed}_roll{index}"
            job, annotations = self._build_sum(
                f"T{seed}_R{index}", group[0], output, job_rng.fork(f"roll{index}"), config
            )
            job.pipelines[0].input_datasets = tuple(group)
            workflow.add_job(job, annotations)
            rollup_outputs.append(output)

        if len(rollup_outputs) > 1:
            total, total_annotations = self._build_sum(
                f"T{seed}_TOTAL", rollup_outputs[0], f"telemetry{seed}_total",
                job_rng.fork("total"), config,
            )
            total.pipelines[0].input_datasets = tuple(rollup_outputs)
            workflow.add_job(total, total_annotations)
        return self._finalize(seed, workflow, base_datasets)

    def shared_prefix_pair(
        self, seed: int
    ) -> Tuple[GeneratedWorkflow, GeneratedWorkflow]:
        """Two workflows with byte-identical producing prefixes, different tails.

        Structure (both workflows, over identical base data)::

                 src ──(J0 project)── p0 ──(J1 sum)── p1 ──┬── tail
                                                           │
              workflow A tail: (aggregate) → a_out         │
              workflow B tail: (distinct)  → b_out  +  (collect) → b_out2

        The prefix jobs, their configurations, and the base records are
        regenerated from the same seeded forks for both workflows, so the
        producing subgraphs of ``p0`` and ``p1`` have **equal content
        signatures** across the pair — executing one workflow and
        registering its intermediates in a
        :class:`~repro.core.subresults.SubResultCatalog` makes the other's
        prefix reusable (a cross-workflow hit).  This is the shape the
        reuse equivalence sweep and ``BENCH_subresult_reuse.json`` lean on;
        everything the differential battery needs (profiles, annotations,
        validation) is attached as usual.
        """
        first = self._shared_prefix_workflow(seed, variant="a")
        second = self._shared_prefix_workflow(seed, variant="b")
        return first, second

    def _shared_prefix_workflow(self, seed: int, variant: str) -> GeneratedWorkflow:
        """One member of :meth:`shared_prefix_pair` (``variant``: "a"/"b").

        The prefix is rebuilt from identical rng forks for every variant —
        same job names, same costs, same configs, same base records — so its
        content signature is variant-independent by construction.
        """
        config = self.config
        rng = DeterministicRNG(seed)
        data_rng = rng.fork("shared-data")
        prefix_rng = rng.fork("shared-prefix")
        tail_rng = rng.fork(f"shared-tail-{variant}")

        workflow = Workflow(name=f"shared{variant.upper()}-{seed}")
        src = f"shared{seed}_src"
        base_datasets = {src: self._make_dataset(src, data_rng.fork(src))}

        p0, p1 = f"shared{seed}_p0", f"shared{seed}_p1"
        head, head_annotations = self._build_project(
            f"S{seed}_J0", src, p0, prefix_rng.fork("j0"), config
        )
        mid, mid_annotations = self._build_sum(
            f"S{seed}_J1", p0, p1, prefix_rng.fork("j1"), config
        )
        workflow.add_job(head, head_annotations)
        workflow.add_job(mid, mid_annotations)

        if variant == "a":
            tail, tail_annotations = self._build_aggregate(
                f"S{seed}_A0", p1, f"shared{seed}_aout", tail_rng.fork("a0"), config
            )
            workflow.add_job(tail, tail_annotations)
        else:
            tail, tail_annotations = self._build_distinct(
                f"S{seed}_B0", p1, f"shared{seed}_bout", tail_rng.fork("b0"), config
            )
            other, other_annotations = self._build_collect(
                f"S{seed}_B1", p1, f"shared{seed}_bout2", tail_rng.fork("b1"), config
            )
            workflow.add_job(tail, tail_annotations)
            workflow.add_job(other, other_annotations)
        return self._finalize(seed, workflow, base_datasets)

    def _finalize(
        self, seed: int, workflow: Workflow, base_datasets: Dict[str, Dataset]
    ) -> GeneratedWorkflow:
        """Attach base data, profile (if configured), validate, and wrap."""
        profiler = Profiler()
        for name, dataset in base_datasets.items():
            workflow.add_dataset(name, dataset=dataset, annotation=profiler.annotate_dataset(dataset))
        if self.config.profile:
            profiler.profile_workflow(workflow, base_datasets)
        workflow.validate()
        return GeneratedWorkflow(
            seed=seed, workflow=workflow, base_datasets=base_datasets, config=self.config
        )

    # ----------------------------------------------------------- DAG shaping
    def _pick_input(
        self,
        rng: DeterministicRNG,
        depth: Dict[str, int],
        consumers: Dict[str, int],
    ) -> str:
        """Pick the dataset the next job reads, honoring depth/fan-out caps."""
        config = self.config
        names = list(depth)
        shallow = [n for n in names if depth[n] < config.max_depth]
        candidates = shallow or names
        consumed = [n for n in candidates if consumers.get(n, 0) > 0]
        sharable = [n for n in consumed if consumers.get(n, 0) < config.max_fanout]
        if sharable and rng.random() < config.share_probability:
            return rng.choice(sharable)
        fresh = [n for n in candidates if consumers.get(n, 0) == 0]
        if fresh:
            if rng.random() < config.depth_bias:
                return fresh[-1]  # the newest unconsumed dataset -> deep chains
            return rng.choice(fresh)
        open_candidates = [n for n in candidates if consumers.get(n, 0) < config.max_fanout]
        return rng.choice(open_candidates or candidates)

    # ------------------------------------------------------------- datasets
    def _make_dataset(self, name: str, rng: DeterministicRNG) -> Dataset:
        records = []
        for _ in range(self.config.records_per_dataset):
            records.append(
                {
                    "k": f"k{rng.randint(0, self.config.num_groups - 1):02d}",
                    "g": rng.randint(0, 9),
                    "x": round(rng.uniform(0.0, 100.0), 6),
                    "y": round(rng.gauss(50.0, 20.0), 6),
                    "n": 1.0,
                }
            )
        return Dataset(name, records=records)

    # ------------------------------------------------------------ job shapes
    # Every builder keeps field names flowing unchanged where the paper's
    # conventions require it (identical names across K2/K3 signal data that
    # flows through the reduce unchanged), which is what makes the packing
    # transformations applicable to generated workflows.

    @staticmethod
    def _build_project(
        name: str, input_name: str, output_name: str, rng: DeterministicRNG, config: GeneratorConfig
    ) -> Tuple[MapReduceJob, JobAnnotations]:
        value_fields = ("g", "x", "y", "n")
        job = simple_job(
            name=name,
            input_dataset=input_name,
            output_dataset=output_name,
            map_fn=common.key_by(("k",), value_fields=value_fields),
            map_cpu_cost=1.0 + rng.random(),
        )
        annotations = JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=(), v1=BASE_FIELDS, k2=("k",), v2=value_fields, k3=("k",), v3=value_fields
            )
        )
        return job, annotations

    @staticmethod
    def _build_filter(
        name: str, input_name: str, output_name: str, rng: DeterministicRNG, config: GeneratorConfig
    ) -> Tuple[MapReduceJob, JobAnnotations]:
        low = round(rng.uniform(0.0, 40.0), 3)
        high = round(low + rng.uniform(20.0, 60.0), 3)
        value_fields = ("g", "x", "y", "n")
        job = simple_job(
            name=name,
            input_dataset=input_name,
            output_dataset=output_name,
            map_fn=common.key_by(
                ("k",), value_fields=value_fields, filter_fn=common.range_filter("x", low, high)
            ),
            map_cpu_cost=1.0 + rng.random(),
        )
        annotations = JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=(), v1=BASE_FIELDS, k2=("k",), v2=value_fields, k3=("k",), v3=value_fields
            ),
            filter=FilterAnnotation.of(x=(low, high)),
        )
        return job, annotations

    @staticmethod
    def _build_sum(
        name: str, input_name: str, output_name: str, rng: DeterministicRNG, config: GeneratorConfig
    ) -> Tuple[MapReduceJob, JobAnnotations]:
        combiner = common.sum_combiner("x") if rng.random() < config.combiner_probability else None
        job = simple_job(
            name=name,
            input_dataset=input_name,
            output_dataset=output_name,
            map_fn=common.key_by(("k",), value_fields=("x",), add_counter="n"),
            reduce_fn=common.sum_reduce("x", "x"),
            group_fields=("k",),
            combiner=combiner,
            reduce_cpu_cost=1.0 + rng.random(),
            config=JobConfig(num_reduce_tasks=rng.randint(1, 8)),
        )
        annotations = JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=(), v1=BASE_FIELDS, k2=("k",), v2=("x", "n"), k3=("k",), v3=("x",)
            )
        )
        return job, annotations

    @staticmethod
    def _build_aggregate(
        name: str, input_name: str, output_name: str, rng: DeterministicRNG, config: GeneratorConfig
    ) -> Tuple[MapReduceJob, JobAnnotations]:
        group = rng.choice((("k",), ("g",), ("k", "g")))
        value_fields = ("x", "y")
        job = simple_job(
            name=name,
            input_dataset=input_name,
            output_dataset=output_name,
            map_fn=common.key_by(group, value_fields=value_fields),
            reduce_fn=common.aggregate_reduce(
                {"x": ("avg", "x"), "y": ("max", "y"), "n": ("count", "x")}
            ),
            group_fields=group,
            reduce_cpu_cost=1.0 + rng.random(),
            config=JobConfig(num_reduce_tasks=rng.randint(1, 8)),
        )
        annotations = JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=(), v1=BASE_FIELDS, k2=group, v2=value_fields, k3=group, v3=("x", "y", "n")
            )
        )
        return job, annotations

    @staticmethod
    def _build_distinct(
        name: str, input_name: str, output_name: str, rng: DeterministicRNG, config: GeneratorConfig
    ) -> Tuple[MapReduceJob, JobAnnotations]:
        job = simple_job(
            name=name,
            input_dataset=input_name,
            output_dataset=output_name,
            map_fn=common.key_by(("k",), value_fields=("g",)),
            reduce_fn=common.distinct_count_reduce("g", "g"),
            group_fields=("k",),
            reduce_cpu_cost=1.0 + rng.random(),
            config=JobConfig(num_reduce_tasks=rng.randint(1, 4)),
        )
        annotations = JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=(), v1=BASE_FIELDS, k2=("k",), v2=("g",), k3=("k",), v3=("g",)
            )
        )
        return job, annotations

    @staticmethod
    def _build_collect(
        name: str, input_name: str, output_name: str, rng: DeterministicRNG, config: GeneratorConfig
    ) -> Tuple[MapReduceJob, JobAnnotations]:
        job = simple_job(
            name=name,
            input_dataset=input_name,
            output_dataset=output_name,
            map_fn=common.key_by(("g",), value_fields=("k",)),
            reduce_fn=common.collect_reduce("k", "k"),
            group_fields=("g",),
            reduce_cpu_cost=1.0 + rng.random(),
            config=JobConfig(num_reduce_tasks=rng.randint(1, 4)),
        )
        annotations = JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=(), v1=BASE_FIELDS, k2=("g",), v2=("k",), k3=("g",), v3=("k",)
            )
        )
        return job, annotations

    @staticmethod
    def _build_reshuffle(
        name: str, input_name: str, output_name: str, rng: DeterministicRNG, config: GeneratorConfig
    ) -> Tuple[MapReduceJob, JobAnnotations]:
        value_fields = ("x", "y", "n")
        job = simple_job(
            name=name,
            input_dataset=input_name,
            output_dataset=output_name,
            map_fn=common.key_by(("k", "g"), value_fields=value_fields),
            reduce_fn=common.identity_reduce(),
            group_fields=("k", "g"),
            reduce_cpu_cost=1.0 + rng.random(),
            config=JobConfig(num_reduce_tasks=rng.randint(1, 8)),
        )
        annotations = JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=(),
                v1=BASE_FIELDS,
                k2=("k", "g"),
                v2=value_fields,
                k3=("k", "g"),
                v3=value_fields,
            )
        )
        return job, annotations
