"""Starfish-style profiler: builds profile and dataset annotations by running jobs."""

from repro.profiler.profiler import Profiler, ProfilingResult

__all__ = ["Profiler", "ProfilingResult"]
