"""The profiler: collects dataflow and cost statistics for profile annotations.

The paper generates profile annotations with Starfish's profiler, which
instruments unmodified MapReduce programs at run time [8].  Our equivalent
executes the (unoptimized) workflow on the local engine — optionally over a
*sample* of the base datasets — and derives per-operator selectivities,
record widths, CPU costs, and key cardinalities from the execution counters.

Sampling fraction and measurement noise are configurable: profiling on a
sample with noise is what produces the estimation error visible in the
paper's Figure 14 (estimated vs. actual cost scatter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.rng import DeterministicRNG
from repro.dfs.dataset import Dataset
from repro.dfs.filesystem import InMemoryFileSystem
from repro.mapreduce.counters import ExecutionCounters
from repro.mapreduce.engine import LocalEngine
from repro.workflow.annotations import (
    DatasetAnnotation,
    OperatorProfile,
    ProfileAnnotation,
)
from repro.workflow.executor import WorkflowExecutor
from repro.workflow.graph import JobVertex, Workflow


@dataclass
class ProfilingResult:
    """Profiles produced for one workflow."""

    job_profiles: Dict[str, ProfileAnnotation] = field(default_factory=dict)
    dataset_annotations: Dict[str, DatasetAnnotation] = field(default_factory=dict)
    profiled_records: int = 0


class Profiler:
    """Collects profile annotations by executing workflows on the local engine."""

    def __init__(
        self,
        engine: Optional[LocalEngine] = None,
        sample_fraction: float = 1.0,
        noise: float = 0.0,
        seed: int = 7,
    ) -> None:
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        if noise < 0.0:
            raise ValueError("noise must be non-negative")
        self.engine = engine or LocalEngine()
        self.sample_fraction = sample_fraction
        self.noise = noise
        self._rng = DeterministicRNG(seed)

    # ------------------------------------------------------------------ API
    def profile_workflow(
        self,
        workflow: Workflow,
        base_datasets: Dict[str, Dataset],
        attach: bool = True,
    ) -> ProfilingResult:
        """Profile every job of ``workflow`` and (optionally) attach annotations.

        ``base_datasets`` maps base dataset names to materialized datasets.
        When ``attach`` is true the produced profile annotations are stored on
        the workflow's job vertices and the dataset annotations on its base
        dataset vertices, which is the normal way to prepare a plan for
        Stubby.
        """
        sampled = {name: self._sample(dataset) for name, dataset in base_datasets.items()}
        executor = WorkflowExecutor(self.engine)
        execution, filesystem = executor.execute(workflow, base_datasets=sampled)

        result = ProfilingResult()
        result.profiled_records = sum(d.num_records for d in sampled.values())

        for name, dataset in base_datasets.items():
            result.dataset_annotations[name] = self.annotate_dataset(dataset)

        for vertex in workflow.jobs:
            counters = execution.counters_for(vertex.name)
            profile = self.profile_from_counters(vertex, counters)
            result.job_profiles[vertex.name] = profile

        if attach:
            for name in list(workflow.job_names):
                # Workflows are copy-on-write: privatize each vertex before
                # writing its profile so a shared ancestor (e.g. the workload
                # the caller copied this workflow from) never sees it.
                owned = workflow.mutate_job(name, copy_job=False)
                owned.annotations.profile = result.job_profiles[name]
            for name, annotation in result.dataset_annotations.items():
                if workflow.has_dataset(name):
                    workflow.add_dataset(name, dataset=base_datasets[name], annotation=annotation)
        return result

    def annotate_dataset(self, dataset: Dataset) -> DatasetAnnotation:
        """Build a dataset annotation (physical design + statistics) for a dataset."""
        schema: tuple = ()
        for record in dataset.records():
            schema = tuple(sorted(record.keys()))
            break
        field_ranges = {}
        for field_name in schema:
            value_range = dataset.field_range(field_name)
            if value_range is not None:
                field_ranges[field_name] = (float(value_range[0]), float(value_range[1]))
        partitioning = dataset.layout.partitioning
        split_points = None
        if partitioning.kind == "range" and partitioning.ranges is not None:
            split_points = tuple(partitioning.ranges.split_points)
        return DatasetAnnotation(
            schema=schema or None,
            partition_kind=partitioning.kind,
            partition_fields=tuple(partitioning.fields) if partitioning.fields else None,
            split_points=split_points,
            sort_fields=tuple(dataset.layout.sort_fields) if dataset.layout.sort_fields else None,
            compressed=dataset.layout.compressed,
            size_bytes=dataset.logical_bytes,
            num_records=dataset.logical_records,
            field_ranges=field_ranges,
        )

    def profile_from_counters(
        self,
        vertex: JobVertex,
        counters: ExecutionCounters,
    ) -> ProfileAnnotation:
        """Derive a job's profile annotation from its execution counters."""
        job = vertex.job
        map_output_bytes_per_record = counters.bytes_per_map_output_record or 100.0
        output_bytes_per_record = counters.bytes_per_output_record or 100.0
        input_bytes_per_record = (
            counters.map_input_bytes / counters.map_input_records
            if counters.map_input_records
            else 100.0
        )

        operator_profiles: Dict[str, OperatorProfile] = {}
        for pipeline in job.pipelines:
            for index, op in enumerate(pipeline.map_ops):
                observed = counters.operators.get(op.name)
                selectivity = observed.selectivity if observed is not None else 1.0
                is_last_map = index == len(pipeline.map_ops) - 1
                record_bytes = (
                    output_bytes_per_record
                    if pipeline.is_map_only and is_last_map
                    else map_output_bytes_per_record
                )
                operator_profiles[op.name] = OperatorProfile(
                    selectivity=self._noisy(selectivity),
                    cpu_cost_per_record=self._noisy(op.cpu_cost_per_record),
                    output_record_bytes=self._noisy(record_bytes),
                )
            for index, op in enumerate(pipeline.reduce_ops):
                observed = counters.operators.get(op.name)
                selectivity = observed.selectivity if observed is not None else 1.0
                operator_profiles[op.name] = OperatorProfile(
                    selectivity=self._noisy(selectivity),
                    cpu_cost_per_record=self._noisy(op.cpu_cost_per_record),
                    output_record_bytes=self._noisy(output_bytes_per_record),
                )

        combine_reduction = 1.0
        if counters.combine_input_records > 0:
            combine_reduction = counters.combine_output_records / counters.combine_input_records
        elif job.has_combiner and counters.reduce_input_records > 0 and counters.reduce_input_groups > 0:
            # The combiner was not enabled during profiling: assume it would
            # reduce each map task's records to roughly one per group.
            combine_reduction = min(
                1.0, counters.reduce_input_groups / counters.reduce_input_records * 3.0
            )

        key_cardinalities = {
            fields: self._scale_cardinality(count)
            for fields, count in counters.key_cardinalities.items()
        }

        map_cpu, reduce_cpu = self._job_level_cpu(vertex)
        return ProfileAnnotation(
            map_selectivity=self._noisy(counters.map_selectivity),
            reduce_selectivity=self._noisy(counters.reduce_selectivity),
            map_output_record_bytes=self._noisy(map_output_bytes_per_record),
            output_record_bytes=self._noisy(output_bytes_per_record),
            input_record_bytes=self._noisy(input_bytes_per_record),
            combine_reduction=combine_reduction,
            map_cpu_cost_per_record=map_cpu,
            reduce_cpu_cost_per_record=reduce_cpu,
            key_cardinalities=key_cardinalities,
            operator_profiles=operator_profiles,
        )

    # ------------------------------------------------------------- internals
    def _sample(self, dataset: Dataset) -> Dataset:
        if self.sample_fraction >= 1.0:
            return dataset
        records = dataset.all_records()
        keep = max(1, int(len(records) * self.sample_fraction))
        sampled_records = self._rng.sample(records, keep) if keep < len(records) else records
        sampled = Dataset(
            dataset.name,
            layout=dataset.layout,
            scale_factor=dataset.scale_factor / self.sample_fraction,
        )
        sampled.load(sampled_records)
        return sampled

    def _scale_cardinality(self, count: float) -> float:
        if self.sample_fraction >= 1.0:
            return float(count)
        # Distinct counts scale sublinearly with sample size; a square-root
        # correction is a standard first-order estimator.
        return float(count) / (self.sample_fraction ** 0.5)

    def _noisy(self, value: float) -> float:
        if self.noise <= 0.0:
            return float(value)
        factor = max(0.1, 1.0 + self._rng.gauss(0.0, self.noise))
        return float(value) * factor

    @staticmethod
    def _job_level_cpu(vertex: JobVertex) -> tuple:
        job = vertex.job
        map_cpu = 0.0
        reduce_cpu = 0.0
        for pipeline in job.pipelines:
            map_cpu += sum(op.cpu_cost_per_record for op in pipeline.map_ops)
            reduce_cpu += sum(op.cpu_cost_per_record for op in pipeline.reduce_ops)
        return map_cpu, reduce_cpu
