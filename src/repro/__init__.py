"""Reproduction of *Stubby: A Transformation-based Optimizer for MapReduce
Workflows* (Lim, Herodotou, Babu — VLDB 2012).

The package is organised as a set of substrates (a local MapReduce execution
engine, a simulated distributed file-system, a cluster cost model, a
Starfish-style profiler and What-if engine) on top of which the paper's
contribution — the Stubby optimizer — is implemented, together with the
baseline optimizers and evaluation workflows used in the paper's experiments.

Typical usage::

    from repro import StubbyOptimizer, ClusterSpec
    from repro.workloads import build_workload

    workload = build_workload("IR", scale=0.05)
    cluster = ClusterSpec.paper_cluster()
    optimizer = StubbyOptimizer(cluster)
    optimized = optimizer.optimize(workload.plan)
"""

from repro.cluster import ClusterSpec
from repro.core.optimizer import StubbyOptimizer
from repro.core.plan import Plan
from repro.workflow.graph import Workflow

__version__ = "1.0.0"

__all__ = [
    "ClusterSpec",
    "StubbyOptimizer",
    "Plan",
    "Workflow",
    "__version__",
]
