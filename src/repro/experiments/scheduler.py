"""Experiment-level orchestration: fan (workload × optimizer) cells out.

One experiment run of :class:`~repro.experiments.harness.ExperimentHarness`
evaluates every requested optimizer on every requested workload.  Each such
(workload, optimizer) pair is a **cell**: it builds its optimizer, optimizes
the workload's plan, executes the optimized plan, and reports an
:class:`~repro.experiments.harness.OptimizerRun`.  Cells are independent of
each other's *results* — they only share the harness's
:class:`~repro.whatif.service.CostService` — which makes them exactly the
kind of work :mod:`repro.core.parallel` already knows how to fan out.

This module provides that fan-out:

* :class:`ExperimentCell` — one (workload, optimizer) pair with its
  deterministic per-cell seed and origin label;
* :class:`ExperimentScheduler` — opens one backend session over the cells,
  wires the shared cost service through the session's side channel (so
  thread cells re-attribute their stats and forked cells merge their cache
  shards on join), and returns the per-cell results **in cell order**
  regardless of completion order.

Backend selection mirrors the unit search: a ``backend=`` argument (spec
string or :class:`~repro.core.parallel.ExecutionBackend` instance), else the
``STUBBY_EXPERIMENT_BACKEND`` environment variable, else serial.  The two
levels nest: a parallel experiment backend dispatches whole cells, and each
cell's unit search runs on its own (by default serial) search backend — see
``docs/experiments.md`` for how to combine them without oversubscription.

Determinism contract (the same one the unit search honours): a backend only
changes *where* a cell runs.  Cell seeds derive from the cell key via
:func:`~repro.common.hashing.stable_hash` — never from draw order on a
shared stream — the shared cost service returns bit-identical estimates
cached or not, and results are collected in cell order.  So every backend,
at any worker count, reproduces the serial harness's results byte for byte
(``tests/test_experiment_orchestration.py`` enforces it).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.common.hashing import stable_hash
from repro.core.costing import cost_service_side_channel
from repro.core.decision_cache import DecisionCache, decision_cache_side_channel
from repro.core.subresults import SubResultCatalog, subresult_catalog_side_channel
from repro.core.parallel import (
    DISPATCH_KINDS,
    DispatchStats,
    ExecutionBackend,
    create_backend,
    merge_side_channels,
)
from repro.whatif.service import CostService

__all__ = [
    "EXPERIMENT_BACKEND_ENV_VAR",
    "EXPERIMENT_DISPATCH_ENV_VAR",
    "ExperimentCell",
    "ExperimentScheduler",
    "build_cells",
    "cell_seed",
    "resolve_experiment_backend",
    "resolve_experiment_dispatch",
]

#: Environment variable consulted when no experiment backend is passed
#: explicitly (the experiment-level sibling of ``STUBBY_SEARCH_BACKEND``).
EXPERIMENT_BACKEND_ENV_VAR = "STUBBY_EXPERIMENT_BACKEND"

#: Environment variable selecting the cell dispatch mode ("static" or
#: "stealing") when none is passed explicitly.
EXPERIMENT_DISPATCH_ENV_VAR = "STUBBY_EXPERIMENT_DISPATCH"


def resolve_experiment_dispatch(dispatch: Optional[str]) -> str:
    """Normalize a dispatch argument (explicit > environment > "static")."""
    if dispatch is None:
        dispatch = os.environ.get(EXPERIMENT_DISPATCH_ENV_VAR, "").strip() or "static"
    if dispatch not in DISPATCH_KINDS:
        raise ValueError(
            f"unknown experiment dispatch {dispatch!r}; expected one of {DISPATCH_KINDS}"
        )
    return dispatch


def resolve_experiment_backend(backend) -> ExecutionBackend:
    """Normalize an experiment-backend argument into an :class:`ExecutionBackend`.

    Accepts a backend instance, a spec string (``"thread:4"``,
    ``"process:8"``…), or ``None`` — the latter consults
    :data:`EXPERIMENT_BACKEND_ENV_VAR` and finally falls back to serial.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None:
        backend = os.environ.get(EXPERIMENT_BACKEND_ENV_VAR, "").strip() or "serial"
    if isinstance(backend, str):
        return create_backend(backend)
    raise TypeError(
        "experiment backend must be an ExecutionBackend, a spec string like "
        "'process:4', or None"
    )


@dataclass(frozen=True)
class ExperimentCell:
    """One (workload × optimizer) evaluation of an experiment run."""

    index: int
    workload: str
    optimizer: str
    #: Seed for the cell's optimizer, derived from the cell key alone so it
    #: cannot depend on scheduling or on which other cells run.
    seed: int

    @property
    def label(self) -> str:
        """Human-readable cell name (also the cost-service origin label)."""
        return f"{self.workload}/{self.optimizer}"


def cell_seed(base_seed: int, workload: str, optimizer: str) -> int:
    """Deterministic per-cell RNG seed: a stable hash of the cell key.

    Process-independent (:func:`stable_hash`), so a forked cell worker, a
    thread, and the serial loop all hand their optimizer the same seed.
    """
    return stable_hash((base_seed, "experiment-cell", workload, optimizer)) & 0x7FFFFFFF


def build_cells(
    workloads: Sequence[str], optimizers: Sequence[str], base_seed: int
) -> List[ExperimentCell]:
    """The cell grid of one run, in deterministic (workload-major) order."""
    cells: List[ExperimentCell] = []
    for workload in workloads:
        for optimizer in optimizers:
            cells.append(
                ExperimentCell(
                    index=len(cells),
                    workload=workload,
                    optimizer=optimizer,
                    seed=cell_seed(base_seed, workload, optimizer),
                )
            )
    return cells


class ExperimentScheduler:
    """Dispatches experiment cells onto a pluggable execution backend."""

    def __init__(self, backend=None, dispatch: Optional[str] = None) -> None:
        self.backend = resolve_experiment_backend(backend)
        self.dispatch = resolve_experiment_dispatch(dispatch)
        #: Dispatch accounting of the most recent :meth:`map_cells` call
        #: (None until one has run): how cells spread across workers, how
        #: many were stolen, and the idle-cost imbalance metric.
        self.last_dispatch_stats: Optional[DispatchStats] = None

    @property
    def spec(self) -> str:
        """Spec string of the resolved backend (``"process:4"`` …)."""
        return self.backend.spec

    def map_cells(
        self,
        cells: Sequence[ExperimentCell],
        run_cell: Callable[[ExperimentCell], object],
        cost_service: Optional[CostService] = None,
        decision_cache: Optional[DecisionCache] = None,
        subresult_catalog: Optional[SubResultCatalog] = None,
        cell_costs: Optional[Sequence[float]] = None,
    ) -> List[object]:
        """Run every cell and return its results in cell order.

        Only the cell *index* crosses a worker boundary (cells hold workload
        names, but a process-backend worker inherits the prepared workloads
        by fork, exactly like the unit search inherits candidate plans);
        responses must be plain picklable data.  When ``cost_service`` is
        given, its side channel rides along so worker stats and cache shards
        merge back into the shared service; a ``decision_cache`` composes
        its own channel in the same way (forked cells export newly recorded
        decisions for merge-on-join, so one cell's solved units replay in
        every later run), and so does a ``subresult_catalog`` (sub-results a
        forked cell registers become reusable by every later cell).

        Cells are heterogeneous — a Baseline cell costs a fraction of a
        Stubby cell on a wide workload — so the scheduler supports
        ``dispatch="stealing"``: idle workers pull the next cell instead of
        being dealt a fixed share up front.  ``cell_costs`` (optional,
        parallel to ``cells``) declares relative cell weights for the load
        accounting surfaced in :attr:`last_dispatch_stats`; results are
        identical either way, in cell order, by the determinism contract.
        """
        channels = [
            cost_service_side_channel(cost_service) if cost_service is not None else None,
            (
                decision_cache_side_channel(decision_cache)
                if decision_cache is not None and decision_cache.enabled
                else None
            ),
            (
                subresult_catalog_side_channel(subresult_catalog)
                if subresult_catalog is not None and subresult_catalog.enabled
                else None
            ),
        ]
        side = merge_side_channels(*channels)
        indexed = list(cells)

        def worker(index: int):
            return run_cell(indexed[index])

        with self.backend.session(worker, side, dispatch=self.dispatch) as session:
            try:
                return session.run(list(range(len(indexed))), costs=cell_costs)
            finally:
                self.last_dispatch_stats = session.dispatch_stats
