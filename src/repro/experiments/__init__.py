"""Experiment harness reproducing the paper's evaluation (§7)."""

from repro.experiments.harness import (
    ExperimentHarness,
    ExperimentRunResult,
    OptimizerRun,
    WorkloadComparison,
)
from repro.experiments.microbench import (
    horizontal_packing_tradeoff,
    vertical_packing_tradeoff,
)
from repro.experiments.scheduler import (
    EXPERIMENT_BACKEND_ENV_VAR,
    EXPERIMENT_DISPATCH_ENV_VAR,
    ExperimentCell,
    ExperimentScheduler,
    build_cells,
    cell_seed,
    resolve_experiment_backend,
    resolve_experiment_dispatch,
)

__all__ = [
    "EXPERIMENT_BACKEND_ENV_VAR",
    "EXPERIMENT_DISPATCH_ENV_VAR",
    "ExperimentCell",
    "ExperimentHarness",
    "ExperimentRunResult",
    "ExperimentScheduler",
    "OptimizerRun",
    "WorkloadComparison",
    "build_cells",
    "cell_seed",
    "resolve_experiment_backend",
    "resolve_experiment_dispatch",
    "vertical_packing_tradeoff",
    "horizontal_packing_tradeoff",
]
