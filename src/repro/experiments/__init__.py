"""Experiment harness reproducing the paper's evaluation (§7)."""

from repro.experiments.harness import (
    ExperimentHarness,
    OptimizerRun,
    WorkloadComparison,
)
from repro.experiments.microbench import (
    horizontal_packing_tradeoff,
    vertical_packing_tradeoff,
)

__all__ = [
    "ExperimentHarness",
    "OptimizerRun",
    "WorkloadComparison",
    "vertical_packing_tradeoff",
    "horizontal_packing_tradeoff",
]
