"""Micro-benchmarks behind the paper's Figure 5.

Figure 5 shows that both packing transformations can either improve or
degrade performance depending on the properties of the input data:

* **intra-job vertical packing** improves performance when it eliminates an
  expensive shuffle, but degrades it when the packed plan's narrower
  partition key leaves too little reduce-side parallelism;
* **horizontal packing** improves performance when it shares the scan of a
  very large input, but degrades it for small inputs that the cluster could
  have processed as independent concurrent jobs.

The helpers below build the corresponding two-job micro-workflows, execute
the packed and unpacked plans, and report the packed-over-unpacked speedup
for a favourable and an unfavourable input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cluster import ClusterSpec
from repro.common.rng import DeterministicRNG
from repro.core.plan import Plan
from repro.core.transformations import HorizontalPacking, IntraJobVerticalPacking
from repro.dfs.dataset import Dataset
from repro.dfs.layout import DataLayout, PartitionScheme
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.profiler import Profiler
from repro.whatif import ActualCostModel
from repro.workflow.annotations import JobAnnotations, SchemaAnnotation
from repro.workflow.executor import WorkflowExecutor
from repro.workflow.graph import Workflow
from repro.workloads import common

GB = 1024.0 ** 3


@dataclass
class PackingTradeoff:
    """Packed-over-unpacked speedup for a favourable and an unfavourable input."""

    favourable_speedup: float
    unfavourable_speedup: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the Figure 5 benchmark output."""
        return {
            "performance_improvement": self.favourable_speedup,
            "performance_degradation": self.unfavourable_speedup,
        }


def _synthetic_records(num_records: int, distinct_keys: int, seed: int = 5):
    rng = DeterministicRNG(seed)
    return [
        {
            "k": float(rng.randint(1, max(1, distinct_keys))),
            "s": float(rng.randint(1, 40)),
            "v": rng.uniform(0.0, 100.0),
        }
        for _ in range(num_records)
    ]


def _actual_cost(plan: Plan, datasets: Dict[str, Dataset], cluster: ClusterSpec) -> float:
    executor = WorkflowExecutor()
    execution, filesystem = executor.execute(plan.workflow, base_datasets=datasets)
    return ActualCostModel(cluster).workflow_cost(plan.workflow, execution, filesystem).total_s


def _profiled_plan(workflow: Workflow, datasets: Dict[str, Dataset]) -> Plan:
    Profiler().profile_workflow(workflow, datasets)
    return Plan(workflow)


# ---------------------------------------------------------------------------
# Intra-job vertical packing trade-off
# ---------------------------------------------------------------------------


def _vertical_workflow(dataset: Dataset) -> Workflow:
    """A producer/consumer pair where the consumer re-groups on a key subset."""
    workflow = Workflow(name="vertical_micro")
    producer = simple_job(
        name="VP_producer",
        input_dataset=dataset.name,
        output_dataset="vp_mid",
        map_fn=common.key_by(["k", "s"], value_fields=["v"]),
        reduce_fn=common.identity_reduce(),
        group_fields=("k", "s"),
        map_cpu_cost=2.0,
        reduce_cpu_cost=2.0,
        config=JobConfig(num_reduce_tasks=64),
    )
    workflow.add_job(
        producer,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["k"], v1=["k", "s", "v"], k2=["k", "s"], v2=["v"], k3=["k", "s"], v3=["v"]
            )
        ),
    )
    consumer = simple_job(
        name="VP_consumer",
        input_dataset="vp_mid",
        output_dataset="vp_out",
        map_fn=common.key_by(["k"], value_fields=["v"]),
        reduce_fn=common.aggregate_reduce({"total": ("sum", "v"), "peak": ("max", "v")}),
        group_fields=("k",),
        map_cpu_cost=1.0,
        reduce_cpu_cost=2.0,
        config=JobConfig(num_reduce_tasks=64),
    )
    workflow.add_job(
        consumer,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["k", "s"], v1=["k", "s", "v"], k2=["k"], v2=["v"], k3=["k"], v3=["total", "peak"]
            )
        ),
    )
    return workflow


def vertical_packing_tradeoff(
    cluster: Optional[ClusterSpec] = None,
    num_records: int = 1_500,
    logical_gb: float = 200.0,
) -> PackingTradeoff:
    """Speedup of intra-job vertical packing on favourable vs unfavourable data.

    Favourable: the shared grouping key has many distinct values, so the
    packed plan keeps full reduce-side parallelism while eliminating the
    consumer's shuffle.  Unfavourable: the shared key has only two distinct
    values, so packing collapses the producer's parallelism to two reducers.
    """
    cluster = cluster or ClusterSpec.paper_cluster()
    speedups = {}
    for label, distinct in (("favourable", 400), ("unfavourable", 2)):
        records = _synthetic_records(num_records, distinct_keys=distinct)
        dataset = Dataset(
            "vp_input",
            records=records,
            layout=DataLayout(partitioning=PartitionScheme.hashed("k")),
        )
        dataset.scale_factor = (logical_gb * GB) / max(1, dataset.raw_bytes)
        datasets = {"vp_input": dataset}

        workflow = _vertical_workflow(dataset)
        plan = _profiled_plan(workflow, datasets)
        unpacked_cost = _actual_cost(plan, datasets, cluster)

        transformation = IntraJobVerticalPacking()
        applications = transformation.find_applications(plan, ("VP_producer", "VP_consumer"))
        packed_plan = transformation.apply(plan, applications[0]) if applications else plan
        packed_cost = _actual_cost(packed_plan, datasets, cluster)
        speedups[label] = unpacked_cost / packed_cost if packed_cost > 0 else 0.0
    return PackingTradeoff(
        favourable_speedup=speedups["favourable"],
        unfavourable_speedup=speedups["unfavourable"],
    )


# ---------------------------------------------------------------------------
# Horizontal packing trade-off
# ---------------------------------------------------------------------------


def _horizontal_workflow(dataset: Dataset) -> Workflow:
    """Two consumer jobs that filter, group, and aggregate the same input."""
    workflow = Workflow(name="horizontal_micro")
    specs = [
        ("HP_left", "hp_left_out", ("k",), 0.0, 3.0),
        ("HP_right", "hp_right_out", ("s",), 3.0, 6.0),
    ]
    for name, output, group_fields, low, high in specs:
        job = simple_job(
            name=name,
            input_dataset=dataset.name,
            output_dataset=output,
            map_fn=common.key_by(
                list(group_fields), value_fields=["v"], filter_fn=common.range_filter("s", low, high)
            ),
            reduce_fn=common.aggregate_reduce({"total": ("sum", "v")}),
            group_fields=group_fields,
            map_cpu_cost=2.0,
            reduce_cpu_cost=2.0,
            config=JobConfig(num_reduce_tasks=32),
        )
        workflow.add_job(
            job,
            JobAnnotations(
                schema=SchemaAnnotation.of(
                    k1=["k"], v1=["k", "s", "v"],
                    k2=list(group_fields), v2=["v"],
                    k3=list(group_fields), v3=["total"],
                )
            ),
        )
    return workflow


def horizontal_packing_tradeoff(
    cluster: Optional[ClusterSpec] = None,
    num_records: int = 1_500,
    large_gb: float = 400.0,
    small_gb: float = 2.0,
) -> PackingTradeoff:
    """Speedup of horizontal packing on a very large vs a small shared input."""
    cluster = cluster or ClusterSpec.paper_cluster()
    speedups = {}
    for label, logical_gb in (("favourable", large_gb), ("unfavourable", small_gb)):
        records = _synthetic_records(num_records, distinct_keys=200)
        dataset = Dataset(
            "hp_input",
            records=records,
            layout=DataLayout(partitioning=PartitionScheme.hashed("k")),
        )
        dataset.scale_factor = (logical_gb * GB) / max(1, dataset.raw_bytes)
        datasets = {"hp_input": dataset}

        workflow = _horizontal_workflow(dataset)
        plan = _profiled_plan(workflow, datasets)
        unpacked_cost = _actual_cost(plan, datasets, cluster)

        transformation = HorizontalPacking(allow_extended=False)
        applications = transformation.find_applications(plan, ("HP_left", "HP_right"))
        packed_plan = transformation.apply(plan, applications[0]) if applications else plan
        packed_cost = _actual_cost(packed_plan, datasets, cluster)
        speedups[label] = unpacked_cost / packed_cost if packed_cost > 0 else 0.0
    return PackingTradeoff(
        favourable_speedup=speedups["favourable"],
        unfavourable_speedup=speedups["unfavourable"],
    )
