"""Harness running the paper's evaluation end to end.

For one workload the harness:

1. builds the workload (MB-scale data with paper-scale logical sizes);
2. profiles the unoptimized workflow to produce profile annotations;
3. runs every requested optimizer on the same annotated plan;
4. executes every optimized plan on the local engine, checks that its output
   is equivalent to the unoptimized plan's output, and converts the measured
   counters into the simulated "actual" cluster runtime;
5. reports speedups relative to the Baseline, plus optimizer overheads.

Figure 11 uses the {Baseline, Stubby, Vertical, Horizontal} optimizer set,
Figure 12 the {Baseline, Stubby, Starfish, YSmart, MRShare} set, Figure 13
the optimization times, and Figure 14 the per-subplan deep dive of the first
optimization unit of the Information Retrieval workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines import (
    MRShareOptimizer,
    PigBaselineOptimizer,
    StarfishOptimizer,
    YSmartOptimizer,
)
from repro.cluster import ClusterSpec
from repro.common.records import records_equal
from repro.core.optimizer import OptimizationResult, StubbyOptimizer
from repro.core.search import StubbySearch, UnitReport
from repro.core.transformations import (
    HorizontalPacking,
    InterJobVerticalPacking,
    IntraJobVerticalPacking,
    PartitionFunctionTransformation,
)
from repro.core.optimization_unit import OptimizationUnitGenerator
from repro.core.transformations.configuration import ConfigurationTransformation
from repro.profiler import Profiler
from repro.whatif import ActualCostModel, CostService
from repro.workflow.executor import WorkflowExecutor
from repro.workloads import build_workload
from repro.workloads.base import Workload


@dataclass
class OptimizerRun:
    """Result of running one optimizer on one workload."""

    optimizer: str
    num_jobs: int
    actual_s: float
    estimated_s: float
    optimization_time_s: float
    output_equivalent: bool
    transformations: List[str] = field(default_factory=list)
    #: Cost-service activity of the optimizer run (Figure 13 companion
    #: metrics): workflow-level what-if queries, jobs actually re-costed,
    #: and the fraction of job estimates served from the cache.
    whatif_queries: int = 0
    jobs_recosted: int = 0
    cache_hit_rate: float = 0.0

    def speedup_over(self, baseline: "OptimizerRun") -> float:
        """Speedup of this run's actual runtime over the baseline's."""
        if self.actual_s <= 0:
            return 0.0
        return baseline.actual_s / self.actual_s


@dataclass
class WorkloadComparison:
    """All optimizer runs for one workload."""

    abbreviation: str
    name: str
    paper_dataset_gb: float
    unoptimized_jobs: int
    runs: Dict[str, OptimizerRun] = field(default_factory=dict)

    @property
    def baseline(self) -> OptimizerRun:
        """The Baseline run (reference for speedups)."""
        return self.runs["Baseline"]

    def speedup(self, optimizer: str) -> float:
        """Speedup of ``optimizer`` over the Baseline."""
        return self.runs[optimizer].speedup_over(self.baseline)

    def speedups(self) -> Dict[str, float]:
        """Speedups of every optimizer over the Baseline."""
        return {name: self.speedup(name) for name in self.runs}


class ExperimentHarness:
    """Runs workloads under several optimizers and collects the comparison."""

    FIGURE11_OPTIMIZERS = ("Baseline", "Stubby", "Vertical", "Horizontal")
    FIGURE12_OPTIMIZERS = ("Baseline", "Stubby", "Starfish", "YSmart", "MRShare")

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        scale: float = 0.25,
        profile_noise: float = 0.0,
        seed: int = 42,
        search_backend=None,
    ) -> None:
        self.cluster = cluster or ClusterSpec.paper_cluster()
        self.scale = scale
        self.profile_noise = profile_noise
        self.seed = seed
        #: Execution backend handed to every Stubby-search optimizer (spec
        #: string, backend instance, or None for STUBBY_SEARCH_BACKEND /
        #: serial).  The chosen plans are backend-independent by contract,
        #: so this only affects optimization wall-clock.
        self.search_backend = search_backend
        self.executor = WorkflowExecutor()
        self.actual_model = ActualCostModel(self.cluster)
        self.costs = CostService(self.cluster)
        self.whatif = self.costs.engine

    # ----------------------------------------------------------- optimizers
    def make_optimizer(self, name: str):
        """Instantiate an optimizer by its display name.

        Every optimizer is handed the harness's shared :class:`CostService`,
        so exact per-vertex estimates are reused across the optimizers (and
        workloads) of one comparison; per-run stats stay separable because
        each ``optimize()`` reports its own counter delta.
        """
        if name == "Baseline":
            return PigBaselineOptimizer(self.cluster, cost_service=self.costs)
        if name == "Stubby":
            return StubbyOptimizer(
                self.cluster, cost_service=self.costs, backend=self.search_backend
            )
        if name == "Vertical":
            return StubbyOptimizer.vertical_only(
                self.cluster, cost_service=self.costs, backend=self.search_backend
            )
        if name == "Horizontal":
            return StubbyOptimizer.horizontal_only(
                self.cluster, cost_service=self.costs, backend=self.search_backend
            )
        if name == "Starfish":
            return StarfishOptimizer(self.cluster, cost_service=self.costs)
        if name == "YSmart":
            return YSmartOptimizer(self.cluster, cost_service=self.costs)
        if name == "MRShare":
            return MRShareOptimizer(self.cluster, cost_service=self.costs)
        raise KeyError(f"unknown optimizer {name!r}")

    # ------------------------------------------------------------- workload
    def prepare_workload(self, abbreviation: str) -> Workload:
        """Build and profile a workload (profiles attached to its workflow)."""
        workload = build_workload(abbreviation, scale=self.scale, seed=self.seed)
        profiler = Profiler(noise=self.profile_noise, seed=self.seed)
        profiler.profile_workflow(workload.workflow, workload.base_datasets)
        return workload

    def compare(
        self,
        abbreviation: str,
        optimizers: Sequence[str] = FIGURE11_OPTIMIZERS,
        workload: Optional[Workload] = None,
    ) -> WorkloadComparison:
        """Run the requested optimizers on one workload and compare them."""
        workload = workload or self.prepare_workload(abbreviation)
        reference_outputs = self._reference_outputs(workload)

        comparison = WorkloadComparison(
            abbreviation=workload.abbreviation,
            name=workload.name,
            paper_dataset_gb=workload.paper_dataset_gb,
            unoptimized_jobs=workload.num_jobs,
        )
        for optimizer_name in optimizers:
            optimizer = self.make_optimizer(optimizer_name)
            # Each timed run starts cold so the reported optimization time
            # and what-if counters are standalone (order-independent) —
            # Figure 13 must not depend on which optimizer ran first.
            self.costs.invalidate()
            result = optimizer.optimize(workload.plan)
            comparison.runs[optimizer_name] = self._evaluate(result, workload, reference_outputs)
        return comparison

    def _reference_outputs(self, workload: Workload) -> Dict[str, list]:
        execution, filesystem = self.executor.execute(
            workload.workflow.copy(), base_datasets=workload.base_datasets
        )
        outputs = {}
        for dataset_vertex in workload.workflow.terminal_datasets():
            if filesystem.exists(dataset_vertex.name):
                outputs[dataset_vertex.name] = filesystem.get(dataset_vertex.name).all_records()
        return outputs

    def _evaluate(
        self,
        result: OptimizationResult,
        workload: Workload,
        reference_outputs: Dict[str, list],
    ) -> OptimizerRun:
        execution, filesystem = self.executor.execute(
            result.plan.workflow, base_datasets=workload.base_datasets
        )
        actual = self.actual_model.workflow_cost(result.plan.workflow, execution, filesystem)
        equivalent = True
        for name, reference in reference_outputs.items():
            if not filesystem.exists(name):
                equivalent = False
                continue
            if not records_equal(reference, filesystem.get(name).all_records()):
                equivalent = False
        stats = result.cost_stats
        return OptimizerRun(
            optimizer=result.optimizer,
            num_jobs=result.num_jobs,
            actual_s=actual.total_s,
            estimated_s=result.estimated_cost_s,
            optimization_time_s=result.optimization_time_s,
            output_equivalent=equivalent,
            transformations=[t for t in result.transformations_applied if t != "configuration"],
            whatif_queries=stats.queries if stats is not None else 0,
            jobs_recosted=stats.jobs_recosted if stats is not None else 0,
            cache_hit_rate=stats.cache_hit_rate if stats is not None else 0.0,
        )

    # ---------------------------------------------------------- deep dives
    def unit_deep_dive(
        self,
        abbreviation: str = "IR",
        workload: Optional[Workload] = None,
    ) -> List[Tuple[Tuple[str, ...], float, float]]:
        """Figure 14: (transformations, estimated, actual) per subplan of the first unit.

        Every subplan enumerated for the workload's first optimization unit is
        configured with its best RRS settings, executed, and costed both ways.
        """
        workload = workload or self.prepare_workload(abbreviation)
        plan = workload.plan
        search = StubbySearch(
            cluster=self.cluster,
            vertical_transformations=[
                IntraJobVerticalPacking(),
                InterJobVerticalPacking(),
                PartitionFunctionTransformation(),
            ],
            horizontal_transformations=[HorizontalPacking(), PartitionFunctionTransformation()],
        )
        generator = OptimizationUnitGenerator()
        unit = generator.next_unit(plan)
        if unit is None:
            return []
        _, report = search.optimize_unit(plan, unit, search.vertical_transformations, phase="vertical")

        results: List[Tuple[Tuple[str, ...], float, float]] = []
        for record in report.subplans:
            candidate = record.plan.copy()
            if record.best_settings:
                ConfigurationTransformation.apply_settings_in_place(candidate, record.best_settings)
            execution, filesystem = self.executor.execute(
                candidate.workflow, base_datasets=workload.base_datasets
            )
            actual = self.actual_model.workflow_cost(candidate.workflow, execution, filesystem)
            results.append((record.transformations, record.estimated_cost, actual.total_s))
        return results

    # -------------------------------------------------------------- reports
    @staticmethod
    def format_speedup_table(
        comparisons: Sequence[WorkloadComparison],
        optimizers: Sequence[str],
    ) -> str:
        """Text table of speedups over the Baseline (one row per workload)."""
        header = "workload  " + "  ".join(f"{name:>10}" for name in optimizers)
        lines = [header]
        for comparison in comparisons:
            cells = []
            for name in optimizers:
                if name in comparison.runs:
                    cells.append(f"{comparison.speedup(name):>10.2f}")
                else:
                    cells.append(f"{'-':>10}")
            lines.append(f"{comparison.abbreviation:<9} " + "  ".join(cells))
        return "\n".join(lines)

    @staticmethod
    def format_overhead_table(comparisons: Sequence[WorkloadComparison]) -> str:
        """Text table of Stubby's optimization overhead (Figure 13)."""
        lines = [
            "workload  optimization_s  baseline_runtime_s  overhead_pct  whatif_q  hit_rate"
        ]
        for comparison in comparisons:
            stubby = comparison.runs.get("Stubby")
            baseline = comparison.runs.get("Baseline")
            if stubby is None or baseline is None:
                continue
            pct = 100.0 * stubby.optimization_time_s / max(1e-9, baseline.actual_s)
            lines.append(
                f"{comparison.abbreviation:<9} {stubby.optimization_time_s:>14.2f} "
                f"{baseline.actual_s:>19.1f} {pct:>13.3f} {stubby.whatif_queries:>9d} "
                f"{stubby.cache_hit_rate:>9.2f}"
            )
        return "\n".join(lines)
