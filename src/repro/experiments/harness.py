"""Harness running the paper's evaluation end to end.

For one workload the harness:

1. builds the workload (MB-scale data with paper-scale logical sizes);
2. profiles the unoptimized workflow to produce profile annotations;
3. runs every requested optimizer on the same annotated plan;
4. executes every optimized plan on the local engine, checks that its output
   is equivalent to the unoptimized plan's output, and converts the measured
   counters into the simulated "actual" cluster runtime;
5. reports speedups relative to the Baseline, plus optimizer overheads.

Figure 11 uses the {Baseline, Stubby, Vertical, Horizontal} optimizer set,
Figure 12 the {Baseline, Stubby, Starfish, YSmart, MRShare} set, Figure 13
the optimization times, and Figure 14 the per-subplan deep dive of the first
optimization unit of the Information Retrieval workload.

Two entry points cover the two evaluation styles:

* :meth:`ExperimentHarness.compare` — one workload, optimizers run one at a
  time, each from a cold cache, so the per-optimizer timings and what-if
  counters are standalone (the Figures 11–13 requirement);
* :meth:`ExperimentHarness.run` — a whole experiment at once: every
  (workload × optimizer) **cell** is dispatched through the
  :class:`~repro.experiments.scheduler.ExperimentScheduler` onto a pluggable
  execution backend (``STUBBY_EXPERIMENT_BACKEND``), all cells sharing the
  harness's :class:`CostService` so cross-cell signature hits are reaped
  (surfaced as ``OptimizerRun.cross_unit_hits``), and — when a ``cache_path``
  is configured — the signature→estimate store persists across runs, so a
  repeated experiment warm-starts instead of recomputing.
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines import (
    MRShareOptimizer,
    PigBaselineOptimizer,
    StarfishOptimizer,
    YSmartOptimizer,
)
from repro.cluster import ClusterSpec
from repro.common.records import records_equal
from repro.core.costing import StatsWindow
from repro.core.decision_cache import (
    DecisionCache,
    DecisionCacheStats,
    resolve_decision_cache_path,
)
from repro.core.optimizer import OptimizationResult, StubbyOptimizer
from repro.core.search import StubbySearch, UnitReport
from repro.core.subresults import (
    SubResultCatalog,
    SubResultCatalogStats,
    register_workflow_outputs,
    resolve_subresult_catalog_path,
)
from repro.core.transformations import (
    HorizontalPacking,
    InterJobVerticalPacking,
    IntraJobVerticalPacking,
    PartitionFunctionTransformation,
)
from repro.core.optimization_unit import OptimizationUnitGenerator
from repro.core.transformations.configuration import ConfigurationTransformation
from repro.experiments.scheduler import ExperimentCell, ExperimentScheduler, build_cells
from repro.profiler import Profiler
from repro.whatif import ActualCostModel, CostService, CostServiceStats
from repro.whatif.service import resolve_cache_path
from repro.workflow.executor import WorkflowExecutor
from repro.workloads import WORKLOAD_ORDER, build_workload
from repro.workloads.base import Workload


@dataclass
class OptimizerRun:
    """Result of running one optimizer on one workload."""

    optimizer: str
    num_jobs: int
    actual_s: float
    estimated_s: float
    optimization_time_s: float
    output_equivalent: bool
    transformations: List[str] = field(default_factory=list)
    #: Cost-service activity of the optimizer run (Figure 13 companion
    #: metrics): workflow-level what-if queries, jobs actually re-costed,
    #: and the fraction of job estimates served from the cache.
    whatif_queries: int = 0
    jobs_recosted: int = 0
    cache_hit_rate: float = 0.0
    #: Cache hits served by entries another experiment cell (or a
    #: warm-started persisted cache) stored — only populated by
    #: :meth:`ExperimentHarness.run`, whose cells share one service;
    #: :meth:`ExperimentHarness.compare` runs each optimizer cold.
    cross_unit_hits: int = 0
    #: Full per-cell stats breakdown (exact under concurrency: accumulated
    #: through a per-cell attribution sink, not a global window).  ``None``
    #: outside the orchestrated :meth:`ExperimentHarness.run` path.
    cost_stats: Optional[CostServiceStats] = None
    #: Decision-cache activity of this run: optimization units whose whole
    #: search was skipped (hit), searched-and-recorded (miss), and hits
    #: served by a decision another origin recorded.  Exact per cell —
    #: summed from the run's own :class:`UnitReport` counters, which cross
    #: process pipes as plain data.  Deliberately *not* part of
    #: :meth:`decision_fingerprint`: warmth changes hit counts, never plans.
    unit_decision_hits: int = 0
    unit_decision_misses: int = 0
    cross_origin_decision_hits: int = 0
    #: Sub-result reuse activity of this run: rewrites recorded in the final
    #: plan, jobs those rewrites eliminated, and the cell's exact catalog
    #: counter delta (per-cell attribution sink, like ``cost_stats``).
    #: ``cross_origin_subresult_hits`` counts catalog hits served by entries
    #: another cell/run registered — the cross-workflow reuse the ReStore
    #: design exists for.
    subresult_reuse_applications: int = 0
    jobs_eliminated_by_reuse: int = 0
    cross_origin_subresult_hits: int = 0
    subresult_stats: Optional[SubResultCatalogStats] = None

    def speedup_over(self, baseline: "OptimizerRun") -> float:
        """Speedup of this run's actual runtime over the baseline's."""
        if self.actual_s <= 0:
            return 0.0
        return baseline.actual_s / self.actual_s

    def decision_fingerprint(self) -> Tuple:
        """The run's *results* as comparable plain data.

        Everything the experiment decided or measured deterministically —
        and nothing that legitimately varies between equivalent runs: wall
        clock (``optimization_time_s``) and cache-placement stats (hit
        rates change with interleaving and warmth; the *results* must not).
        The orchestration identity contract is stated over this value.
        """
        return (
            self.optimizer,
            self.num_jobs,
            self.actual_s,
            self.estimated_s,
            self.output_equivalent,
            tuple(self.transformations),
        )


@dataclass
class WorkloadComparison:
    """All optimizer runs for one workload."""

    abbreviation: str
    name: str
    paper_dataset_gb: float
    unoptimized_jobs: int
    runs: Dict[str, OptimizerRun] = field(default_factory=dict)

    @property
    def baseline(self) -> OptimizerRun:
        """The Baseline run (reference for speedups)."""
        return self.runs["Baseline"]

    def speedup(self, optimizer: str) -> float:
        """Speedup of ``optimizer`` over the Baseline."""
        return self.runs[optimizer].speedup_over(self.baseline)

    def speedups(self) -> Dict[str, float]:
        """Speedups of every optimizer over the Baseline."""
        return {name: self.speedup(name) for name in self.runs}


@dataclass
class ExperimentRunResult:
    """Outcome of one orchestrated :meth:`ExperimentHarness.run`."""

    #: Per-workload comparisons, in the requested workload order.
    comparisons: Dict[str, WorkloadComparison]
    #: Optimizer names, in the requested (and per-workload run) order.
    optimizers: Tuple[str, ...]
    #: Spec of the experiment backend the cells ran on (e.g. "process:4").
    backend: str
    #: Wall-clock seconds of the serial preparation phase (build + profile +
    #: reference execution of every workload).
    prepare_s: float = 0.0
    #: Wall-clock seconds of the fanned-out cell phase — the part the
    #: experiment backend parallelizes.
    cells_s: float = 0.0
    #: Cost-service counter delta over the whole run (all cells combined).
    cost_stats: CostServiceStats = field(default_factory=CostServiceStats)
    #: Entries the harness's service absorbed from a persisted cache at
    #: construction (0 on a cold start).  Constructor-scoped provenance: a
    #: second ``run()`` on the same harness reports the same number.
    warm_start_entries: int = 0
    #: Per-vertex estimates already cached when *this* run's cells started —
    #: in-memory warmth from any source (disk load or a previous ``run()``
    #: on the same harness).  0 means the cells really started cold.
    cache_entries_at_start: int = 0
    #: The persisted-cache path in effect, or ``None``.
    cache_path: Optional[str] = None
    #: Decision-cache counter delta over the whole run (all cells combined).
    decision_stats: DecisionCacheStats = field(default_factory=DecisionCacheStats)
    #: The persisted decision-cache path in effect, or ``None``.
    decision_cache_path: Optional[str] = None
    #: Sub-result catalog counter delta over the whole run (all cells).
    subresult_stats: SubResultCatalogStats = field(default_factory=SubResultCatalogStats)
    #: The persisted sub-result catalog path in effect, or ``None``.
    subresult_catalog_path: Optional[str] = None

    @property
    def wall_s(self) -> float:
        """Total wall-clock seconds (preparation + cells)."""
        return self.prepare_s + self.cells_s

    @property
    def cross_unit_hits(self) -> int:
        """Cache hits reaped across cell boundaries, summed over all cells."""
        return sum(
            run.cross_unit_hits
            for comparison in self.comparisons.values()
            for run in comparison.runs.values()
        )

    @property
    def unit_decision_hits(self) -> int:
        """Unit searches skipped via memoized decisions, summed over all cells."""
        return sum(
            run.unit_decision_hits
            for comparison in self.comparisons.values()
            for run in comparison.runs.values()
        )

    @property
    def cross_origin_decision_hits(self) -> int:
        """Decision hits served across cell (or run) boundaries, all cells."""
        return sum(
            run.cross_origin_decision_hits
            for comparison in self.comparisons.values()
            for run in comparison.runs.values()
        )

    @property
    def subresult_reuse_applications(self) -> int:
        """Sub-result reuse rewrites across every cell's final plan."""
        return sum(
            run.subresult_reuse_applications
            for comparison in self.comparisons.values()
            for run in comparison.runs.values()
        )

    @property
    def jobs_eliminated_by_reuse(self) -> int:
        """Jobs the run's plans no longer execute thanks to stored sub-results."""
        return sum(
            run.jobs_eliminated_by_reuse
            for comparison in self.comparisons.values()
            for run in comparison.runs.values()
        )

    def comparison(self, abbreviation: str) -> WorkloadComparison:
        """The comparison of one workload."""
        return self.comparisons[abbreviation]

    def decision_fingerprint(self) -> Tuple:
        """Every cell's results as plain data — the identity-contract value.

        Two runs of the same experiment (any backend, any worker count, warm
        or cold cache) must produce equal fingerprints; see
        ``tests/test_experiment_orchestration.py``.
        """
        return tuple(
            (abbr, tuple(comparison.runs[name].decision_fingerprint() for name in self.optimizers))
            for abbr, comparison in self.comparisons.items()
        )

    def speedup_table(self) -> str:
        """Text table of speedups over the Baseline (one row per workload)."""
        return ExperimentHarness.format_speedup_table(
            list(self.comparisons.values()), self.optimizers
        )


class ExperimentHarness:
    """Runs workloads under several optimizers and collects the comparison."""

    FIGURE11_OPTIMIZERS = ("Baseline", "Stubby", "Vertical", "Horizontal")
    FIGURE12_OPTIMIZERS = ("Baseline", "Stubby", "Starfish", "YSmart", "MRShare")

    #: Distinguishes origin labels of successive run() calls (and of runs in
    #: other processes), so a warm-started cache's entries — stored by a
    #: previous run's cells under the *same* cell names — still register as
    #: cross-origin when this run hits them.
    _run_tokens = itertools.count(1)

    def __init__(
        self,
        cluster: Optional[ClusterSpec] = None,
        scale: float = 0.25,
        profile_noise: float = 0.0,
        seed: int = 42,
        search_backend=None,
        experiment_backend=None,
        cache_path: Optional[str] = None,
        decision_cache_path: Optional[str] = None,
        subresult_catalog_path: Optional[str] = None,
    ) -> None:
        self.cluster = cluster or ClusterSpec.paper_cluster()
        self.scale = scale
        self.profile_noise = profile_noise
        self.seed = seed
        #: Execution backend handed to every Stubby-search optimizer (spec
        #: string, backend instance, or None for STUBBY_SEARCH_BACKEND /
        #: serial).  The chosen plans are backend-independent by contract,
        #: so this only affects optimization wall-clock.
        self.search_backend = search_backend
        #: Default backend for :meth:`run`'s cell fan-out (spec string,
        #: backend instance, or None for STUBBY_EXPERIMENT_BACKEND / serial).
        self.experiment_backend = experiment_backend
        #: Persisted-cache path (explicit argument, else the
        #: STUBBY_COST_CACHE environment variable, else no persistence).
        #: The cost service warm-starts from it now; :meth:`run` saves back.
        self.cache_path = resolve_cache_path(cache_path)
        #: Persisted decision-cache path (explicit argument, else the
        #: STUBBY_DECISION_CACHE environment variable, else no persistence) —
        #: deliberately separate from ``cache_path`` so estimate warm starts
        #: and decision warm starts are opted into independently.
        self.decision_cache_path = resolve_decision_cache_path(decision_cache_path)
        self.executor = WorkflowExecutor()
        self.actual_model = ActualCostModel(self.cluster)
        self.costs = CostService(self.cluster, cache_path=self.cache_path)
        self.whatif = self.costs.engine
        #: One decision memo shared by every optimizer the harness builds —
        #: a unit solved by one cell is replayed, not re-searched, by every
        #: later cell that meets the same content (cross-origin attributed).
        self.decisions = DecisionCache(self.cluster, cache_path=self.decision_cache_path)
        #: Persisted sub-result catalog path (explicit argument, else the
        #: STUBBY_SUBRESULT_CATALOG environment variable, else no persistence).
        self.subresult_catalog_path = resolve_subresult_catalog_path(subresult_catalog_path)
        #: One sub-result catalog shared by every Stubby-variant optimizer the
        #: harness builds — an intermediate registered by (or for) one cell is
        #: reusable by every later cell that meets the same producing-subgraph
        #: content, with origin-tagged attribution like the cost service's.
        #: Empty unless something registers (see
        #: :meth:`register_workload_subresults`), so default harness behaviour
        #: is byte-identical to a harness without a catalog.
        self.subresults = SubResultCatalog(
            self.cluster, cache_path=self.subresult_catalog_path
        )
        #: Dispatch accounting of the most recent :meth:`run` (None before).
        self.last_dispatch_stats = None

    # ----------------------------------------------------------- optimizers
    def make_optimizer(self, name: str, seed: Optional[int] = None):
        """Instantiate an optimizer by its display name.

        Every optimizer is handed the harness's shared :class:`CostService`,
        so exact per-vertex estimates are reused across the optimizers (and
        workloads) of one comparison; per-run stats stay separable because
        each ``optimize()`` reports its own counter delta.

        ``seed`` overrides the search-RNG seed of the seeded optimizers
        (Stubby variants, Starfish); :meth:`run` passes each cell's derived
        seed through here.  Rule-based optimizers ignore it.
        """
        seeded = {} if seed is None else {"seed": seed}
        shared = {"cost_service": self.costs, "decision_cache": self.decisions}
        # Only the Stubby variants know the reuse transformation; the
        # baselines take no catalog (and must not — their plans are the
        # recompute reference the reuse rewrite is arbitrated against).
        stubby = {**shared, "subresult_catalog": self.subresults}
        if name == "Baseline":
            return PigBaselineOptimizer(self.cluster, **shared)
        if name == "Stubby":
            return StubbyOptimizer(
                self.cluster, backend=self.search_backend, **stubby, **seeded
            )
        if name == "Vertical":
            return StubbyOptimizer.vertical_only(
                self.cluster, backend=self.search_backend, **stubby, **seeded
            )
        if name == "Horizontal":
            return StubbyOptimizer.horizontal_only(
                self.cluster, backend=self.search_backend, **stubby, **seeded
            )
        if name == "Starfish":
            return StarfishOptimizer(self.cluster, **shared, **seeded)
        if name == "YSmart":
            return YSmartOptimizer(self.cluster, **shared)
        if name == "MRShare":
            return MRShareOptimizer(self.cluster, **shared)
        raise KeyError(f"unknown optimizer {name!r}")

    # ------------------------------------------------------------- workload
    def prepare_workload(self, abbreviation: str) -> Workload:
        """Build and profile a workload (profiles attached to its workflow)."""
        workload = build_workload(abbreviation, scale=self.scale, seed=self.seed)
        profiler = Profiler(noise=self.profile_noise, seed=self.seed)
        profiler.profile_workflow(workload.workflow, workload.base_datasets)
        return workload

    def compare(
        self,
        abbreviation: str,
        optimizers: Sequence[str] = FIGURE11_OPTIMIZERS,
        workload: Optional[Workload] = None,
    ) -> WorkloadComparison:
        """Run the requested optimizers on one workload and compare them."""
        workload = workload or self.prepare_workload(abbreviation)
        reference_outputs = self._reference_outputs(workload)

        comparison = WorkloadComparison(
            abbreviation=workload.abbreviation,
            name=workload.name,
            paper_dataset_gb=workload.paper_dataset_gb,
            unoptimized_jobs=workload.num_jobs,
        )
        for optimizer_name in optimizers:
            optimizer = self.make_optimizer(optimizer_name)
            # Each timed run starts cold so the reported optimization time
            # and what-if counters are standalone (order-independent) —
            # Figure 13 must not depend on which optimizer ran first.
            self.costs.invalidate()
            self.decisions.invalidate()
            result = optimizer.optimize(workload.plan)
            comparison.runs[optimizer_name] = self._evaluate(result, workload, reference_outputs)
        return comparison

    # ------------------------------------------------------- orchestrated run
    def run(
        self,
        workloads: Optional[Sequence[str]] = None,
        optimizers: Sequence[str] = FIGURE11_OPTIMIZERS,
        backend=None,
        dispatch: Optional[str] = None,
        persist: bool = True,
    ) -> ExperimentRunResult:
        """Run a whole experiment — every (workload × optimizer) cell — at once.

        Unlike :meth:`compare` (cold cache per optimizer, for standalone
        Figure 11–13 timings), the cells of one ``run`` share the harness's
        warm :class:`CostService`: structurally identical job signatures met
        by several cells are costed once (``OptimizerRun.cross_unit_hits``
        counts what each cell reaped from the others).  Cells are dispatched
        through the :class:`~repro.experiments.scheduler.ExperimentScheduler`
        onto ``backend`` (else the harness's ``experiment_backend``, else
        ``STUBBY_EXPERIMENT_BACKEND``, else serial); results are identical on
        every backend at any worker count, by the same determinism contract
        the unit search honours.

        With a ``cache_path`` configured the run warm-starts from the
        persisted store (done at harness construction) and — unless
        ``persist=False`` — saves the store back when the cells finish, so
        the next run's estimates start hot.
        """
        abbreviations = tuple(workloads) if workloads is not None else tuple(WORKLOAD_ORDER)
        optimizer_names = tuple(optimizers)
        # ``dispatch`` picks how cells land on workers ("static" deals them
        # up front, "stealing" lets idle workers pull the next one — better
        # for heterogeneous cells); None defers to STUBBY_EXPERIMENT_DISPATCH.
        scheduler = ExperimentScheduler(
            backend if backend is not None else self.experiment_backend,
            dispatch=dispatch,
        )

        # Serial, deterministic preparation: workloads are built, profiled,
        # and reference-executed before any fan-out, so forked cell workers
        # inherit them (workflow operators are closures — unpicklable).
        prepare_started = time.perf_counter()
        prepared: Dict[str, Tuple[Workload, Dict[str, list]]] = {}
        for abbr in abbreviations:
            workload = self.prepare_workload(abbr)
            prepared[abbr] = (workload, self._reference_outputs(workload))
        prepare_s = time.perf_counter() - prepare_started

        cells = build_cells(abbreviations, optimizer_names, self.seed)
        run_token = f"{os.getpid()}.{next(self._run_tokens)}"
        cache_entries_at_start = self.costs.cache_size

        def run_cell(cell: ExperimentCell) -> OptimizerRun:
            workload, reference_outputs = prepared[cell.workload]
            return self._run_cell(cell, workload, reference_outputs, run_token)

        decisions_before = self.decisions.stats_snapshot()
        subresults_before = self.subresults.stats_snapshot()
        with StatsWindow(self.costs) as window:
            cells_started = time.perf_counter()
            runs = scheduler.map_cells(
                cells, run_cell, self.costs, self.decisions, self.subresults
            )
            cells_s = time.perf_counter() - cells_started
        self.last_dispatch_stats = scheduler.last_dispatch_stats
        decision_stats = self.decisions.stats_snapshot().since(decisions_before)
        subresult_stats = self.subresults.stats_snapshot().since(subresults_before)

        comparisons: Dict[str, WorkloadComparison] = {}
        for cell, run in zip(cells, runs):
            workload, _ = prepared[cell.workload]
            comparison = comparisons.get(cell.workload)
            if comparison is None:
                comparison = comparisons[cell.workload] = WorkloadComparison(
                    abbreviation=workload.abbreviation,
                    name=workload.name,
                    paper_dataset_gb=workload.paper_dataset_gb,
                    unoptimized_jobs=workload.num_jobs,
                )
            comparison.runs[cell.optimizer] = run

        if persist and self.cache_path:
            self.costs.save_cache()
        if persist and self.decision_cache_path:
            self.decisions.save_cache()
        if persist and self.subresult_catalog_path:
            self.subresults.save_cache(merge_first=True)

        return ExperimentRunResult(
            comparisons=comparisons,
            optimizers=optimizer_names,
            backend=scheduler.spec,
            prepare_s=prepare_s,
            cells_s=cells_s,
            cost_stats=window.delta,
            warm_start_entries=(
                self.costs.last_load.entries
                if self.costs.last_load and self.costs.last_load.loaded
                else 0
            ),
            cache_entries_at_start=cache_entries_at_start,
            cache_path=self.cache_path,
            decision_stats=decision_stats,
            decision_cache_path=self.decision_cache_path,
            subresult_stats=subresult_stats,
            subresult_catalog_path=self.subresult_catalog_path,
        )

    def _run_cell(
        self,
        cell: ExperimentCell,
        workload: Workload,
        reference_outputs: Dict[str, list],
        run_token: str,
    ) -> OptimizerRun:
        """Execute one cell: optimize, evaluate, attach exact per-cell stats.

        Runs on whatever worker the experiment backend chose; everything
        here must therefore be deterministic given the cell alone.  The
        cell's cost activity is captured through a thread-local attribution
        sink (a global stats window would double-count concurrent
        neighbours), and its cache stores are origin-labelled so other
        cells' reuse of them is measurable.
        """
        optimizer = self.make_optimizer(cell.optimizer, seed=cell.seed)
        sink = CostServiceStats()
        subresult_sink = SubResultCatalogStats()
        label = f"{run_token}:{cell.label}"
        with self.costs.origin(label), self.costs.attribute_to(sink), \
                self.subresults.origin(label), self.subresults.attribute_to(subresult_sink):
            result = optimizer.optimize(workload.plan)
            run = self._evaluate(result, workload, reference_outputs)
            # Credit eliminated jobs from the *final* plan only — apply()
            # also runs for candidates that lose the cost arbitration, so
            # the catalog counter must not be bumped there.
            if result.jobs_eliminated_by_reuse:
                self.subresults.record_jobs_eliminated(result.jobs_eliminated_by_reuse)
        # The OptimizationResult's own stats window read the *global*
        # counters, which concurrent cells pollute; the sink is exact.
        run.whatif_queries = sink.queries
        run.jobs_recosted = sink.jobs_recosted
        run.cache_hit_rate = sink.cache_hit_rate
        run.cross_unit_hits = sink.cross_origin_hits
        run.cost_stats = sink
        run.cross_origin_subresult_hits = subresult_sink.cross_origin_hits
        run.subresult_stats = subresult_sink
        return run

    def persist_cache(self) -> int:
        """Save the cost-service store to the configured ``cache_path``.

        Returns the number of entries written, or 0 when no path is
        configured (so callers can invoke it unconditionally).
        """
        if not self.cache_path:
            return 0
        return self.costs.save_cache()

    def register_workload_subresults(
        self,
        abbreviation: Optional[str] = None,
        workload: Optional[Workload] = None,
        origin: Optional[str] = None,
    ) -> int:
        """Execute a workload unoptimized and register its intermediates.

        This is the explicit ReStore-style warm-up: the workload's
        *unoptimized* workflow runs once with per-job output collection, and
        every intermediate dataset (produced **and** consumed inside the
        workflow) lands in the harness's shared :class:`SubResultCatalog`
        under its producing-subgraph content signature.  Later
        :meth:`compare`/:meth:`run` cells whose workflows contain a
        signature-equal subgraph are then free to reuse the stored bytes
        instead of recomputing — arbitrated by the cost model like every
        other transformation.  Registration is deliberately opt-in:
        reference executions never register implicitly, so existing
        experiment numbers are untouched unless a caller asks for reuse.

        Returns the number of catalog entries registered.
        """
        workload = workload or self.prepare_workload(abbreviation)
        execution, _ = self.executor.execute(
            workload.workflow.copy(),
            base_datasets=workload.base_datasets,
            collect_outputs=True,
        )
        outputs: Dict[str, list] = {}
        for job_outputs in execution.job_outputs.values():
            outputs.update(job_outputs)
        return register_workflow_outputs(
            self.subresults,
            workload.workflow,
            outputs,
            origin=origin or f"warmup:{workload.abbreviation}",
        )

    def _reference_outputs(self, workload: Workload) -> Dict[str, list]:
        execution, filesystem = self.executor.execute(
            workload.workflow.copy(), base_datasets=workload.base_datasets
        )
        outputs = {}
        for dataset_vertex in workload.workflow.terminal_datasets():
            if filesystem.exists(dataset_vertex.name):
                outputs[dataset_vertex.name] = filesystem.get(dataset_vertex.name).all_records()
        return outputs

    def _evaluate(
        self,
        result: OptimizationResult,
        workload: Workload,
        reference_outputs: Dict[str, list],
    ) -> OptimizerRun:
        execution, filesystem = self.executor.execute(
            result.plan.workflow, base_datasets=workload.base_datasets
        )
        actual = self.actual_model.workflow_cost(result.plan.workflow, execution, filesystem)
        equivalent = True
        for name, reference in reference_outputs.items():
            if not filesystem.exists(name):
                equivalent = False
                continue
            if not records_equal(reference, filesystem.get(name).all_records()):
                equivalent = False
        stats = result.cost_stats
        return OptimizerRun(
            optimizer=result.optimizer,
            num_jobs=result.num_jobs,
            actual_s=actual.total_s,
            estimated_s=result.estimated_cost_s,
            optimization_time_s=result.optimization_time_s,
            output_equivalent=equivalent,
            transformations=[t for t in result.transformations_applied if t != "configuration"],
            whatif_queries=stats.queries if stats is not None else 0,
            jobs_recosted=stats.jobs_recosted if stats is not None else 0,
            cache_hit_rate=stats.cache_hit_rate if stats is not None else 0.0,
            unit_decision_hits=result.unit_decision_hits,
            unit_decision_misses=result.unit_decision_misses,
            cross_origin_decision_hits=result.cross_origin_decision_hits,
            subresult_reuse_applications=result.subresult_reuse_applications,
            jobs_eliminated_by_reuse=result.jobs_eliminated_by_reuse,
        )

    # ---------------------------------------------------------- deep dives
    def unit_deep_dive(
        self,
        abbreviation: str = "IR",
        workload: Optional[Workload] = None,
    ) -> List[Tuple[Tuple[str, ...], float, float]]:
        """Figure 14: (transformations, estimated, actual) per subplan of the first unit.

        Every subplan enumerated for the workload's first optimization unit is
        configured with its best RRS settings, executed, and costed both ways.
        """
        workload = workload or self.prepare_workload(abbreviation)
        plan = workload.plan
        search = StubbySearch(
            cluster=self.cluster,
            vertical_transformations=[
                IntraJobVerticalPacking(),
                InterJobVerticalPacking(),
                PartitionFunctionTransformation(),
            ],
            horizontal_transformations=[HorizontalPacking(), PartitionFunctionTransformation()],
        )
        generator = OptimizationUnitGenerator()
        unit = generator.next_unit(plan)
        if unit is None:
            return []
        _, report = search.optimize_unit(plan, unit, search.vertical_transformations, phase="vertical")

        results: List[Tuple[Tuple[str, ...], float, float]] = []
        for record in report.subplans:
            candidate = record.plan.copy()
            if record.best_settings:
                ConfigurationTransformation.apply_settings_in_place(candidate, record.best_settings)
            execution, filesystem = self.executor.execute(
                candidate.workflow, base_datasets=workload.base_datasets
            )
            actual = self.actual_model.workflow_cost(candidate.workflow, execution, filesystem)
            results.append((record.transformations, record.estimated_cost, actual.total_s))
        return results

    # -------------------------------------------------------------- reports
    @staticmethod
    def format_speedup_table(
        comparisons: Sequence[WorkloadComparison],
        optimizers: Sequence[str],
    ) -> str:
        """Text table of speedups over the Baseline (one row per workload)."""
        header = "workload  " + "  ".join(f"{name:>10}" for name in optimizers)
        lines = [header]
        for comparison in comparisons:
            cells = []
            for name in optimizers:
                if name in comparison.runs:
                    cells.append(f"{comparison.speedup(name):>10.2f}")
                else:
                    cells.append(f"{'-':>10}")
            lines.append(f"{comparison.abbreviation:<9} " + "  ".join(cells))
        return "\n".join(lines)

    @staticmethod
    def format_overhead_table(comparisons: Sequence[WorkloadComparison]) -> str:
        """Text table of Stubby's optimization overhead (Figure 13)."""
        lines = [
            "workload  optimization_s  baseline_runtime_s  overhead_pct  whatif_q  hit_rate"
        ]
        for comparison in comparisons:
            stubby = comparison.runs.get("Stubby")
            baseline = comparison.runs.get("Baseline")
            if stubby is None or baseline is None:
                continue
            pct = 100.0 * stubby.optimization_time_s / max(1e-9, baseline.actual_s)
            lines.append(
                f"{comparison.abbreviation:<9} {stubby.optimization_time_s:>14.2f} "
                f"{baseline.actual_s:>19.1f} {pct:>13.3f} {stubby.whatif_queries:>9d} "
                f"{stubby.cache_hit_rate:>9.2f}"
            )
        return "\n".join(lines)
