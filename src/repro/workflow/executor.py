"""Workflow execution: run every job of a workflow on the local engine.

The executor stages base datasets into an in-memory filesystem, runs jobs in
topological order, and records per-job execution counters.  Those counters
feed the cluster cost simulator to produce the "actual" simulated runtime of
the workflow on the configured cluster, and feed the profiler when building
profile annotations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.common.errors import ExecutionError
from repro.common.records import Record
from repro.dfs.dataset import Dataset
from repro.dfs.filesystem import InMemoryFileSystem
from repro.mapreduce.counters import ExecutionCounters
from repro.mapreduce.engine import JobExecutionResult, LocalEngine
from repro.workflow.graph import Workflow


@dataclass
class WorkflowExecutionResult:
    """Outcome of executing a workflow end to end."""

    workflow_name: str
    job_results: Dict[str, JobExecutionResult] = field(default_factory=dict)
    wall_clock_seconds: float = 0.0
    #: Per-job snapshot of every output dataset's records, taken right after
    #: the job ran (before any downstream job could overwrite the dataset).
    #: Filled only when executing with ``collect_outputs=True``; this is what
    #: the differential-verification harness diffs at job granularity.
    job_outputs: Dict[str, Dict[str, List[Record]]] = field(default_factory=dict)

    @property
    def execution_order(self) -> List[str]:
        """Job names in the order they were executed (topological)."""
        return list(self.job_results)

    @property
    def total_counters(self) -> ExecutionCounters:
        """Counters summed over every job in the workflow."""
        total = ExecutionCounters()
        for result in self.job_results.values():
            total.merge(result.counters)
        return total

    @property
    def num_jobs(self) -> int:
        """Number of jobs that were executed."""
        return len(self.job_results)

    def counters_for(self, job_name: str) -> ExecutionCounters:
        """Counters of a specific job."""
        if job_name not in self.job_results:
            raise ExecutionError(f"no execution result for job {job_name!r}")
        return self.job_results[job_name].counters


class WorkflowExecutor:
    """Runs workflows on a :class:`LocalEngine` over an in-memory filesystem."""

    def __init__(self, engine: Optional[LocalEngine] = None) -> None:
        self.engine = engine or LocalEngine()

    def execute(
        self,
        workflow: Workflow,
        base_datasets: Optional[Mapping[str, Dataset]] = None,
        filesystem: Optional[InMemoryFileSystem] = None,
        collect_outputs: bool = False,
    ) -> tuple:
        """Execute ``workflow``; returns ``(result, filesystem)``.

        ``base_datasets`` supplies materialized data for base dataset
        vertices by name; alternatively the workflow's dataset vertices may
        already carry materialized datasets, or an existing ``filesystem``
        with the data staged can be passed in.  With ``collect_outputs`` the
        result additionally snapshots every job's output records
        (``result.job_outputs``) for job-level differential comparison.
        """
        workflow.validate()
        fs = filesystem or InMemoryFileSystem()
        self._stage_inputs(workflow, base_datasets or {}, fs)

        result = WorkflowExecutionResult(workflow_name=workflow.name)
        started = time.perf_counter()
        for vertex in workflow.topological_order():
            for input_name in vertex.job.input_datasets:
                if not fs.exists(input_name):
                    raise ExecutionError(
                        f"job {vertex.name!r} needs dataset {input_name!r} which is neither "
                        "a staged base dataset nor produced by an upstream job"
                    )
            job_result = self.engine.execute_job(vertex.job, fs)
            result.job_results[vertex.name] = job_result
            if collect_outputs:
                # Reuse the engine-level snapshot when the engine collected
                # one; otherwise read the just-written datasets back.
                result.job_outputs[vertex.name] = job_result.output_records or {
                    name: fs.get(name).all_records() for name in job_result.output_datasets
                }
        result.wall_clock_seconds = time.perf_counter() - started
        return result, fs

    def execute_plan(
        self,
        plan,
        base_datasets: Optional[Mapping[str, Dataset]] = None,
        filesystem: Optional[InMemoryFileSystem] = None,
        collect_outputs: bool = True,
    ) -> tuple:
        """Execute a :class:`~repro.core.plan.Plan` end to end.

        Convenience hook for the verification subsystem: runs the plan's
        workflow and (by default) collects per-job outputs so divergences can
        be localized to the job that produced them.  Returns
        ``(result, filesystem)`` exactly like :meth:`execute`.
        """
        return self.execute(
            plan.workflow,
            base_datasets=base_datasets,
            filesystem=filesystem,
            collect_outputs=collect_outputs,
        )

    @staticmethod
    def _stage_inputs(
        workflow: Workflow,
        base_datasets: Mapping[str, Dataset],
        fs: InMemoryFileSystem,
    ) -> None:
        for dataset_vertex in workflow.base_datasets():
            name = dataset_vertex.name
            if fs.exists(name):
                continue
            if name in base_datasets:
                fs.put(base_datasets[name])
            elif dataset_vertex.dataset is not None:
                fs.put(dataset_vertex.dataset)
        # Non-base vertices with materialized data (e.g. when re-running only
        # part of a workflow) are also staged if nothing will produce them.
        for dataset_vertex in workflow.datasets:
            if fs.exists(dataset_vertex.name):
                continue
            if dataset_vertex.dataset is not None and workflow.producer_of(dataset_vertex.name) is None:
                fs.put(dataset_vertex.dataset)
