"""Workflow execution: run every job of a workflow on the local engine.

The executor stages base datasets into an in-memory filesystem, runs jobs in
topological order, and records per-job execution counters.  Those counters
feed the cluster cost simulator to produce the "actual" simulated runtime of
the workflow on the configured cluster, and feed the profiler when building
profile annotations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.common.errors import ExecutionError
from repro.dfs.dataset import Dataset
from repro.dfs.filesystem import InMemoryFileSystem
from repro.mapreduce.counters import ExecutionCounters
from repro.mapreduce.engine import JobExecutionResult, LocalEngine
from repro.workflow.graph import Workflow


@dataclass
class WorkflowExecutionResult:
    """Outcome of executing a workflow end to end."""

    workflow_name: str
    job_results: Dict[str, JobExecutionResult] = field(default_factory=dict)
    wall_clock_seconds: float = 0.0

    @property
    def total_counters(self) -> ExecutionCounters:
        """Counters summed over every job in the workflow."""
        total = ExecutionCounters()
        for result in self.job_results.values():
            total.merge(result.counters)
        return total

    @property
    def num_jobs(self) -> int:
        """Number of jobs that were executed."""
        return len(self.job_results)

    def counters_for(self, job_name: str) -> ExecutionCounters:
        """Counters of a specific job."""
        if job_name not in self.job_results:
            raise ExecutionError(f"no execution result for job {job_name!r}")
        return self.job_results[job_name].counters


class WorkflowExecutor:
    """Runs workflows on a :class:`LocalEngine` over an in-memory filesystem."""

    def __init__(self, engine: Optional[LocalEngine] = None) -> None:
        self.engine = engine or LocalEngine()

    def execute(
        self,
        workflow: Workflow,
        base_datasets: Optional[Mapping[str, Dataset]] = None,
        filesystem: Optional[InMemoryFileSystem] = None,
    ) -> tuple:
        """Execute ``workflow``; returns ``(result, filesystem)``.

        ``base_datasets`` supplies materialized data for base dataset
        vertices by name; alternatively the workflow's dataset vertices may
        already carry materialized datasets, or an existing ``filesystem``
        with the data staged can be passed in.
        """
        workflow.validate()
        fs = filesystem or InMemoryFileSystem()
        self._stage_inputs(workflow, base_datasets or {}, fs)

        result = WorkflowExecutionResult(workflow_name=workflow.name)
        started = time.perf_counter()
        for vertex in workflow.topological_order():
            for input_name in vertex.job.input_datasets:
                if not fs.exists(input_name):
                    raise ExecutionError(
                        f"job {vertex.name!r} needs dataset {input_name!r} which is neither "
                        "a staged base dataset nor produced by an upstream job"
                    )
            result.job_results[vertex.name] = self.engine.execute_job(vertex.job, fs)
        result.wall_clock_seconds = time.perf_counter() - started
        return result, fs

    @staticmethod
    def _stage_inputs(
        workflow: Workflow,
        base_datasets: Mapping[str, Dataset],
        fs: InMemoryFileSystem,
    ) -> None:
        for dataset_vertex in workflow.base_datasets():
            name = dataset_vertex.name
            if fs.exists(name):
                continue
            if name in base_datasets:
                fs.put(base_datasets[name])
            elif dataset_vertex.dataset is not None:
                fs.put(dataset_vertex.dataset)
        # Non-base vertices with materialized data (e.g. when re-running only
        # part of a workflow) are also staged if nothing will produce them.
        for dataset_vertex in workflow.datasets:
            if fs.exists(dataset_vertex.name):
                continue
            if dataset_vertex.dataset is not None and workflow.producer_of(dataset_vertex.name) is None:
                fs.put(dataset_vertex.dataset)
