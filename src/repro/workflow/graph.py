"""The workflow DAG: MapReduce jobs and datasets in producer-consumer relationships.

A workflow ``W`` is a DAG ``G_W`` whose vertices are MapReduce jobs and
datasets, and whose edges connect jobs to their input and output datasets
(paper §2.1).  Edges are derived from the jobs' declared input/output dataset
names, so the graph is always consistent with the executable jobs it holds.

Workflows are **copy-on-write**: :meth:`Workflow.copy` shares the vertex
objects between the original and the clone (only the name→vertex mappings are
duplicated), and every shared vertex is copied lazily the first time either
side mutates it through :meth:`Workflow.mutate_job` /
:meth:`Workflow.update_job` / :meth:`Workflow.add_dataset`.  Stubby's
transformations are local rewrites (paper §3), so a candidate plan typically
privatizes one or two vertices out of a workflow of many — the deep-copy tax
of enumeration drops from O(jobs) to O(jobs touched).  The contract this
rests on:

* **shared vertices are never mutated in place** — all mutation goes through
  the CoW accessors above, which privatize first;
* **an owned (privatized) vertex's payload is private** — its
  ``JobAnnotations`` is always copied, and its job/pipelines are either
  copied (``mutate_job``) or freshly constructed by the caller
  (``update_job``, :meth:`Workflow.replace_job`), so in-place pipeline edits
  on an owned vertex can never reach a sibling plan.

:data:`COPY_COUNTERS` tallies vertex copies actually performed against the
copies a wholesale deep copy would have performed — the measured basis of
``BENCH_plan_cow.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import WorkflowValidationError
from repro.dfs.dataset import Dataset
from repro.mapreduce.job import MapReduceJob
from repro.workflow.annotations import DatasetAnnotation, JobAnnotations


class CopyCounters:
    """Process-wide tallies of plan/vertex copying (CoW instrumentation).

    ``vertex_copies`` counts *full* job-vertex copies (job + pipelines +
    annotations); ``vertex_shell_copies`` counts borrowed privatizations
    (annotations copied, job payload shared — the cheap CoW path of the
    configuration hot loop); ``legacy_vertex_copies`` counts the full copies
    the pre-CoW wholesale ``Workflow.copy`` performs (every job of every
    copied workflow), so ``legacy_vertex_copies / vertex_copies`` is the
    measured copy-tax reduction.  Counters are advisory (no lock): the
    benchmarks that assert on them run single-threaded.
    """

    __slots__ = (
        "workflow_copies",
        "vertex_copies",
        "vertex_shell_copies",
        "dataset_vertex_copies",
        "legacy_vertex_copies",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters (benchmarks call this before a measured window)."""
        self.workflow_copies = 0
        self.vertex_copies = 0
        self.vertex_shell_copies = 0
        self.dataset_vertex_copies = 0
        self.legacy_vertex_copies = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view of the current counters."""
        return {name: getattr(self, name) for name in self.__slots__}


#: The process-wide counter instance (see :class:`CopyCounters`).
COPY_COUNTERS = CopyCounters()

#: Structural sharing switch.  Always on in production; the plan-CoW
#: benchmark flips it off to measure the legacy wholesale-deep-copy baseline
#: against the same workloads (decisions must be bit-identical either way).
_COW_ENABLED = True


def set_cow_enabled(enabled: bool) -> bool:
    """Enable/disable copy-on-write plan copies; returns the previous value.

    With CoW disabled, :meth:`Workflow.copy` eagerly deep-copies every vertex
    (the pre-CoW behaviour).  Semantics are identical either way — the CoW
    protocol only changes *when* copies happen — so this is purely a
    measurement baseline for ``benchmarks/test_bench_plan_cow.py``.
    """
    global _COW_ENABLED
    previous = _COW_ENABLED
    _COW_ENABLED = bool(enabled)
    return previous


def cow_enabled() -> bool:
    """Whether workflow copies currently share vertices (see :func:`set_cow_enabled`)."""
    return _COW_ENABLED


@dataclass
class JobVertex:
    """A job vertex: the executable job plus its annotations."""

    job: MapReduceJob
    annotations: JobAnnotations = field(default_factory=JobAnnotations)

    @property
    def name(self) -> str:
        """The job's name (vertex identity)."""
        return self.job.name

    def copy(self, copy_job: bool = True) -> "JobVertex":
        """Copy of the vertex with copied annotations (and, by default, job).

        ``copy_job=False`` *borrows* the job object instead of copying it —
        for callers about to rebind ``.job`` with a derived job anyway
        (:meth:`Workflow.update_job`) or that only mutate annotations.  A
        borrowed job must never be mutated in place; the owning workflow
        tracks borrowed payloads and copies them before any in-place job
        mutation (see :meth:`Workflow.mutate_job`).
        """
        if copy_job:
            COPY_COUNTERS.vertex_copies += 1
        else:
            COPY_COUNTERS.vertex_shell_copies += 1
        return JobVertex(
            job=self.job.copy() if copy_job else self.job,
            annotations=self.annotations.copy(),
        )


@dataclass
class DatasetVertex:
    """A dataset vertex: name, optional materialized data, and annotations."""

    name: str
    dataset: Optional[Dataset] = None
    annotation: Optional[DatasetAnnotation] = None

    def copy(self) -> "DatasetVertex":
        """Copy of the vertex (the materialized dataset object is shared)."""
        COPY_COUNTERS.dataset_vertex_copies += 1
        return DatasetVertex(name=self.name, dataset=self.dataset, annotation=self.annotation)


class Workflow:
    """A DAG of MapReduce jobs connected through datasets."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._jobs: Dict[str, JobVertex] = {}
        self._datasets: Dict[str, DatasetVertex] = {}
        #: Names of vertices whose *objects* are shared with another workflow
        #: (populated by :meth:`copy`, drained by the CoW accessors).  A name
        #: absent from the set means this workflow owns the vertex privately.
        self._shared_jobs: Set[str] = set()
        self._shared_datasets: Set[str] = set()
        #: Owned vertices whose ``.job`` payload is still shared (privatized
        #: with ``copy_job=False``); an in-place job mutation must copy the
        #: payload first.
        self._borrowed_jobs: Set[str] = set()

    # ---------------------------------------------------------- construction
    def add_job(
        self,
        job: MapReduceJob,
        annotations: Optional[JobAnnotations] = None,
    ) -> JobVertex:
        """Add a job vertex (dataset vertices for its inputs/outputs are auto-created)."""
        if job.name in self._jobs:
            raise WorkflowValidationError(f"duplicate job name {job.name!r}")
        vertex = JobVertex(job=job, annotations=annotations or JobAnnotations())
        self._jobs[job.name] = vertex
        self._shared_jobs.discard(job.name)
        for dataset_name in job.input_datasets + job.output_datasets:
            if dataset_name not in self._datasets:
                self._datasets[dataset_name] = DatasetVertex(name=dataset_name)
        return vertex

    def add_dataset(
        self,
        name: str,
        dataset: Optional[Dataset] = None,
        annotation: Optional[DatasetAnnotation] = None,
    ) -> DatasetVertex:
        """Add (or enrich) a dataset vertex (copy-on-write when shared)."""
        vertex = self._datasets.get(name)
        if vertex is None:
            vertex = DatasetVertex(name=name)
            self._datasets[name] = vertex
            self._shared_datasets.discard(name)
        elif (dataset is not None or annotation is not None) and name in self._shared_datasets:
            vertex = vertex.copy()
            self._datasets[name] = vertex
            self._shared_datasets.discard(name)
        if dataset is not None:
            vertex.dataset = dataset
        if annotation is not None:
            vertex.annotation = annotation
        return vertex

    def remove_job(self, name: str) -> None:
        """Remove a job vertex (dataset vertices are kept; prune separately)."""
        if name not in self._jobs:
            raise WorkflowValidationError(f"job {name!r} not in workflow")
        del self._jobs[name]
        self._shared_jobs.discard(name)
        self._borrowed_jobs.discard(name)

    def remove_dataset(self, name: str) -> None:
        """Remove a dataset vertex if no remaining job references it."""
        for vertex in self._jobs.values():
            job = vertex.job
            if name in job.input_datasets or name in job.output_datasets:
                raise WorkflowValidationError(
                    f"dataset {name!r} is still referenced by job {job.name!r}"
                )
        self._datasets.pop(name, None)
        self._shared_datasets.discard(name)

    def prune_orphan_datasets(self) -> List[str]:
        """Drop dataset vertices no job reads or writes; returns their names."""
        referenced: Set[str] = set()
        for vertex in self._jobs.values():
            referenced.update(vertex.job.input_datasets)
            referenced.update(vertex.job.output_datasets)
        orphans = [name for name in self._datasets if name not in referenced]
        for name in orphans:
            del self._datasets[name]
            self._shared_datasets.discard(name)
        return orphans

    # ------------------------------------------------------------- accessors
    @property
    def jobs(self) -> List[JobVertex]:
        """Job vertices in insertion order."""
        return list(self._jobs.values())

    @property
    def job_names(self) -> List[str]:
        """Job names in insertion order."""
        return list(self._jobs)

    @property
    def datasets(self) -> List[DatasetVertex]:
        """Dataset vertices in insertion order."""
        return list(self._datasets.values())

    def job(self, name: str) -> JobVertex:
        """Fetch a job vertex by name."""
        if name not in self._jobs:
            raise WorkflowValidationError(f"job {name!r} not in workflow")
        return self._jobs[name]

    def has_job(self, name: str) -> bool:
        """Whether a job with this name exists."""
        return name in self._jobs

    def dataset(self, name: str) -> DatasetVertex:
        """Fetch a dataset vertex by name."""
        if name not in self._datasets:
            raise WorkflowValidationError(f"dataset {name!r} not in workflow")
        return self._datasets[name]

    def has_dataset(self, name: str) -> bool:
        """Whether a dataset with this name exists."""
        return name in self._datasets

    # ------------------------------------------------------------- structure
    def producer_of(self, dataset_name: str) -> Optional[JobVertex]:
        """The job writing ``dataset_name`` (``None`` for base datasets)."""
        for vertex in self._jobs.values():
            if dataset_name in vertex.job.output_datasets:
                return vertex
        return None

    def consumers_of(self, dataset_name: str) -> List[JobVertex]:
        """All jobs reading ``dataset_name``."""
        return [v for v in self._jobs.values() if dataset_name in v.job.input_datasets]

    def producer_jobs(self, job_name: str) -> List[JobVertex]:
        """Jobs whose output datasets this job reads."""
        vertex = self.job(job_name)
        producers: List[JobVertex] = []
        for dataset_name in vertex.job.input_datasets:
            producer = self.producer_of(dataset_name)
            if producer is not None and producer.name != job_name and producer not in producers:
                producers.append(producer)
        return producers

    def consumer_jobs(self, job_name: str) -> List[JobVertex]:
        """Jobs that read any of this job's output datasets."""
        vertex = self.job(job_name)
        consumers: List[JobVertex] = []
        for dataset_name in vertex.job.output_datasets:
            for consumer in self.consumers_of(dataset_name):
                if consumer.name != job_name and consumer not in consumers:
                    consumers.append(consumer)
        return consumers

    def base_datasets(self) -> List[DatasetVertex]:
        """Dataset vertices produced by no job (the workflow inputs)."""
        return [d for d in self._datasets.values() if self.producer_of(d.name) is None]

    def terminal_datasets(self) -> List[DatasetVertex]:
        """Dataset vertices consumed by no job (the workflow outputs)."""
        return [d for d in self._datasets.values() if not self.consumers_of(d.name)]

    def intermediate_datasets(self) -> List[DatasetVertex]:
        """Datasets both produced and consumed inside the workflow."""
        return [
            d
            for d in self._datasets.values()
            if self.producer_of(d.name) is not None and self.consumers_of(d.name)
        ]

    @property
    def num_jobs(self) -> int:
        """Number of job vertices."""
        return len(self._jobs)

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check the workflow is a consistent DAG; raise on problems."""
        writers: Dict[str, str] = {}
        for vertex in self._jobs.values():
            for output in vertex.job.output_datasets:
                if output in writers and writers[output] != vertex.name:
                    raise WorkflowValidationError(
                        f"dataset {output!r} written by both {writers[output]!r} and {vertex.name!r}"
                    )
                writers[output] = vertex.name
            overlap = set(vertex.job.input_datasets) & set(vertex.job.output_datasets)
            if overlap:
                raise WorkflowValidationError(
                    f"job {vertex.name!r} reads and writes the same dataset(s): {sorted(overlap)}"
                )
        # Cycle detection via topological sort.
        self.topological_order()

    def topological_order(self) -> List[JobVertex]:
        """Jobs in topological (producer before consumer) order.

        Ties are broken by insertion order so traversal — and therefore the
        optimizer's optimization-unit generation — is deterministic.
        """
        in_degree: Dict[str, int] = {}
        for vertex in self._jobs.values():
            in_degree[vertex.name] = len(self.producer_jobs(vertex.name))
        order: List[JobVertex] = []
        ready = [name for name in self._jobs if in_degree[name] == 0]
        while ready:
            name = ready.pop(0)
            vertex = self._jobs[name]
            order.append(vertex)
            for consumer in self.consumer_jobs(name):
                in_degree[consumer.name] -= 1
                if in_degree[consumer.name] == 0:
                    ready.append(consumer.name)
            ready.sort(key=lambda n: list(self._jobs).index(n))
        if len(order) != len(self._jobs):
            raise WorkflowValidationError("workflow graph contains a cycle")
        return order

    def topological_levels(self) -> List[List[JobVertex]]:
        """Jobs grouped into levels of concurrently runnable jobs.

        A job's level is one more than the maximum level of its producers;
        jobs in the same level have no dependency path between them and can
        run concurrently on the cluster.
        """
        levels: Dict[str, int] = {}
        for vertex in self.topological_order():
            producers = self.producer_jobs(vertex.name)
            levels[vertex.name] = 1 + max((levels[p.name] for p in producers), default=-1)
        grouped: Dict[int, List[JobVertex]] = {}
        for name, level in levels.items():
            grouped.setdefault(level, []).append(self._jobs[name])
        return [grouped[level] for level in sorted(grouped)]

    def depends_on(self, consumer: str, producer: str) -> bool:
        """Whether ``consumer`` transitively depends on ``producer``."""
        frontier = [consumer]
        seen: Set[str] = set()
        while frontier:
            current = frontier.pop()
            if current == producer:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(p.name for p in self.producer_jobs(current))
        return False

    # ----------------------------------------------------------------- copy
    def copy(self, name: Optional[str] = None) -> "Workflow":
        """Structurally shared (copy-on-write) clone of the workflow.

        Only the name→vertex mappings are duplicated; the vertex objects
        themselves are shared between the clone and the original, and both
        sides mark every current vertex as shared so any later mutation —
        on either side — privatizes the touched vertex first (see the module
        docstring for the contract).  Structural edits (add/remove/replace)
        only touch the per-workflow mappings, so they never require copies.
        """
        COPY_COUNTERS.workflow_copies += 1
        COPY_COUNTERS.legacy_vertex_copies += len(self._jobs)
        clone = Workflow(name=name or self.name)
        if not _COW_ENABLED:
            # Benchmark baseline: the pre-CoW wholesale deep copy.
            for vertex in self._jobs.values():
                clone._jobs[vertex.name] = vertex.copy()
            for dataset_vertex in self._datasets.values():
                clone._datasets[dataset_vertex.name] = dataset_vertex.copy()
            return clone
        clone._jobs = dict(self._jobs)
        clone._datasets = dict(self._datasets)
        clone._shared_jobs = set(self._jobs)
        clone._shared_datasets = set(self._datasets)
        clone._borrowed_jobs = set(self._borrowed_jobs)
        # Every vertex the original holds is now also referenced by the
        # clone, so the original must CoW its own future mutations too.
        self._shared_jobs = set(self._jobs)
        self._shared_datasets = set(self._datasets)
        return clone

    # --------------------------------------------------------- CoW mutation
    def mutate_job(self, name: str, copy_job: bool = True) -> JobVertex:
        """Privatize (if shared) and return the job vertex for mutation.

        The returned vertex is exclusively owned by this workflow: in-place
        edits to it (annotations, and — with ``copy_job=True`` — its job's
        pipelines) cannot reach any other workflow.  ``copy_job=False``
        borrows the job payload for callers that will rebind ``.job`` or
        only touch annotations; prefer :meth:`update_job` for the rebind
        pattern, which clears the borrow marker.
        """
        vertex = self.job(name)
        if name in self._shared_jobs:
            vertex = vertex.copy(copy_job=copy_job)
            self._jobs[name] = vertex
            self._shared_jobs.discard(name)
            if copy_job:
                self._borrowed_jobs.discard(name)
            else:
                self._borrowed_jobs.add(name)
            return vertex
        if copy_job and name in self._borrowed_jobs:
            # Owned vertex, but its job payload is still shared: privatize
            # the payload before the caller mutates pipelines in place.
            COPY_COUNTERS.vertex_copies += 1
            vertex.job = vertex.job.copy()
            self._borrowed_jobs.discard(name)
        return vertex

    def update_job(self, name: str, derive: Callable[[MapReduceJob], MapReduceJob]) -> JobVertex:
        """CoW-rebind a vertex's job: ``vertex.job = derive(vertex.job)``.

        The job object is never copied — ``derive`` builds the replacement
        (e.g. ``job.with_config(...)``), a fresh job of the same name.  This
        is the cheap path for the configuration hot loop: one annotations
        copy plus whatever ``derive`` builds, instead of a full vertex deep
        copy.  The derived job may *share* pipeline objects with the source
        (``with_config``/``with_partitioner`` do), so the vertex keeps its
        borrowed-payload marker: a later :meth:`mutate_job` with
        ``copy_job=True`` still privatizes the pipelines before any in-place
        edit.
        """
        vertex = self.mutate_job(name, copy_job=False)
        new_job = derive(vertex.job)
        if new_job.name != name:
            raise WorkflowValidationError(
                f"update_job cannot rename {name!r} to {new_job.name!r}; use replace_job"
            )
        vertex.job = new_job
        return vertex

    def dirty_jobs(self) -> Set[str]:
        """Names of job vertices privately owned by this workflow.

        After a :meth:`copy` the set is empty; it grows as vertices are
        privatized (mutated) or created.  Together with structural sharing
        this is the plan's *dirty set*: a vertex outside it is the same
        object as in the workflow it was copied from, which is what lets the
        What-if engine serve its cost signature from an identity-keyed memo
        (see :meth:`repro.whatif.model.WhatIfEngine.vertex_dataflow_signature`).
        """
        return set(self._jobs) - self._shared_jobs

    def replace_job(self, name: str, job: MapReduceJob, annotations: Optional[JobAnnotations] = None) -> None:
        """Replace a job vertex in place, keeping its position in insertion order."""
        if name not in self._jobs:
            raise WorkflowValidationError(f"job {name!r} not in workflow")
        existing = self._jobs[name]
        if annotations is None:
            # Defaulting from a *shared* vertex must not alias its mutable
            # annotations container into the new (owned) vertex.
            annotations = (
                existing.annotations.copy() if name in self._shared_jobs else existing.annotations
            )
        new_vertex = JobVertex(job=job, annotations=annotations)
        rebuilt: Dict[str, JobVertex] = {}
        for key, value in self._jobs.items():
            if key == name:
                rebuilt[job.name] = new_vertex
            else:
                rebuilt[key] = value
        self._jobs = rebuilt
        self._shared_jobs.discard(name)
        self._borrowed_jobs.discard(name)
        self._shared_jobs.discard(job.name)
        self._borrowed_jobs.discard(job.name)
        for dataset_name in job.input_datasets + job.output_datasets:
            if dataset_name not in self._datasets:
                self._datasets[dataset_name] = DatasetVertex(name=dataset_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workflow(name={self.name!r}, jobs={len(self._jobs)}, datasets={len(self._datasets)})"
