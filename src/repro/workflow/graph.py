"""The workflow DAG: MapReduce jobs and datasets in producer-consumer relationships.

A workflow ``W`` is a DAG ``G_W`` whose vertices are MapReduce jobs and
datasets, and whose edges connect jobs to their input and output datasets
(paper §2.1).  Edges are derived from the jobs' declared input/output dataset
names, so the graph is always consistent with the executable jobs it holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import WorkflowValidationError
from repro.dfs.dataset import Dataset
from repro.mapreduce.job import MapReduceJob
from repro.workflow.annotations import DatasetAnnotation, JobAnnotations


@dataclass
class JobVertex:
    """A job vertex: the executable job plus its annotations."""

    job: MapReduceJob
    annotations: JobAnnotations = field(default_factory=JobAnnotations)

    @property
    def name(self) -> str:
        """The job's name (vertex identity)."""
        return self.job.name

    def copy(self) -> "JobVertex":
        """Copy of the vertex with copied job and annotations."""
        return JobVertex(job=self.job.copy(), annotations=self.annotations.copy())


@dataclass
class DatasetVertex:
    """A dataset vertex: name, optional materialized data, and annotations."""

    name: str
    dataset: Optional[Dataset] = None
    annotation: Optional[DatasetAnnotation] = None

    def copy(self) -> "DatasetVertex":
        """Copy of the vertex (the materialized dataset object is shared)."""
        return DatasetVertex(name=self.name, dataset=self.dataset, annotation=self.annotation)


class Workflow:
    """A DAG of MapReduce jobs connected through datasets."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._jobs: Dict[str, JobVertex] = {}
        self._datasets: Dict[str, DatasetVertex] = {}

    # ---------------------------------------------------------- construction
    def add_job(
        self,
        job: MapReduceJob,
        annotations: Optional[JobAnnotations] = None,
    ) -> JobVertex:
        """Add a job vertex (dataset vertices for its inputs/outputs are auto-created)."""
        if job.name in self._jobs:
            raise WorkflowValidationError(f"duplicate job name {job.name!r}")
        vertex = JobVertex(job=job, annotations=annotations or JobAnnotations())
        self._jobs[job.name] = vertex
        for dataset_name in job.input_datasets + job.output_datasets:
            if dataset_name not in self._datasets:
                self._datasets[dataset_name] = DatasetVertex(name=dataset_name)
        return vertex

    def add_dataset(
        self,
        name: str,
        dataset: Optional[Dataset] = None,
        annotation: Optional[DatasetAnnotation] = None,
    ) -> DatasetVertex:
        """Add (or enrich) a dataset vertex."""
        vertex = self._datasets.get(name)
        if vertex is None:
            vertex = DatasetVertex(name=name)
            self._datasets[name] = vertex
        if dataset is not None:
            vertex.dataset = dataset
        if annotation is not None:
            vertex.annotation = annotation
        return vertex

    def remove_job(self, name: str) -> None:
        """Remove a job vertex (dataset vertices are kept; prune separately)."""
        if name not in self._jobs:
            raise WorkflowValidationError(f"job {name!r} not in workflow")
        del self._jobs[name]

    def remove_dataset(self, name: str) -> None:
        """Remove a dataset vertex if no remaining job references it."""
        for vertex in self._jobs.values():
            job = vertex.job
            if name in job.input_datasets or name in job.output_datasets:
                raise WorkflowValidationError(
                    f"dataset {name!r} is still referenced by job {job.name!r}"
                )
        self._datasets.pop(name, None)

    def prune_orphan_datasets(self) -> List[str]:
        """Drop dataset vertices no job reads or writes; returns their names."""
        referenced: Set[str] = set()
        for vertex in self._jobs.values():
            referenced.update(vertex.job.input_datasets)
            referenced.update(vertex.job.output_datasets)
        orphans = [name for name in self._datasets if name not in referenced]
        for name in orphans:
            del self._datasets[name]
        return orphans

    # ------------------------------------------------------------- accessors
    @property
    def jobs(self) -> List[JobVertex]:
        """Job vertices in insertion order."""
        return list(self._jobs.values())

    @property
    def job_names(self) -> List[str]:
        """Job names in insertion order."""
        return list(self._jobs)

    @property
    def datasets(self) -> List[DatasetVertex]:
        """Dataset vertices in insertion order."""
        return list(self._datasets.values())

    def job(self, name: str) -> JobVertex:
        """Fetch a job vertex by name."""
        if name not in self._jobs:
            raise WorkflowValidationError(f"job {name!r} not in workflow")
        return self._jobs[name]

    def has_job(self, name: str) -> bool:
        """Whether a job with this name exists."""
        return name in self._jobs

    def dataset(self, name: str) -> DatasetVertex:
        """Fetch a dataset vertex by name."""
        if name not in self._datasets:
            raise WorkflowValidationError(f"dataset {name!r} not in workflow")
        return self._datasets[name]

    def has_dataset(self, name: str) -> bool:
        """Whether a dataset with this name exists."""
        return name in self._datasets

    # ------------------------------------------------------------- structure
    def producer_of(self, dataset_name: str) -> Optional[JobVertex]:
        """The job writing ``dataset_name`` (``None`` for base datasets)."""
        for vertex in self._jobs.values():
            if dataset_name in vertex.job.output_datasets:
                return vertex
        return None

    def consumers_of(self, dataset_name: str) -> List[JobVertex]:
        """All jobs reading ``dataset_name``."""
        return [v for v in self._jobs.values() if dataset_name in v.job.input_datasets]

    def producer_jobs(self, job_name: str) -> List[JobVertex]:
        """Jobs whose output datasets this job reads."""
        vertex = self.job(job_name)
        producers: List[JobVertex] = []
        for dataset_name in vertex.job.input_datasets:
            producer = self.producer_of(dataset_name)
            if producer is not None and producer.name != job_name and producer not in producers:
                producers.append(producer)
        return producers

    def consumer_jobs(self, job_name: str) -> List[JobVertex]:
        """Jobs that read any of this job's output datasets."""
        vertex = self.job(job_name)
        consumers: List[JobVertex] = []
        for dataset_name in vertex.job.output_datasets:
            for consumer in self.consumers_of(dataset_name):
                if consumer.name != job_name and consumer not in consumers:
                    consumers.append(consumer)
        return consumers

    def base_datasets(self) -> List[DatasetVertex]:
        """Dataset vertices produced by no job (the workflow inputs)."""
        return [d for d in self._datasets.values() if self.producer_of(d.name) is None]

    def terminal_datasets(self) -> List[DatasetVertex]:
        """Dataset vertices consumed by no job (the workflow outputs)."""
        return [d for d in self._datasets.values() if not self.consumers_of(d.name)]

    def intermediate_datasets(self) -> List[DatasetVertex]:
        """Datasets both produced and consumed inside the workflow."""
        return [
            d
            for d in self._datasets.values()
            if self.producer_of(d.name) is not None and self.consumers_of(d.name)
        ]

    @property
    def num_jobs(self) -> int:
        """Number of job vertices."""
        return len(self._jobs)

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check the workflow is a consistent DAG; raise on problems."""
        writers: Dict[str, str] = {}
        for vertex in self._jobs.values():
            for output in vertex.job.output_datasets:
                if output in writers and writers[output] != vertex.name:
                    raise WorkflowValidationError(
                        f"dataset {output!r} written by both {writers[output]!r} and {vertex.name!r}"
                    )
                writers[output] = vertex.name
            overlap = set(vertex.job.input_datasets) & set(vertex.job.output_datasets)
            if overlap:
                raise WorkflowValidationError(
                    f"job {vertex.name!r} reads and writes the same dataset(s): {sorted(overlap)}"
                )
        # Cycle detection via topological sort.
        self.topological_order()

    def topological_order(self) -> List[JobVertex]:
        """Jobs in topological (producer before consumer) order.

        Ties are broken by insertion order so traversal — and therefore the
        optimizer's optimization-unit generation — is deterministic.
        """
        in_degree: Dict[str, int] = {}
        for vertex in self._jobs.values():
            in_degree[vertex.name] = len(self.producer_jobs(vertex.name))
        order: List[JobVertex] = []
        ready = [name for name in self._jobs if in_degree[name] == 0]
        while ready:
            name = ready.pop(0)
            vertex = self._jobs[name]
            order.append(vertex)
            for consumer in self.consumer_jobs(name):
                in_degree[consumer.name] -= 1
                if in_degree[consumer.name] == 0:
                    ready.append(consumer.name)
            ready.sort(key=lambda n: list(self._jobs).index(n))
        if len(order) != len(self._jobs):
            raise WorkflowValidationError("workflow graph contains a cycle")
        return order

    def topological_levels(self) -> List[List[JobVertex]]:
        """Jobs grouped into levels of concurrently runnable jobs.

        A job's level is one more than the maximum level of its producers;
        jobs in the same level have no dependency path between them and can
        run concurrently on the cluster.
        """
        levels: Dict[str, int] = {}
        for vertex in self.topological_order():
            producers = self.producer_jobs(vertex.name)
            levels[vertex.name] = 1 + max((levels[p.name] for p in producers), default=-1)
        grouped: Dict[int, List[JobVertex]] = {}
        for name, level in levels.items():
            grouped.setdefault(level, []).append(self._jobs[name])
        return [grouped[level] for level in sorted(grouped)]

    def depends_on(self, consumer: str, producer: str) -> bool:
        """Whether ``consumer`` transitively depends on ``producer``."""
        frontier = [consumer]
        seen: Set[str] = set()
        while frontier:
            current = frontier.pop()
            if current == producer:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(p.name for p in self.producer_jobs(current))
        return False

    # ----------------------------------------------------------------- copy
    def copy(self, name: Optional[str] = None) -> "Workflow":
        """Deep-enough copy of the workflow (materialized datasets shared)."""
        clone = Workflow(name=name or self.name)
        for vertex in self._jobs.values():
            copied = vertex.copy()
            clone._jobs[copied.name] = copied
        for dataset_vertex in self._datasets.values():
            clone._datasets[dataset_vertex.name] = dataset_vertex.copy()
        return clone

    def replace_job(self, name: str, job: MapReduceJob, annotations: Optional[JobAnnotations] = None) -> None:
        """Replace a job vertex in place, keeping its position in insertion order."""
        if name not in self._jobs:
            raise WorkflowValidationError(f"job {name!r} not in workflow")
        existing = self._jobs[name]
        new_vertex = JobVertex(job=job, annotations=annotations or existing.annotations)
        rebuilt: Dict[str, JobVertex] = {}
        for key, value in self._jobs.items():
            if key == name:
                rebuilt[job.name] = new_vertex
            else:
                rebuilt[key] = value
        self._jobs = rebuilt
        for dataset_name in job.input_datasets + job.output_datasets:
            if dataset_name not in self._datasets:
                self._datasets[dataset_name] = DatasetVertex(name=dataset_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workflow(name={self.name!r}, jobs={len(self._jobs)}, datasets={len(self._datasets)})"
