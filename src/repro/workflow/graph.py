"""The workflow DAG: MapReduce jobs and datasets in producer-consumer relationships.

A workflow ``W`` is a DAG ``G_W`` whose vertices are MapReduce jobs and
datasets, and whose edges connect jobs to their input and output datasets
(paper §2.1).  Edges are derived from the jobs' declared input/output dataset
names, so the graph is always consistent with the executable jobs it holds.

Workflows are **copy-on-write**: :meth:`Workflow.copy` shares the vertex
objects between the original and the clone (only the name→vertex mappings are
duplicated), and every shared vertex is copied lazily the first time either
side mutates it through :meth:`Workflow.mutate_job` /
:meth:`Workflow.update_job` / :meth:`Workflow.add_dataset`.  Stubby's
transformations are local rewrites (paper §3), so a candidate plan typically
privatizes one or two vertices out of a workflow of many — the deep-copy tax
of enumeration drops from O(jobs) to O(jobs touched).  The contract this
rests on:

* **shared vertices are never mutated in place** — all mutation goes through
  the CoW accessors above, which privatize first;
* **an owned (privatized) vertex's payload is private** — its
  ``JobAnnotations`` is always copied, and its job/pipelines are either
  copied (``mutate_job``) or freshly constructed by the caller
  (``update_job``, :meth:`Workflow.replace_job`), so in-place pipeline edits
  on an owned vertex can never reach a sibling plan.

:data:`COPY_COUNTERS` tallies vertex copies actually performed against the
copies a wholesale deep copy would have performed — the measured basis of
``BENCH_plan_cow.json``.

Structural queries (``producer_of``/``consumers_of``/``producer_jobs``/
``consumer_jobs``/``base_datasets``/``terminal_datasets``/
``intermediate_datasets``/``depends_on``/``topological_order``/
``topological_levels``) answer from a lazily built **topology index**
(:class:`_TopologyIndex`): producer/consumer adjacency per dataset plus
cached topological order and levels, maintained *incrementally* through the
mutation surface above and shared between CoW clones until either side
mutates structure.  Answers are bit-identical — including insertion-order
tie-breaks — to the legacy brute-force scans, which remain available as the
``_scan_*`` twins and via :func:`set_topology_index_enabled` as the
measurement baseline of ``BENCH_wide_workflows.json``.
:data:`TOPOLOGY_COUNTERS` tallies scans avoided against index maintenance
performed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.common.errors import WorkflowValidationError
from repro.dfs.dataset import Dataset
from repro.mapreduce.job import MapReduceJob
from repro.workflow.annotations import DatasetAnnotation, JobAnnotations


class CopyCounters:
    """Process-wide tallies of plan/vertex copying (CoW instrumentation).

    ``vertex_copies`` counts *full* job-vertex copies (job + pipelines +
    annotations); ``vertex_shell_copies`` counts borrowed privatizations
    (annotations copied, job payload shared — the cheap CoW path of the
    configuration hot loop); ``legacy_vertex_copies`` counts the full copies
    the pre-CoW wholesale ``Workflow.copy`` performs (every job of every
    copied workflow), so ``legacy_vertex_copies / vertex_copies`` is the
    measured copy-tax reduction.  Counters are advisory (no lock): the
    benchmarks that assert on them run single-threaded.
    """

    __slots__ = (
        "workflow_copies",
        "vertex_copies",
        "vertex_shell_copies",
        "dataset_vertex_copies",
        "legacy_vertex_copies",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters (benchmarks call this before a measured window)."""
        self.workflow_copies = 0
        self.vertex_copies = 0
        self.vertex_shell_copies = 0
        self.dataset_vertex_copies = 0
        self.legacy_vertex_copies = 0

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view of the current counters."""
        return {name: getattr(self, name) for name in self.__slots__}


#: The process-wide counter instance (see :class:`CopyCounters`).
COPY_COUNTERS = CopyCounters()

#: Structural sharing switch.  Always on in production; the plan-CoW
#: benchmark flips it off to measure the legacy wholesale-deep-copy baseline
#: against the same workloads (decisions must be bit-identical either way).
_COW_ENABLED = True


def set_cow_enabled(enabled: bool) -> bool:
    """Enable/disable copy-on-write plan copies; returns the previous value.

    With CoW disabled, :meth:`Workflow.copy` eagerly deep-copies every vertex
    (the pre-CoW behaviour).  Semantics are identical either way — the CoW
    protocol only changes *when* copies happen — so this is purely a
    measurement baseline for ``benchmarks/test_bench_plan_cow.py``.
    """
    global _COW_ENABLED
    previous = _COW_ENABLED
    _COW_ENABLED = bool(enabled)
    return previous


def cow_enabled() -> bool:
    """Whether workflow copies currently share vertices (see :func:`set_cow_enabled`)."""
    return _COW_ENABLED


class TopologyCounters:
    """Process-wide tallies of topology-index activity (graph instrumentation).

    ``full_scans`` counts brute-force full passes over the job table (the
    legacy scan path, one tick per pass — ``producer_of`` is one pass,
    ``producer_jobs`` is one per input dataset); ``index_queries`` counts
    structure queries answered from the adjacency index instead.
    ``index_builds`` are from-scratch adjacency constructions (lazy, once
    per workflow lineage), ``incremental_updates`` are single-mutation
    touch-ups, and ``index_copies`` are CoW privatizations of an index
    shared through :meth:`Workflow.copy`.  ``toposort_builds`` vs
    ``toposort_cache_hits`` measure how often the cached topological
    order/levels survive mutation.  Counters are advisory (no lock): the
    benchmarks that assert on them run single-threaded.
    """

    __slots__ = (
        "full_scans",
        "index_queries",
        "index_builds",
        "index_copies",
        "incremental_updates",
        "toposort_builds",
        "toposort_cache_hits",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters (benchmarks call this before a measured window)."""
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Plain-dict view of the current counters."""
        return {name: getattr(self, name) for name in self.__slots__}

    def scan_equivalents(self) -> int:
        """Full-graph passes actually paid: scans plus index (re)builds.

        The honest denominator for the wide-workflow benchmark: an index
        build walks every job once, so it costs one scan-equivalent; an
        incremental update or an indexed query does not.
        """
        return self.full_scans + self.index_builds + self.toposort_builds


#: The process-wide topology counter instance (see :class:`TopologyCounters`).
TOPOLOGY_COUNTERS = TopologyCounters()

#: Topology-index switch.  Always on in production; the wide-workflow
#: benchmark flips it off to measure the legacy brute-force-scan baseline
#: against the same workloads (answers must be bit-identical either way).
_TOPOLOGY_INDEX_ENABLED = True


def set_topology_index_enabled(enabled: bool) -> bool:
    """Enable/disable the topology index; returns the previous value.

    With the index disabled every structural query falls back to the
    brute-force graph scans (the pre-index behaviour).  Answers are
    bit-identical either way — the index only changes *how* they are
    derived — so this is purely a measurement baseline for
    ``benchmarks/test_bench_wide_workflows.py``.
    """
    global _TOPOLOGY_INDEX_ENABLED
    previous = _TOPOLOGY_INDEX_ENABLED
    _TOPOLOGY_INDEX_ENABLED = bool(enabled)
    return previous


def topology_index_enabled() -> bool:
    """Whether structural queries are answered from the adjacency index."""
    return _TOPOLOGY_INDEX_ENABLED


class _TopologyIndex:
    """Producer/consumer adjacency plus cached topological order and levels.

    The index answers every structural query of :class:`Workflow` without
    scanning the job table: ``producers``/``consumers`` map each dataset
    name to the job names writing/reading it, each list kept in *job
    insertion order* so indexed answers are bit-identical (including
    tie-breaks) to the legacy scans.  Insertion order is tracked through
    ``order_keys`` — a monotonic key per job; :meth:`replace_job` hands the
    old job's key to its replacement, mirroring how
    :meth:`Workflow.replace_job` keeps the vertex's position in the job
    dict.  ``topo_names``/``level_names`` cache the topological order and
    levels (by name — the caller re-binds names to its *current* vertex
    objects, so CoW vertex privatization never stales the cache); any
    structural mutation clears them, while config-only CoW mutations
    (:meth:`Workflow.mutate_job`, edge-preserving
    :meth:`Workflow.update_job`) leave them valid.

    Lifecycle: built lazily on the first structural query, shared between a
    workflow and its CoW clones by :meth:`Workflow.copy`, and privatized
    (copied) by whichever side mutates structure first — exactly the
    vertex-sharing protocol, applied to the index.
    """

    __slots__ = ("producers", "consumers", "order_keys", "next_key", "topo_names", "level_names")

    def __init__(self) -> None:
        self.producers: Dict[str, List[str]] = {}
        self.consumers: Dict[str, List[str]] = {}
        self.order_keys: Dict[str, int] = {}
        self.next_key: int = 0
        self.topo_names: Optional[List[str]] = None
        self.level_names: Optional[List[List[str]]] = None

    @classmethod
    def build(cls, jobs: Dict[str, "JobVertex"]) -> "_TopologyIndex":
        """From-scratch adjacency build over the current job table."""
        index = cls()
        for vertex in jobs.values():
            key = index.next_key
            index.next_key += 1
            index.order_keys[vertex.name] = key
            index._link(vertex.job, key)
        TOPOLOGY_COUNTERS.index_builds += 1
        return index

    def copy(self) -> "_TopologyIndex":
        """Independent copy (CoW privatization of a shared index)."""
        clone = _TopologyIndex()
        clone.producers = {name: list(jobs) for name, jobs in self.producers.items()}
        clone.consumers = {name: list(jobs) for name, jobs in self.consumers.items()}
        clone.order_keys = dict(self.order_keys)
        clone.next_key = self.next_key
        clone.topo_names = list(self.topo_names) if self.topo_names is not None else None
        clone.level_names = (
            [list(level) for level in self.level_names] if self.level_names is not None else None
        )
        TOPOLOGY_COUNTERS.index_copies += 1
        return clone

    # -------------------------------------------------------- edge plumbing
    def _link(self, job: MapReduceJob, key: int) -> None:
        """Insert the job's edges, keeping adjacency lists in job order."""
        name = job.name
        for dataset_name in job.input_datasets:
            entries = self.consumers.setdefault(dataset_name, [])
            entries.append(name)
            if len(entries) > 1 and self.order_keys[entries[-2]] > key:
                entries.sort(key=self.order_keys.__getitem__)
        for dataset_name in job.output_datasets:
            entries = self.producers.setdefault(dataset_name, [])
            entries.append(name)
            if len(entries) > 1 and self.order_keys[entries[-2]] > key:
                entries.sort(key=self.order_keys.__getitem__)

    def _unlink(self, job: MapReduceJob) -> None:
        """Remove the job's edges (empty adjacency entries are dropped)."""
        name = job.name
        for dataset_name in job.input_datasets:
            entries = self.consumers.get(dataset_name)
            if entries is not None:
                if name in entries:
                    entries.remove(name)
                if not entries:
                    del self.consumers[dataset_name]
        for dataset_name in job.output_datasets:
            entries = self.producers.get(dataset_name)
            if entries is not None:
                if name in entries:
                    entries.remove(name)
                if not entries:
                    del self.producers[dataset_name]

    def _invalidate_topology(self) -> None:
        self.topo_names = None
        self.level_names = None

    # ------------------------------------------------- incremental mutation
    def add_job(self, job: MapReduceJob) -> None:
        """Incremental update for :meth:`Workflow.add_job`."""
        key = self.next_key
        self.next_key += 1
        self.order_keys[job.name] = key
        self._link(job, key)
        self._invalidate_topology()
        TOPOLOGY_COUNTERS.incremental_updates += 1

    def remove_job(self, job: MapReduceJob) -> None:
        """Incremental update for :meth:`Workflow.remove_job`."""
        self._unlink(job)
        self.order_keys.pop(job.name, None)
        self._invalidate_topology()
        TOPOLOGY_COUNTERS.incremental_updates += 1

    def replace_job(self, old_job: MapReduceJob, new_job: MapReduceJob) -> None:
        """Incremental update for :meth:`Workflow.replace_job`.

        The replacement inherits the old job's order key, so indexed
        tie-breaks keep matching the rebuilt job dict (same position).
        """
        key = self.order_keys.pop(old_job.name)
        self._unlink(old_job)
        self.order_keys[new_job.name] = key
        self._link(new_job, key)
        self._invalidate_topology()
        TOPOLOGY_COUNTERS.incremental_updates += 1


@dataclass
class JobVertex:
    """A job vertex: the executable job plus its annotations."""

    job: MapReduceJob
    annotations: JobAnnotations = field(default_factory=JobAnnotations)

    @property
    def name(self) -> str:
        """The job's name (vertex identity)."""
        return self.job.name

    def copy(self, copy_job: bool = True) -> "JobVertex":
        """Copy of the vertex with copied annotations (and, by default, job).

        ``copy_job=False`` *borrows* the job object instead of copying it —
        for callers about to rebind ``.job`` with a derived job anyway
        (:meth:`Workflow.update_job`) or that only mutate annotations.  A
        borrowed job must never be mutated in place; the owning workflow
        tracks borrowed payloads and copies them before any in-place job
        mutation (see :meth:`Workflow.mutate_job`).
        """
        if copy_job:
            COPY_COUNTERS.vertex_copies += 1
        else:
            COPY_COUNTERS.vertex_shell_copies += 1
        return JobVertex(
            job=self.job.copy() if copy_job else self.job,
            annotations=self.annotations.copy(),
        )


@dataclass
class DatasetVertex:
    """A dataset vertex: name, optional materialized data, and annotations."""

    name: str
    dataset: Optional[Dataset] = None
    annotation: Optional[DatasetAnnotation] = None

    def copy(self) -> "DatasetVertex":
        """Copy of the vertex (the materialized dataset object is shared)."""
        COPY_COUNTERS.dataset_vertex_copies += 1
        return DatasetVertex(name=self.name, dataset=self.dataset, annotation=self.annotation)


class Workflow:
    """A DAG of MapReduce jobs connected through datasets."""

    def __init__(self, name: str = "workflow") -> None:
        self.name = name
        self._jobs: Dict[str, JobVertex] = {}
        self._datasets: Dict[str, DatasetVertex] = {}
        #: Names of vertices whose *objects* are shared with another workflow
        #: (populated by :meth:`copy`, drained by the CoW accessors).  A name
        #: absent from the set means this workflow owns the vertex privately.
        self._shared_jobs: Set[str] = set()
        self._shared_datasets: Set[str] = set()
        #: Owned vertices whose ``.job`` payload is still shared (privatized
        #: with ``copy_job=False``); an in-place job mutation must copy the
        #: payload first.
        self._borrowed_jobs: Set[str] = set()
        #: Lazily built topology index (see :class:`_TopologyIndex`), shared
        #: with CoW clones until either side mutates structure.
        self._topo_index: Optional[_TopologyIndex] = None
        self._topo_shared: bool = False

    # ------------------------------------------------------- topology index
    def _topology(self) -> _TopologyIndex:
        """The adjacency index, built lazily on first structural query.

        Reading a shared index is safe: workflows only share an index while
        their edge structures are identical, so even cache fills (topological
        order/levels) computed through one sharer are valid for all of them.
        """
        index = self._topo_index
        if index is None:
            index = _TopologyIndex.build(self._jobs)
            self._topo_index = index
            self._topo_shared = False
        return index

    def _topology_for_mutation(self) -> Optional[_TopologyIndex]:
        """The index to update incrementally for a structural mutation.

        ``None`` when no index has been built yet (nothing to maintain — the
        next structural query rebuilds from scratch); a private copy when the
        current index is shared with a CoW sibling (privatize-before-mutate,
        the same protocol the vertices follow).
        """
        index = self._topo_index
        if index is None:
            return None
        if self._topo_shared:
            index = index.copy()
            self._topo_index = index
            self._topo_shared = False
        return index

    # ---------------------------------------------------------- construction
    def add_job(
        self,
        job: MapReduceJob,
        annotations: Optional[JobAnnotations] = None,
    ) -> JobVertex:
        """Add a job vertex (dataset vertices for its inputs/outputs are auto-created)."""
        if job.name in self._jobs:
            raise WorkflowValidationError(f"duplicate job name {job.name!r}")
        vertex = JobVertex(job=job, annotations=annotations or JobAnnotations())
        self._jobs[job.name] = vertex
        self._shared_jobs.discard(job.name)
        for dataset_name in job.input_datasets + job.output_datasets:
            if dataset_name not in self._datasets:
                self._datasets[dataset_name] = DatasetVertex(name=dataset_name)
        index = self._topology_for_mutation()
        if index is not None:
            index.add_job(job)
        return vertex

    def add_dataset(
        self,
        name: str,
        dataset: Optional[Dataset] = None,
        annotation: Optional[DatasetAnnotation] = None,
    ) -> DatasetVertex:
        """Add (or enrich) a dataset vertex (copy-on-write when shared).

        Index-neutral: dataset payloads and annotations carry no edges, so
        the topology index and its cached order/levels stay valid.
        """
        vertex = self._datasets.get(name)
        if vertex is None:
            vertex = DatasetVertex(name=name)
            self._datasets[name] = vertex
            self._shared_datasets.discard(name)
        elif (dataset is not None or annotation is not None) and name in self._shared_datasets:
            vertex = vertex.copy()
            self._datasets[name] = vertex
            self._shared_datasets.discard(name)
        if dataset is not None:
            vertex.dataset = dataset
        if annotation is not None:
            vertex.annotation = annotation
        return vertex

    def remove_job(self, name: str) -> None:
        """Remove a job vertex (dataset vertices are kept; prune separately)."""
        if name not in self._jobs:
            raise WorkflowValidationError(f"job {name!r} not in workflow")
        removed = self._jobs[name]
        del self._jobs[name]
        self._shared_jobs.discard(name)
        self._borrowed_jobs.discard(name)
        index = self._topology_for_mutation()
        if index is not None:
            index.remove_job(removed.job)

    def remove_dataset(self, name: str) -> None:
        """Remove a dataset vertex if no remaining job references it."""
        for vertex in self._jobs.values():
            job = vertex.job
            if name in job.input_datasets or name in job.output_datasets:
                raise WorkflowValidationError(
                    f"dataset {name!r} is still referenced by job {job.name!r}"
                )
        self._datasets.pop(name, None)
        self._shared_datasets.discard(name)

    def prune_orphan_datasets(self) -> List[str]:
        """Drop dataset vertices no job reads or writes; returns their names.

        Index-neutral by construction: the adjacency index only holds
        entries for datasets some job references (``_unlink`` drops entries
        as they empty), so an orphan has none and the cached topology stays
        valid.
        """
        referenced: Set[str] = set()
        for vertex in self._jobs.values():
            referenced.update(vertex.job.input_datasets)
            referenced.update(vertex.job.output_datasets)
        orphans = [name for name in self._datasets if name not in referenced]
        for name in orphans:
            del self._datasets[name]
            self._shared_datasets.discard(name)
        return orphans

    # ------------------------------------------------------------- accessors
    @property
    def jobs(self) -> List[JobVertex]:
        """Job vertices in insertion order."""
        return list(self._jobs.values())

    @property
    def job_names(self) -> List[str]:
        """Job names in insertion order."""
        return list(self._jobs)

    @property
    def datasets(self) -> List[DatasetVertex]:
        """Dataset vertices in insertion order."""
        return list(self._datasets.values())

    def job(self, name: str) -> JobVertex:
        """Fetch a job vertex by name."""
        if name not in self._jobs:
            raise WorkflowValidationError(f"job {name!r} not in workflow")
        return self._jobs[name]

    def has_job(self, name: str) -> bool:
        """Whether a job with this name exists."""
        return name in self._jobs

    def dataset(self, name: str) -> DatasetVertex:
        """Fetch a dataset vertex by name."""
        if name not in self._datasets:
            raise WorkflowValidationError(f"dataset {name!r} not in workflow")
        return self._datasets[name]

    def has_dataset(self, name: str) -> bool:
        """Whether a dataset with this name exists."""
        return name in self._datasets

    # ------------------------------------------------------------- structure
    #
    # Every public structural query answers from the adjacency index in
    # O(answer size); the ``_scan_*`` twins below each one are the legacy
    # brute-force implementations, kept as the measurement baseline of
    # ``benchmarks/test_bench_wide_workflows.py`` (via
    # :func:`set_topology_index_enabled`) and as the ordering oracle the
    # equivalence tests assert bit-identical answers against.

    def producer_of(self, dataset_name: str) -> Optional[JobVertex]:
        """The job writing ``dataset_name`` (``None`` for base datasets)."""
        if not _TOPOLOGY_INDEX_ENABLED:
            return self._scan_producer_of(dataset_name)
        TOPOLOGY_COUNTERS.index_queries += 1
        writers = self._topology().producers.get(dataset_name)
        return self._jobs[writers[0]] if writers else None

    def _scan_producer_of(self, dataset_name: str) -> Optional[JobVertex]:
        TOPOLOGY_COUNTERS.full_scans += 1
        for vertex in self._jobs.values():
            if dataset_name in vertex.job.output_datasets:
                return vertex
        return None

    def consumers_of(self, dataset_name: str) -> List[JobVertex]:
        """All jobs reading ``dataset_name``, in job insertion order."""
        if not _TOPOLOGY_INDEX_ENABLED:
            return self._scan_consumers_of(dataset_name)
        TOPOLOGY_COUNTERS.index_queries += 1
        readers = self._topology().consumers.get(dataset_name, ())
        return [self._jobs[name] for name in readers]

    def _scan_consumers_of(self, dataset_name: str) -> List[JobVertex]:
        TOPOLOGY_COUNTERS.full_scans += 1
        return [v for v in self._jobs.values() if dataset_name in v.job.input_datasets]

    def producer_jobs(self, job_name: str) -> List[JobVertex]:
        """Jobs whose output datasets this job reads (input-dataset order)."""
        vertex = self.job(job_name)
        if not _TOPOLOGY_INDEX_ENABLED:
            return self._scan_producer_jobs(job_name)
        TOPOLOGY_COUNTERS.index_queries += 1
        index = self._topology()
        producers: List[JobVertex] = []
        seen: Set[str] = set()
        for dataset_name in vertex.job.input_datasets:
            writers = index.producers.get(dataset_name)
            if not writers:
                continue
            writer = writers[0]
            if writer != job_name and writer not in seen:
                seen.add(writer)
                producers.append(self._jobs[writer])
        return producers

    def _scan_producer_jobs(self, job_name: str) -> List[JobVertex]:
        vertex = self.job(job_name)
        producers: List[JobVertex] = []
        seen: Set[str] = set()
        for dataset_name in vertex.job.input_datasets:
            producer = self._scan_producer_of(dataset_name)
            if producer is not None and producer.name != job_name and producer.name not in seen:
                seen.add(producer.name)
                producers.append(producer)
        return producers

    def consumer_jobs(self, job_name: str) -> List[JobVertex]:
        """Jobs that read any of this job's output datasets (first-seen order)."""
        vertex = self.job(job_name)
        if not _TOPOLOGY_INDEX_ENABLED:
            return self._scan_consumer_jobs(job_name)
        TOPOLOGY_COUNTERS.index_queries += 1
        index = self._topology()
        consumers: List[JobVertex] = []
        seen: Set[str] = set()
        for dataset_name in vertex.job.output_datasets:
            for reader in index.consumers.get(dataset_name, ()):
                if reader != job_name and reader not in seen:
                    seen.add(reader)
                    consumers.append(self._jobs[reader])
        return consumers

    def _scan_consumer_jobs(self, job_name: str) -> List[JobVertex]:
        vertex = self.job(job_name)
        consumers: List[JobVertex] = []
        seen: Set[str] = set()
        for dataset_name in vertex.job.output_datasets:
            for consumer in self._scan_consumers_of(dataset_name):
                if consumer.name != job_name and consumer.name not in seen:
                    seen.add(consumer.name)
                    consumers.append(consumer)
        return consumers

    def base_datasets(self) -> List[DatasetVertex]:
        """Dataset vertices produced by no job (the workflow inputs)."""
        if not _TOPOLOGY_INDEX_ENABLED:
            return self._scan_base_datasets()
        TOPOLOGY_COUNTERS.index_queries += 1
        producers = self._topology().producers
        return [d for d in self._datasets.values() if not producers.get(d.name)]

    def _scan_base_datasets(self) -> List[DatasetVertex]:
        return [d for d in self._datasets.values() if self._scan_producer_of(d.name) is None]

    def terminal_datasets(self) -> List[DatasetVertex]:
        """Dataset vertices consumed by no job (the workflow outputs)."""
        if not _TOPOLOGY_INDEX_ENABLED:
            return self._scan_terminal_datasets()
        TOPOLOGY_COUNTERS.index_queries += 1
        consumers = self._topology().consumers
        return [d for d in self._datasets.values() if not consumers.get(d.name)]

    def _scan_terminal_datasets(self) -> List[DatasetVertex]:
        return [d for d in self._datasets.values() if not self._scan_consumers_of(d.name)]

    def intermediate_datasets(self) -> List[DatasetVertex]:
        """Datasets both produced and consumed inside the workflow."""
        if not _TOPOLOGY_INDEX_ENABLED:
            return self._scan_intermediate_datasets()
        TOPOLOGY_COUNTERS.index_queries += 1
        index = self._topology()
        return [
            d
            for d in self._datasets.values()
            if index.producers.get(d.name) and index.consumers.get(d.name)
        ]

    def _scan_intermediate_datasets(self) -> List[DatasetVertex]:
        return [
            d
            for d in self._datasets.values()
            if self._scan_producer_of(d.name) is not None and self._scan_consumers_of(d.name)
        ]

    @property
    def num_jobs(self) -> int:
        """Number of job vertices."""
        return len(self._jobs)

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check the workflow is a consistent DAG; raise on problems."""
        writers: Dict[str, str] = {}
        for vertex in self._jobs.values():
            for output in vertex.job.output_datasets:
                if output in writers and writers[output] != vertex.name:
                    raise WorkflowValidationError(
                        f"dataset {output!r} written by both {writers[output]!r} and {vertex.name!r}"
                    )
                writers[output] = vertex.name
            overlap = set(vertex.job.input_datasets) & set(vertex.job.output_datasets)
            if overlap:
                raise WorkflowValidationError(
                    f"job {vertex.name!r} reads and writes the same dataset(s): {sorted(overlap)}"
                )
        # Cycle detection via topological sort.
        self.topological_order()

    def topological_order(self) -> List[JobVertex]:
        """Jobs in topological (producer before consumer) order.

        Ties are broken by insertion order so traversal — and therefore the
        optimizer's optimization-unit generation — is deterministic: among
        the ready jobs, the one inserted earliest is always emitted first
        (a min-heap over insertion keys; the original implementation
        re-sorted the ready list against a rebuilt name list every
        iteration, with the same emitted order).  The order is cached on
        the topology index and survives config-only CoW mutations;
        structural edits invalidate it.
        """
        if not _TOPOLOGY_INDEX_ENABLED:
            return self._scan_topological_order()
        index = self._topology()
        if index.topo_names is None:
            index.topo_names = self._compute_topo_names(index)
            TOPOLOGY_COUNTERS.toposort_builds += 1
        else:
            TOPOLOGY_COUNTERS.toposort_cache_hits += 1
        return [self._jobs[name] for name in index.topo_names]

    def _compute_topo_names(self, index: _TopologyIndex) -> List[str]:
        """Kahn's algorithm over the index, insertion-order tie-breaks."""
        keys = index.order_keys
        in_degree: Dict[str, int] = {}
        heap: List[Tuple[int, str]] = []
        for name, vertex in self._jobs.items():
            seen: Set[str] = set()
            for dataset_name in vertex.job.input_datasets:
                writers = index.producers.get(dataset_name)
                if writers:
                    writer = writers[0]
                    if writer != name and writer not in seen:
                        seen.add(writer)
            in_degree[name] = len(seen)
            if not seen:
                heap.append((keys[name], name))
        heapq.heapify(heap)
        order: List[str] = []
        while heap:
            _, name = heapq.heappop(heap)
            order.append(name)
            vertex = self._jobs[name]
            notified: Set[str] = set()
            for dataset_name in vertex.job.output_datasets:
                for reader in index.consumers.get(dataset_name, ()):
                    if reader == name or reader in notified:
                        continue
                    notified.add(reader)
                    in_degree[reader] -= 1
                    if in_degree[reader] == 0:
                        heapq.heappush(heap, (keys[reader], reader))
        if len(order) != len(self._jobs):
            raise WorkflowValidationError("workflow graph contains a cycle")
        return order

    def _scan_topological_order(self) -> List[JobVertex]:
        """Legacy-path topological sort (scan adjacency, heap tie-breaks)."""
        in_degree: Dict[str, int] = {}
        for vertex in self._jobs.values():
            in_degree[vertex.name] = len(self._scan_producer_jobs(vertex.name))
        position = {name: key for key, name in enumerate(self._jobs)}
        heap = [(position[name], name) for name, degree in in_degree.items() if degree == 0]
        heapq.heapify(heap)
        order: List[JobVertex] = []
        while heap:
            _, name = heapq.heappop(heap)
            order.append(self._jobs[name])
            for consumer in self._scan_consumer_jobs(name):
                in_degree[consumer.name] -= 1
                if in_degree[consumer.name] == 0:
                    heapq.heappush(heap, (position[consumer.name], consumer.name))
        if len(order) != len(self._jobs):
            raise WorkflowValidationError("workflow graph contains a cycle")
        return order

    def topological_levels(self) -> List[List[JobVertex]]:
        """Jobs grouped into levels of concurrently runnable jobs.

        A job's level is one more than the maximum level of its producers;
        jobs in the same level have no dependency path between them and can
        run concurrently on the cluster.  Cached alongside the topological
        order (see :meth:`topological_order` for the invalidation rules).
        """
        if not _TOPOLOGY_INDEX_ENABLED:
            return self._scan_topological_levels()
        index = self._topology()
        if index.level_names is None:
            order = self.topological_order()
            levels: Dict[str, int] = {}
            for vertex in order:
                level = -1
                for dataset_name in vertex.job.input_datasets:
                    writers = index.producers.get(dataset_name)
                    if writers and writers[0] != vertex.name:
                        producer_level = levels[writers[0]]
                        if producer_level > level:
                            level = producer_level
                levels[vertex.name] = level + 1
            grouped: Dict[int, List[str]] = {}
            for name, level in levels.items():
                grouped.setdefault(level, []).append(name)
            index.level_names = [grouped[level] for level in sorted(grouped)]
            TOPOLOGY_COUNTERS.toposort_builds += 1
        else:
            TOPOLOGY_COUNTERS.toposort_cache_hits += 1
        return [[self._jobs[name] for name in level] for level in index.level_names]

    def _scan_topological_levels(self) -> List[List[JobVertex]]:
        levels: Dict[str, int] = {}
        for vertex in self._scan_topological_order():
            producers = self._scan_producer_jobs(vertex.name)
            levels[vertex.name] = 1 + max((levels[p.name] for p in producers), default=-1)
        grouped: Dict[int, List[JobVertex]] = {}
        for name, level in levels.items():
            grouped.setdefault(level, []).append(self._jobs[name])
        return [grouped[level] for level in sorted(grouped)]

    def depends_on(self, consumer: str, producer: str) -> bool:
        """Whether ``consumer`` transitively depends on ``producer``.

        Self-dependency is ``False`` by definition: a job in a DAG never
        precedes itself.  (The pre-index implementation started its upward
        walk *at* ``consumer``, so ``depends_on(x, x)`` returned ``True``
        for every job — callers pairing a job against itself would have
        concluded it could never be packed with anything.)
        """
        if not _TOPOLOGY_INDEX_ENABLED:
            return self._scan_depends_on(consumer, producer)
        TOPOLOGY_COUNTERS.index_queries += 1
        index = self._topology()
        frontier = [p.name for p in self.producer_jobs(consumer)]
        seen: Set[str] = set()
        while frontier:
            current = frontier.pop()
            if current == producer:
                return True
            if current in seen:
                continue
            seen.add(current)
            current_vertex = self._jobs[current]
            for dataset_name in current_vertex.job.input_datasets:
                writers = index.producers.get(dataset_name)
                if writers and writers[0] != current:
                    frontier.append(writers[0])
        return False

    def _scan_depends_on(self, consumer: str, producer: str) -> bool:
        frontier = [p.name for p in self._scan_producer_jobs(consumer)]
        seen: Set[str] = set()
        while frontier:
            current = frontier.pop()
            if current == producer:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(p.name for p in self._scan_producer_jobs(current))
        return False

    # ----------------------------------------------------------------- copy
    def copy(self, name: Optional[str] = None) -> "Workflow":
        """Structurally shared (copy-on-write) clone of the workflow.

        Only the name→vertex mappings are duplicated; the vertex objects
        themselves are shared between the clone and the original, and both
        sides mark every current vertex as shared so any later mutation —
        on either side — privatizes the touched vertex first (see the module
        docstring for the contract).  Structural edits (add/remove/replace)
        only touch the per-workflow mappings, so they never require copies.
        """
        COPY_COUNTERS.workflow_copies += 1
        COPY_COUNTERS.legacy_vertex_copies += len(self._jobs)
        clone = Workflow(name=name or self.name)
        if not _COW_ENABLED:
            # Benchmark baseline: the pre-CoW wholesale deep copy.
            for vertex in self._jobs.values():
                clone._jobs[vertex.name] = vertex.copy()
            for dataset_vertex in self._datasets.values():
                clone._datasets[dataset_vertex.name] = dataset_vertex.copy()
            return clone
        clone._jobs = dict(self._jobs)
        clone._datasets = dict(self._datasets)
        clone._shared_jobs = set(self._jobs)
        clone._shared_datasets = set(self._datasets)
        clone._borrowed_jobs = set(self._borrowed_jobs)
        # Every vertex the original holds is now also referenced by the
        # clone, so the original must CoW its own future mutations too.
        self._shared_jobs = set(self._jobs)
        self._shared_datasets = set(self._datasets)
        # The topology index is shared the same way: both sides keep the one
        # object (cached order/levels included) until either mutates
        # structure, at which point the mutator privatizes its copy first.
        if self._topo_index is not None:
            clone._topo_index = self._topo_index
            clone._topo_shared = True
            self._topo_shared = True
        return clone

    # --------------------------------------------------------- CoW mutation
    def mutate_job(self, name: str, copy_job: bool = True) -> JobVertex:
        """Privatize (if shared) and return the job vertex for mutation.

        The returned vertex is exclusively owned by this workflow: in-place
        edits to it (annotations, and — with ``copy_job=True`` — its job's
        pipelines) cannot reach any other workflow.  ``copy_job=False``
        borrows the job payload for callers that will rebind ``.job`` or
        only touch annotations; prefer :meth:`update_job` for the rebind
        pattern, which clears the borrow marker.

        In-place edits through this accessor must not change which datasets
        the job reads or writes — the topology index (and its cached
        order/levels) deliberately survives ``mutate_job``, which is what
        makes the configuration hot loop index-free.  Edge rewrites go
        through :meth:`update_job` or :meth:`replace_job`, which diff the
        dataset lists and update the index cone incrementally.
        """
        vertex = self.job(name)
        if name in self._shared_jobs:
            vertex = vertex.copy(copy_job=copy_job)
            self._jobs[name] = vertex
            self._shared_jobs.discard(name)
            if copy_job:
                self._borrowed_jobs.discard(name)
            else:
                self._borrowed_jobs.add(name)
            return vertex
        if copy_job and name in self._borrowed_jobs:
            # Owned vertex, but its job payload is still shared: privatize
            # the payload before the caller mutates pipelines in place.
            COPY_COUNTERS.vertex_copies += 1
            vertex.job = vertex.job.copy()
            self._borrowed_jobs.discard(name)
        return vertex

    def update_job(self, name: str, derive: Callable[[MapReduceJob], MapReduceJob]) -> JobVertex:
        """CoW-rebind a vertex's job: ``vertex.job = derive(vertex.job)``.

        The job object is never copied — ``derive`` builds the replacement
        (e.g. ``job.with_config(...)``), a fresh job of the same name.  This
        is the cheap path for the configuration hot loop: one annotations
        copy plus whatever ``derive`` builds, instead of a full vertex deep
        copy.  The derived job may *share* pipeline objects with the source
        (``with_config``/``with_partitioner`` do), so the vertex keeps its
        borrowed-payload marker: a later :meth:`mutate_job` with
        ``copy_job=True`` still privatizes the pipelines before any in-place
        edit.
        """
        vertex = self.mutate_job(name, copy_job=False)
        old_job = vertex.job
        new_job = derive(old_job)
        if new_job.name != name:
            raise WorkflowValidationError(
                f"update_job cannot rename {name!r} to {new_job.name!r}; use replace_job"
            )
        vertex.job = new_job
        # Config-only derivations (the hot path) keep the cached topology;
        # a derivation that rewires datasets is a structural edit and must
        # update the index cone like replace_job does.
        if (
            old_job.input_datasets != new_job.input_datasets
            or old_job.output_datasets != new_job.output_datasets
        ):
            index = self._topology_for_mutation()
            if index is not None:
                index.replace_job(old_job, new_job)
            for dataset_name in new_job.input_datasets + new_job.output_datasets:
                if dataset_name not in self._datasets:
                    self._datasets[dataset_name] = DatasetVertex(name=dataset_name)
        return vertex

    def dirty_jobs(self) -> Set[str]:
        """Names of job vertices privately owned by this workflow.

        After a :meth:`copy` the set is empty; it grows as vertices are
        privatized (mutated) or created.  Together with structural sharing
        this is the plan's *dirty set*: a vertex outside it is the same
        object as in the workflow it was copied from, which is what lets the
        What-if engine serve its cost signature from an identity-keyed memo
        (see :meth:`repro.whatif.model.WhatIfEngine.vertex_dataflow_signature`).
        """
        return set(self._jobs) - self._shared_jobs

    def replace_job(self, name: str, job: MapReduceJob, annotations: Optional[JobAnnotations] = None) -> None:
        """Replace a job vertex in place, keeping its position in insertion order."""
        if name not in self._jobs:
            raise WorkflowValidationError(f"job {name!r} not in workflow")
        existing = self._jobs[name]
        index = self._topology_for_mutation()
        if index is not None:
            index.replace_job(existing.job, job)
        if annotations is None:
            # Defaulting from a *shared* vertex must not alias its mutable
            # annotations container into the new (owned) vertex.
            annotations = (
                existing.annotations.copy() if name in self._shared_jobs else existing.annotations
            )
        new_vertex = JobVertex(job=job, annotations=annotations)
        rebuilt: Dict[str, JobVertex] = {}
        for key, value in self._jobs.items():
            if key == name:
                rebuilt[job.name] = new_vertex
            else:
                rebuilt[key] = value
        self._jobs = rebuilt
        self._shared_jobs.discard(name)
        self._borrowed_jobs.discard(name)
        self._shared_jobs.discard(job.name)
        self._borrowed_jobs.discard(job.name)
        for dataset_name in job.input_datasets + job.output_datasets:
            if dataset_name not in self._datasets:
                self._datasets[dataset_name] = DatasetVertex(name=dataset_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Workflow(name={self.name!r}, jobs={len(self._jobs)}, datasets={len(self._datasets)})"
