"""Annotations: the information channel between workflow generators and Stubby.

The paper (§2.2) defines three annotation categories:

* **dataset annotations** — physical design information about datasets
  (schema, partitioning, ordering, compression, size);
* **program annotations** — *schema* annotations exposing the composition of
  key/value types K1–K3 and V1–V3 of a MapReduce program, and *filter*
  annotations exposing that a consumer only uses a value subset of its input;
* **profile annotations** — dataflow statistics and cost statistics about the
  run-time execution of a program, in the style of Starfish.

Stubby only searches the subspace of the plan space whose transformations can
be *checked* and *costed* from the annotations present; absent annotations
simply disable the transformations that need them (never break correctness).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

from repro.common.errors import AnnotationError

FieldSet = FrozenSet[str]


def _fieldset(fields: Optional[Iterable[str]]) -> Optional[FieldSet]:
    if fields is None:
        return None
    return frozenset(fields)


# ---------------------------------------------------------------------------
# Dataset annotations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DatasetAnnotation:
    """Known physical-design and statistical properties of a dataset.

    Attributes mirror the paper's example annotation
    ``D01.dataset = {schema=<C,O,I,N,SH>, partition=<hash(C)>}``, extended
    with the statistics the What-if engine needs (sizes and field ranges).
    All attributes are optional: ``None`` means "unknown".
    """

    schema: Optional[Tuple[str, ...]] = None
    partition_kind: Optional[str] = None  # "hash" | "range" | "none"
    partition_fields: Optional[Tuple[str, ...]] = None
    split_points: Optional[Tuple[float, ...]] = None
    sort_fields: Optional[Tuple[str, ...]] = None
    compressed: Optional[bool] = None
    size_bytes: Optional[float] = None
    num_records: Optional[float] = None
    #: Known (min, max) ranges for numeric fields; used to pick range split
    #: points for the partition-function transformation.
    field_ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.partition_kind is not None and self.partition_kind not in ("hash", "range", "none"):
            raise AnnotationError(f"unknown partition kind {self.partition_kind!r}")

    @property
    def is_partitioned(self) -> bool:
        """True when a (known) hash or range partitioning exists."""
        return self.partition_kind in ("hash", "range") and bool(self.partition_fields)

    def partitioned_on_subset_of(self, fields: Iterable[str]) -> bool:
        """True when the dataset is partitioned on a non-empty subset of ``fields``."""
        if not self.is_partitioned:
            return False
        return set(self.partition_fields or ()).issubset(set(fields))

    def sorted_to_group_on(self, fields: Iterable[str]) -> bool:
        """True when per-partition ordering clusters records by ``fields``.

        That holds when the known sort fields start with every field in
        ``fields`` (in any order among themselves).
        """
        wanted = set(fields)
        if not wanted:
            return True
        if not self.sort_fields:
            return False
        prefix = set(self.sort_fields[: len(wanted)])
        return wanted.issubset(prefix) or wanted.issubset(set(self.sort_fields)) and prefix.issubset(wanted)

    def with_size(self, size_bytes: float, num_records: float) -> "DatasetAnnotation":
        """Copy with updated size statistics."""
        return replace(self, size_bytes=size_bytes, num_records=num_records)


# ---------------------------------------------------------------------------
# Program annotations: schema and filter
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchemaAnnotation:
    """Composition of the key and value types K1–K3 / V1–V3 of a program.

    ``None`` for any component means that component's composition is unknown,
    which makes transformations whose preconditions mention it inapplicable.
    Identical field names across jobs indicate data that flows unchanged
    (paper §2.2).
    """

    k1: Optional[FieldSet] = None
    v1: Optional[FieldSet] = None
    k2: Optional[FieldSet] = None
    v2: Optional[FieldSet] = None
    k3: Optional[FieldSet] = None
    v3: Optional[FieldSet] = None

    @classmethod
    def of(
        cls,
        k1: Optional[Iterable[str]] = None,
        v1: Optional[Iterable[str]] = None,
        k2: Optional[Iterable[str]] = None,
        v2: Optional[Iterable[str]] = None,
        k3: Optional[Iterable[str]] = None,
        v3: Optional[Iterable[str]] = None,
    ) -> "SchemaAnnotation":
        """Build an annotation from field iterables (``None`` = unknown)."""
        return cls(
            k1=_fieldset(k1),
            v1=_fieldset(v1),
            k2=_fieldset(k2),
            v2=_fieldset(v2),
            k3=_fieldset(k3),
            v3=_fieldset(v3),
        )

    @property
    def knows_map_output_key(self) -> bool:
        """True when K2 (the map output / reduce input key) is known."""
        return self.k2 is not None

    @property
    def knows_reduce_output_key(self) -> bool:
        """True when K3 (the reduce output key) is known."""
        return self.k3 is not None

    def key_flows_through_reduce(self, fields: Iterable[str]) -> bool:
        """Whether ``fields`` flow unchanged from reduce input key to output.

        Checked by field-name identity: every field must appear in both K2
        and K3.  Unknown K2/K3 means the flow cannot be established.
        """
        wanted = set(fields)
        if self.k2 is None or self.k3 is None:
            return False
        return wanted.issubset(self.k2) and wanted.issubset(self.k3)

    def map_emits_fields_from_input(self, fields: Iterable[str]) -> bool:
        """Whether the map output key K2 contains ``fields`` coming from its input.

        The "comes from its input" part is the field-name identity convention
        again: the fields must appear in K2, and — when the map input schema
        K1/V1 is known — also in the input composition.
        """
        wanted = set(fields)
        if self.k2 is None or not wanted.issubset(self.k2):
            return False
        if self.k1 is None and self.v1 is None:
            # Input composition unknown: identical names in K2 are taken as
            # the (weaker) signal of unchanged flow, per the paper's example.
            return True
        known_input = set(self.k1 or frozenset()) | set(self.v1 or frozenset())
        return wanted.issubset(known_input)


@dataclass(frozen=True)
class FilterRange:
    """A half-open numeric interval ``[low, high)`` on a field."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise AnnotationError(f"empty filter range [{self.low}, {self.high})")

    def contains(self, value: float) -> bool:
        """Whether a value satisfies the filter."""
        return self.low <= value < self.high

    def fraction_of(self, domain_low: float, domain_high: float) -> float:
        """Fraction of ``[domain_low, domain_high]`` covered by this range."""
        if domain_high <= domain_low:
            return 1.0
        covered = max(0.0, min(self.high, domain_high) - max(self.low, domain_low))
        return min(1.0, covered / (domain_high - domain_low))


@dataclass(frozen=True)
class FilterAnnotation:
    """Filter predicates a program applies to its input, per field.

    Mirrors the paper's ``J6.filter={0<=O<100}``.
    """

    ranges: Mapping[str, FilterRange] = field(default_factory=dict)

    @classmethod
    def of(cls, **field_ranges: Tuple[float, float]) -> "FilterAnnotation":
        """Build from keyword arguments, e.g. ``FilterAnnotation.of(O=(0, 100))``."""
        return cls(ranges={name: FilterRange(low, high) for name, (low, high) in field_ranges.items()})

    @property
    def fields(self) -> Tuple[str, ...]:
        """Fields the filter constrains."""
        return tuple(sorted(self.ranges))

    def range_for(self, field_name: str) -> Optional[FilterRange]:
        """The range constraining ``field_name`` (or ``None``)."""
        return self.ranges.get(field_name)

    def is_empty(self) -> bool:
        """True when no predicate is present."""
        return not self.ranges


# ---------------------------------------------------------------------------
# Profile annotations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OperatorProfile:
    """Dataflow and cost statistics of one operator (function).

    * ``selectivity`` — output records per input record;
    * ``cpu_cost_per_record`` — relative CPU cost units per input record;
    * ``output_record_bytes`` — average serialized size of one output record.
    """

    selectivity: float = 1.0
    cpu_cost_per_record: float = 1.0
    output_record_bytes: float = 100.0

    def __post_init__(self) -> None:
        if self.selectivity < 0 or self.cpu_cost_per_record < 0 or self.output_record_bytes < 0:
            raise AnnotationError("operator profile statistics cannot be negative")


@dataclass(frozen=True)
class ProfileAnnotation:
    """Dataflow and cost statistics of a program's run-time execution.

    These mirror Starfish's job profiles (paper §2.2 and [8]):

    * dataflow statistics — record selectivities and record widths of the map
      and reduce sides, the combiner's reduction ratio, and distinct key
      cardinalities per field combination;
    * cost statistics — relative CPU cost per record of the map and reduce
      sides (scaled by the cluster's CPU speed when estimating time).

    In addition to the job-level aggregates, ``operator_profiles`` carries the
    statistics of each named operator (function).  Packing transformations
    preserve operator identities, so the What-if engine can *adjust* packed
    jobs' annotations simply by chaining the operator profiles along the new
    pipelines (selectivities multiply, CPU costs add — paper §5).
    """

    map_selectivity: float = 1.0
    reduce_selectivity: float = 1.0
    map_output_record_bytes: float = 100.0
    output_record_bytes: float = 100.0
    input_record_bytes: float = 100.0
    combine_reduction: float = 1.0  # output records / input records of the combiner
    map_cpu_cost_per_record: float = 1.0
    reduce_cpu_cost_per_record: float = 1.0
    key_cardinalities: Mapping[Tuple[str, ...], float] = field(default_factory=dict)
    operator_profiles: Mapping[str, OperatorProfile] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in (
            "map_selectivity",
            "reduce_selectivity",
            "map_output_record_bytes",
            "output_record_bytes",
            "input_record_bytes",
            "combine_reduction",
            "map_cpu_cost_per_record",
            "reduce_cpu_cost_per_record",
        ):
            if getattr(self, name) < 0:
                raise AnnotationError(f"profile statistic {name} cannot be negative")

    def operator(self, name: str) -> Optional[OperatorProfile]:
        """Profile of a named operator, or ``None`` when not profiled."""
        return self.operator_profiles.get(name)

    def cardinality(self, fields: Sequence[str], default: float = 0.0) -> float:
        """Distinct-key estimate for a field combination.

        Falls back to the smallest superset's cardinality, then to the
        largest subset's, then to ``default``.
        """
        key = tuple(fields)
        if key in self.key_cardinalities:
            return self.key_cardinalities[key]
        wanted = set(fields)
        supersets = [c for f, c in self.key_cardinalities.items() if wanted.issubset(set(f))]
        if supersets:
            return min(supersets)
        subsets = [c for f, c in self.key_cardinalities.items() if set(f).issubset(wanted) and f]
        if subsets:
            return max(subsets)
        return default

    def merged_with(self, other: "ProfileAnnotation") -> "ProfileAnnotation":
        """Union of two profiles' operator statistics and key cardinalities.

        Used by packing transformations: the packed job's profile knows about
        every operator of the original jobs.
        """
        operators = dict(self.operator_profiles)
        operators.update(other.operator_profiles)
        cardinalities = dict(self.key_cardinalities)
        for fields, count in other.key_cardinalities.items():
            cardinalities[fields] = max(cardinalities.get(fields, 0.0), count)
        return replace(
            self,
            key_cardinalities=cardinalities,
            operator_profiles=operators,
            combine_reduction=min(self.combine_reduction, other.combine_reduction),
        )

    def scaled(self, factor: float) -> "ProfileAnnotation":
        """Copy with key cardinalities scaled (used when sampling data)."""
        return replace(
            self,
            key_cardinalities={f: c * factor for f, c in self.key_cardinalities.items()},
        )


# ---------------------------------------------------------------------------
# Per-job annotation container
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class JobAnnotations:
    """All annotations attached to one job vertex.

    ``slots=True``: the container is copied once per vertex privatized by a
    copy-on-write plan mutation — a hot allocation in the enumeration loop.

    Besides the paper's three annotation categories, the container also
    carries *conditions* imposed on the job by previously applied
    transformations: a partition-function constraint (set on the producer by
    intra-job vertical packing) and arbitrary named condition flags.  Later
    partition-function and configuration transformations must satisfy these
    conditions (paper §3.4/§3.5: "the new function/configuration should
    satisfy all current conditions").
    """

    schema: Optional[SchemaAnnotation] = None
    filter: Optional[FilterAnnotation] = None
    profile: Optional[ProfileAnnotation] = None
    #: Filters applied per input dataset name (when a job reads several
    #: datasets with different predicates, e.g. the log-analysis join).
    per_input_filters: Dict[str, FilterAnnotation] = field(default_factory=dict)
    #: Constraint on the job's partition function imposed by a transformation.
    #: Typed loosely to avoid an import cycle; holds a
    #: :class:`repro.mapreduce.partitioner.PartitionFunction` when set.
    partition_constraint: Optional[object] = None
    #: Free-form condition flags, e.g. {"chained_consumer": "J7"}.
    conditions: Dict[str, object] = field(default_factory=dict)

    def copy(self) -> "JobAnnotations":
        """Shallow copy (the contained annotations are immutable)."""
        return JobAnnotations(
            schema=self.schema,
            filter=self.filter,
            profile=self.profile,
            per_input_filters=dict(self.per_input_filters),
            partition_constraint=self.partition_constraint,
            conditions=dict(self.conditions),
        )

    @property
    def has_schema(self) -> bool:
        """Whether a schema annotation is available."""
        return self.schema is not None

    @property
    def has_profile(self) -> bool:
        """Whether a profile annotation is available."""
        return self.profile is not None

    def filter_for(self, dataset_name: Optional[str] = None) -> Optional[FilterAnnotation]:
        """The filter annotation for a specific input dataset, or the job-wide one."""
        if dataset_name is not None and dataset_name in self.per_input_filters:
            return self.per_input_filters[dataset_name]
        return self.filter
