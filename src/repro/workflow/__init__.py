"""Workflow DAG model, annotations, and the workflow executor."""

from repro.workflow.annotations import (
    DatasetAnnotation,
    FilterAnnotation,
    FilterRange,
    JobAnnotations,
    OperatorProfile,
    ProfileAnnotation,
    SchemaAnnotation,
)
from repro.workflow.graph import DatasetVertex, JobVertex, Workflow
from repro.workflow.subgraphs import SubgraphType, classify_subgraph
from repro.workflow.executor import WorkflowExecutionResult, WorkflowExecutor

__all__ = [
    "DatasetAnnotation",
    "FilterAnnotation",
    "FilterRange",
    "JobAnnotations",
    "OperatorProfile",
    "ProfileAnnotation",
    "SchemaAnnotation",
    "DatasetVertex",
    "JobVertex",
    "Workflow",
    "SubgraphType",
    "classify_subgraph",
    "WorkflowExecutionResult",
    "WorkflowExecutor",
]
