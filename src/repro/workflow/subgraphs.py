"""Producer-consumer subgraph classification (paper Figure 3).

The five subgraph types characterise the relationship between a producer job
and a consumer job through a dataset:

* **one-to-one** — one producer writes a dataset read by exactly one consumer;
* **one-to-many** — one producer, several consumers of the same dataset;
* **many-to-one** — a consumer reads datasets from several producers;
* **none-to-one** — a consumer reads a base (workflow input) dataset;
* **one-to-none** — a producer writes a terminal (workflow output) dataset.

Transformations key their preconditions off these types, so classification is
centralised here.  All lookups go through the workflow's topology index
(:mod:`repro.workflow.graph`): classifying one dataset is O(its consumers),
and the workflow-wide sweeps (:func:`shared_input_groups`,
:func:`concurrently_runnable_groups`) are O(datasets + edges) rather than
O(datasets · jobs).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from repro.workflow.graph import JobVertex, Workflow


class SubgraphType(Enum):
    """The five producer-consumer subgraph shapes of Figure 3."""

    ONE_TO_ONE = "one-to-one"
    ONE_TO_MANY = "one-to-many"
    MANY_TO_ONE = "many-to-one"
    NONE_TO_ONE = "none-to-one"
    ONE_TO_NONE = "one-to-none"


@dataclass(frozen=True)
class ProducerConsumerEdge:
    """A (producer?, dataset, consumer?) relationship and its classification."""

    producer: Optional[str]
    dataset: str
    consumer: Optional[str]
    subgraph: SubgraphType


def classify_subgraph(workflow: Workflow, dataset_name: str) -> List[ProducerConsumerEdge]:
    """Classify all producer-consumer relationships through one dataset."""
    producer = workflow.producer_of(dataset_name)
    consumers = workflow.consumers_of(dataset_name)
    edges: List[ProducerConsumerEdge] = []

    if producer is None and consumers:
        for consumer in consumers:
            edges.append(
                ProducerConsumerEdge(None, dataset_name, consumer.name, SubgraphType.NONE_TO_ONE)
            )
        return edges
    if producer is not None and not consumers:
        edges.append(
            ProducerConsumerEdge(producer.name, dataset_name, None, SubgraphType.ONE_TO_NONE)
        )
        return edges
    if producer is None and not consumers:
        return edges

    if len(consumers) == 1:
        consumer = consumers[0]
        # The consumer may also read datasets from other producers, which
        # makes the consumer-side shape many-to-one.
        other_producers = [
            p for p in workflow.producer_jobs(consumer.name) if p.name != producer.name
        ]
        consumer_reads_other_base = any(
            workflow.producer_of(d) is None
            for d in consumer.job.input_datasets
            if d != dataset_name
        )
        if other_producers or consumer_reads_other_base:
            subgraph = SubgraphType.MANY_TO_ONE
        else:
            subgraph = SubgraphType.ONE_TO_ONE
        edges.append(
            ProducerConsumerEdge(producer.name, dataset_name, consumer.name, subgraph)
        )
    else:
        for consumer in consumers:
            edges.append(
                ProducerConsumerEdge(
                    producer.name, dataset_name, consumer.name, SubgraphType.ONE_TO_MANY
                )
            )
    return edges


def classify_pair(workflow: Workflow, producer_name: str, consumer_name: str) -> Optional[SubgraphType]:
    """Classify the relationship between a specific producer and consumer job.

    Returns ``None`` when the consumer does not read any dataset produced by
    the producer.
    """
    producer = workflow.job(producer_name)
    consumer = workflow.job(consumer_name)
    shared = [d for d in producer.job.output_datasets if d in consumer.job.input_datasets]
    if not shared:
        return None
    dataset_name = shared[0]
    for edge in classify_subgraph(workflow, dataset_name):
        if edge.producer == producer_name and edge.consumer == consumer_name:
            return edge.subgraph
    return None


def consumer_input_shape(workflow: Workflow, consumer_name: str) -> Tuple[int, int]:
    """(number of producer jobs, number of base datasets) feeding a consumer."""
    consumer = workflow.job(consumer_name)
    producers = workflow.producer_jobs(consumer_name)
    base_inputs = [
        d for d in consumer.job.input_datasets if workflow.producer_of(d) is None
    ]
    return (len(producers), len(base_inputs))


def shared_input_groups(workflow: Workflow) -> List[Tuple[str, List[str]]]:
    """Datasets read by two or more jobs, with the reader job names.

    These are the horizontal-packing opportunities in the workflow (the
    "easy precondition" of §3.3).
    """
    groups: List[Tuple[str, List[str]]] = []
    for dataset_vertex in workflow.datasets:
        consumers = workflow.consumers_of(dataset_vertex.name)
        if len(consumers) >= 2:
            groups.append((dataset_vertex.name, [c.name for c in consumers]))
    return groups


def concurrently_runnable_groups(workflow: Workflow) -> List[List[str]]:
    """Groups of jobs with no dependency path between any pair.

    Used by the *extended* horizontal packing precondition, which relaxes
    "same input dataset" to "concurrently runnable" (§3.3 Extensions).
    """
    levels = workflow.topological_levels()
    return [[vertex.name for vertex in level] for level in levels if len(level) >= 2]
