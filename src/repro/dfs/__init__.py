"""Simulated distributed file-system: datasets, layouts, and partitions."""

from repro.dfs.dataset import Dataset, DatasetPartition
from repro.dfs.layout import DataLayout, PartitionScheme, RangePartitioning
from repro.dfs.filesystem import InMemoryFileSystem

__all__ = [
    "Dataset",
    "DatasetPartition",
    "DataLayout",
    "PartitionScheme",
    "RangePartitioning",
    "InMemoryFileSystem",
]
