"""In-memory datasets standing in for files on a distributed file-system.

A :class:`Dataset` is the payload behind a dataset vertex of the workflow
DAG.  It holds records partitioned into :class:`DatasetPartition` objects
according to its :class:`~repro.dfs.layout.DataLayout`, plus the aggregate
statistics (record count, raw byte size) the cost model needs.

Datasets are deliberately simple: lists of dict records.  The evaluation
datasets are generated at megabyte scale (see ``repro.workloads.datagen``)
and the cluster cost model scales simulated time with byte counts, so the
behaviourally relevant quantities — selectivities, key cardinalities, and
read-sharing opportunities — are preserved at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.common.hashing import stable_hash
from repro.common.records import Record, record_size_bytes, sort_key_for
from repro.dfs.layout import DataLayout, PartitionScheme


@dataclass
class DatasetPartition:
    """One stored partition (file) of a dataset."""

    index: int
    records: List[Record] = field(default_factory=list)

    @property
    def num_records(self) -> int:
        """Number of records in this partition."""
        return len(self.records)

    @property
    def raw_bytes(self) -> int:
        """Uncompressed serialized size of this partition."""
        return sum(record_size_bytes(record) for record in self.records)


class Dataset:
    """A named, partitioned collection of records with a physical layout."""

    def __init__(
        self,
        name: str,
        records: Optional[Iterable[Record]] = None,
        layout: Optional[DataLayout] = None,
        scale_factor: float = 1.0,
    ) -> None:
        self.name = name
        self.layout = layout or DataLayout()
        #: Multiplier applied to byte/record counts when reporting logical
        #: size.  Workloads generate MB-scale data but describe the logical
        #: dataset the paper used (hundreds of GB) through this factor.
        self.scale_factor = scale_factor
        self._partitions: List[DatasetPartition] = []
        if records is not None:
            self.load(records)

    # ------------------------------------------------------------------ load
    def load(self, records: Iterable[Record]) -> None:
        """(Re)load the dataset contents, partitioning per the layout."""
        materialized = list(records)
        scheme = self.layout.partitioning
        if scheme.kind == "range" and scheme.ranges is not None:
            buckets: Dict[int, List[Record]] = {
                i: [] for i in range(scheme.ranges.num_partitions)
            }
            for record in materialized:
                buckets[scheme.ranges.partition_index(record.get(scheme.ranges.field))].append(record)
            self._partitions = [
                DatasetPartition(index=i, records=bucket) for i, bucket in sorted(buckets.items())
            ]
        elif scheme.kind == "hash":
            num_partitions = max(1, min(16, len(materialized) // 64 + 1))
            buckets = {i: [] for i in range(num_partitions)}
            for record in materialized:
                # Process-independent bucketing so a dataset loaded from the
                # same records always lands in the same partitions run to run.
                key = tuple(record.get(f) for f in scheme.fields)
                buckets[stable_hash(key) % num_partitions].append(record)
            self._partitions = [
                DatasetPartition(index=i, records=bucket) for i, bucket in sorted(buckets.items())
            ]
        else:
            self._partitions = [DatasetPartition(index=0, records=materialized)]
        if self.layout.sort_fields:
            for partition in self._partitions:
                partition.records.sort(
                    key=lambda record: sort_key_for(record, self.layout.sort_fields)
                )

    # ------------------------------------------------------------ inspection
    @property
    def partitions(self) -> List[DatasetPartition]:
        """The stored partitions, in index order."""
        return self._partitions

    @property
    def num_partitions(self) -> int:
        """Number of stored partitions."""
        return len(self._partitions)

    @property
    def num_records(self) -> int:
        """Total record count (unscaled, i.e. the in-memory count)."""
        return sum(p.num_records for p in self._partitions)

    @property
    def raw_bytes(self) -> int:
        """Total uncompressed serialized size in bytes (unscaled)."""
        return sum(p.raw_bytes for p in self._partitions)

    @property
    def stored_bytes(self) -> float:
        """Bytes on the DFS after compression (unscaled)."""
        return self.layout.stored_bytes(self.raw_bytes)

    @property
    def logical_bytes(self) -> float:
        """Scaled byte size representing the paper-scale dataset."""
        return self.raw_bytes * self.scale_factor

    @property
    def logical_records(self) -> float:
        """Scaled record count representing the paper-scale dataset."""
        return self.num_records * self.scale_factor

    def records(self, partition_indexes: Optional[Sequence[int]] = None) -> Iterator[Record]:
        """Iterate records, optionally restricted to some partitions.

        Restricting to a subset of partition indexes is how partition pruning
        manifests at execution time.
        """
        for partition in self._partitions:
            if partition_indexes is not None and partition.index not in partition_indexes:
                continue
            for record in partition.records:
                yield dict(record)

    def all_records(self) -> List[Record]:
        """All records as a list of copies."""
        return list(self.records())

    def distinct_count(self, fields: Sequence[str]) -> int:
        """Number of distinct value combinations over ``fields``."""
        seen = set()
        for record in self.records():
            seen.add(tuple(str(record.get(f)) for f in fields))
        return len(seen)

    def field_range(self, field_name: str) -> Optional[tuple]:
        """(min, max) of a numeric field, or ``None`` if absent/non-numeric."""
        values = [
            record[field_name]
            for record in self.records()
            if isinstance(record.get(field_name), (int, float)) and not isinstance(record.get(field_name), bool)
        ]
        if not values:
            return None
        return (min(values), max(values))

    def relayout(self, layout: DataLayout) -> "Dataset":
        """Return a copy of this dataset stored under a different layout."""
        copy = Dataset(self.name, layout=layout, scale_factor=self.scale_factor)
        copy.load(self.all_records())
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(name={self.name!r}, records={self.num_records}, "
            f"partitions={self.num_partitions}, layout={self.layout.partitioning.kind})"
        )


def empty_dataset(name: str, layout: Optional[DataLayout] = None) -> Dataset:
    """Convenience constructor for an empty dataset."""
    return Dataset(name, records=[], layout=layout or DataLayout(partitioning=PartitionScheme.unpartitioned()))
