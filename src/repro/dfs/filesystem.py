"""A tiny in-memory "distributed" file-system namespace.

The workflow executor reads job input datasets from and writes job output
datasets to an :class:`InMemoryFileSystem`, keyed by dataset name.  This is
the persistent storage layer of the simulated MapReduce stack: intermediate
datasets between jobs live here exactly as they would live on HDFS, which is
what vertical packing transformations eliminate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.common.errors import ExecutionError
from repro.dfs.dataset import Dataset


class InMemoryFileSystem:
    """Mutable mapping of dataset name to :class:`Dataset`."""

    def __init__(self) -> None:
        self._datasets: Dict[str, Dataset] = {}
        #: Total bytes written over the lifetime of this filesystem, which
        #: experiments use to show the intermediate-I/O savings of packing.
        self.total_bytes_written: float = 0.0
        self.total_bytes_read: float = 0.0

    def put(self, dataset: Dataset) -> None:
        """Store (or replace) a dataset."""
        self._datasets[dataset.name] = dataset
        self.total_bytes_written += dataset.stored_bytes

    def get(self, name: str) -> Dataset:
        """Fetch a dataset by name, raising :class:`ExecutionError` if absent."""
        if name not in self._datasets:
            raise ExecutionError(f"dataset {name!r} does not exist in the filesystem")
        dataset = self._datasets[name]
        self.total_bytes_read += dataset.stored_bytes
        return dataset

    def exists(self, name: str) -> bool:
        """Whether a dataset with this name is stored."""
        return name in self._datasets

    def delete(self, name: str) -> None:
        """Remove a dataset if present."""
        self._datasets.pop(name, None)

    def names(self) -> List[str]:
        """All stored dataset names, sorted."""
        return sorted(self._datasets)

    def load_all(self, datasets: Iterable[Dataset]) -> None:
        """Bulk-load several datasets (used to stage workflow inputs)."""
        for dataset in datasets:
            self.put(dataset)

    def peek(self, name: str) -> Optional[Dataset]:
        """Like :meth:`get` but returns ``None`` instead of raising and does
        not count the access towards read statistics."""
        return self._datasets.get(name)
