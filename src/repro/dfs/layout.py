"""Physical layout descriptors for datasets stored in the simulated DFS.

The paper models each dataset vertex as ``D = <d, l, a>`` where the layout
``l`` controls how the dataset is partitioned and/or compressed in the
distributed file-system (§2.1).  Stubby's partition-function transformation
changes the layout of a producer's output dataset — in particular switching
hash partitioning to range partitioning so consumer jobs with filter
annotations can prune partitions (§3.4, Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


@dataclass(frozen=True)
class RangePartitioning:
    """Range partitioning of a dataset on one field.

    ``split_points`` are the lower bounds of partitions 1..n-1: a record with
    field value ``v`` lands in partition ``i`` where ``i`` is the number of
    split points ``<= v``.
    """

    field: str
    split_points: Tuple[float, ...]

    def partition_index(self, value: object) -> int:
        """Partition index for a field value (numeric comparison)."""
        if value is None:
            return 0
        index = 0
        for point in self.split_points:
            if _as_number(value) >= point:
                index += 1
            else:
                break
        return index

    @property
    def num_partitions(self) -> int:
        """Total number of range partitions."""
        return len(self.split_points) + 1

    def partitions_overlapping(self, low: float, high: float) -> Tuple[int, ...]:
        """Partition indexes that can contain values in ``[low, high)``.

        This is the primitive behind partition pruning: a consumer job whose
        filter annotation restricts the field to ``[low, high)`` only needs
        to read the returned partitions.
        """
        if high <= low:
            return ()
        lo_index = self.partition_index(low)
        # the partition containing high-epsilon
        hi_index = self.partition_index(high)
        if hi_index > 0 and self.split_points and high <= self.split_points[min(hi_index, len(self.split_points)) - 1]:
            hi_index -= 1
        hi_index = min(hi_index, self.num_partitions - 1)
        return tuple(range(lo_index, hi_index + 1))


def _as_number(value: object) -> float:
    if isinstance(value, (int, float)):
        return float(value)
    try:
        return float(str(value))
    except ValueError:
        # Fall back to a stable hash-based ordering for non-numeric values.
        return float(hash(str(value)) % 10_000_000)


@dataclass(frozen=True)
class PartitionScheme:
    """How a dataset is split into DFS partitions.

    ``kind`` is ``"hash"``, ``"range"``, or ``"none"`` (a single unpartitioned
    blob or block-split file).  ``fields`` is the partitioning key; ``ranges``
    carries the split points when ``kind == "range"``.
    """

    kind: str = "none"
    fields: Tuple[str, ...] = ()
    ranges: Optional[RangePartitioning] = None

    def __post_init__(self) -> None:
        if self.kind not in ("none", "hash", "range"):
            raise ValueError(f"unknown partition scheme kind: {self.kind!r}")
        if self.kind == "range" and self.ranges is None:
            raise ValueError("range partitioning requires split points")
        if self.kind == "hash" and not self.fields:
            raise ValueError("hash partitioning requires at least one field")

    @classmethod
    def hashed(cls, *fields: str) -> "PartitionScheme":
        """Hash partitioning on the given fields."""
        return cls(kind="hash", fields=tuple(fields))

    @classmethod
    def ranged(cls, field: str, split_points: Sequence[float]) -> "PartitionScheme":
        """Range partitioning on ``field`` with the given split points."""
        ranges = RangePartitioning(field=field, split_points=tuple(split_points))
        return cls(kind="range", fields=(field,), ranges=ranges)

    @classmethod
    def unpartitioned(cls) -> "PartitionScheme":
        """No logical partitioning (plain block-split file)."""
        return cls(kind="none")


@dataclass(frozen=True)
class DataLayout:
    """Full physical design of a dataset.

    Attributes
    ----------
    partitioning:
        Logical partitioning scheme of the stored files.
    sort_fields:
        Fields each partition is sorted on (empty when unsorted).
    compressed:
        Whether the stored bytes are compressed.
    compression_ratio:
        Compressed size / uncompressed size when ``compressed`` is true.
    block_size_mb:
        DFS block size used to derive the default number of map tasks.
    """

    partitioning: PartitionScheme = field(default_factory=PartitionScheme.unpartitioned)
    sort_fields: Tuple[str, ...] = ()
    compressed: bool = False
    compression_ratio: float = 0.35
    block_size_mb: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.compression_ratio <= 1.0:
            raise ValueError("compression_ratio must be in (0, 1]")
        if self.block_size_mb <= 0:
            raise ValueError("block_size_mb must be positive")

    def stored_bytes(self, raw_bytes: float) -> float:
        """Bytes occupied on the DFS after optional compression."""
        if self.compressed:
            return raw_bytes * self.compression_ratio
        return raw_bytes

    def with_partitioning(self, partitioning: PartitionScheme) -> "DataLayout":
        """Copy of this layout with a different partitioning scheme."""
        return DataLayout(
            partitioning=partitioning,
            sort_fields=self.sort_fields,
            compressed=self.compressed,
            compression_ratio=self.compression_ratio,
            block_size_mb=self.block_size_mb,
        )

    def with_sort_fields(self, sort_fields: Sequence[str]) -> "DataLayout":
        """Copy of this layout with different per-partition sort fields."""
        return DataLayout(
            partitioning=self.partitioning,
            sort_fields=tuple(sort_fields),
            compressed=self.compressed,
            compression_ratio=self.compression_ratio,
            block_size_mb=self.block_size_mb,
        )

    def with_compression(self, compressed: bool) -> "DataLayout":
        """Copy of this layout with compression toggled."""
        return DataLayout(
            partitioning=self.partitioning,
            sort_fields=self.sort_fields,
            compressed=compressed,
            compression_ratio=self.compression_ratio,
            block_size_mb=self.block_size_mb,
        )
