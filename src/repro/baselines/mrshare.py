"""MRShare comparator: cost-based horizontal packing only [13].

MRShare shares scans across multiple MapReduce jobs that read the same
dataset, deciding *whether* to share based on a cost model — but it considers
neither vertical packing nor partition-function transformations, and (per the
paper's setup) uses a rule-based approach for configuration settings.
"""

from __future__ import annotations

from repro.baselines.base import BaselineOptimizer
from repro.core.plan import Plan
from repro.core.transformations.configuration import ConfigurationTransformation
from repro.core.transformations.horizontal import HorizontalPacking


class MRShareOptimizer(BaselineOptimizer):
    """Cost-based horizontal packing, rule-based configuration."""

    name = "MRShare"

    def __init__(
        self,
        cluster,
        cost_service=None,
        cache_path=None,
        decision_cache=None,
        decision_cache_path=None,
    ) -> None:
        super().__init__(
            cluster,
            cost_service=cost_service,
            cache_path=cache_path,
            decision_cache=decision_cache,
            decision_cache_path=decision_cache_path,
        )
        self._horizontal = HorizontalPacking(allow_extended=False)

    def _optimize_plan(self, plan: Plan) -> Plan:
        ConfigurationTransformation.rule_of_thumb_config(plan, self.cluster)
        current = plan
        improved = True
        while improved:
            improved = False
            current_cost = self.costs.estimate_workflow(current.workflow).total_s
            all_jobs = tuple(current.workflow.job_names)
            applications = [
                application
                for application in self._horizontal.find_applications(current, all_jobs)
                if not application.details.get("extended", False)
            ]
            best_candidate = None
            best_cost = current_cost
            for application in applications:
                candidate = self._horizontal.apply(current, application)
                ConfigurationTransformation.rule_of_thumb_config(candidate, self.cluster)
                cost = self.costs.estimate_workflow(candidate.workflow).total_s
                if cost < best_cost:
                    best_cost = cost
                    best_candidate = candidate
            if best_candidate is not None:
                current = best_candidate
                improved = True
        return current
