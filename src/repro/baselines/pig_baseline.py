"""The Baseline: how an industrial-strength system (Pig) is used in production.

Paper §7: "we enabled all (rule-based) optimizations supported by Pig and
manually-tuned the configuration parameter settings using rules-of-thumb".
Pig's relevant rule-based optimization for workflows is multi-query
execution, i.e. horizontal packing of jobs that read the same input dataset —
applied whenever possible, without a cost model.  Configurations follow the
usual rules of thumb (reduce tasks just below one reduce wave, mid-sized sort
buffer, combiner on when available).
"""

from __future__ import annotations

from repro.baselines.base import BaselineOptimizer
from repro.core.plan import Plan
from repro.core.transformations.configuration import ConfigurationTransformation
from repro.core.transformations.horizontal import HorizontalPacking


class PigBaselineOptimizer(BaselineOptimizer):
    """Rule-based horizontal packing + rule-of-thumb configuration."""

    name = "Baseline"

    def __init__(
        self,
        cluster,
        enable_multiquery: bool = True,
        cost_service=None,
        cache_path=None,
        decision_cache=None,
        decision_cache_path=None,
    ) -> None:
        super().__init__(
            cluster,
            cost_service=cost_service,
            cache_path=cache_path,
            decision_cache=decision_cache,
            decision_cache_path=decision_cache_path,
        )
        self.enable_multiquery = enable_multiquery
        self._horizontal = HorizontalPacking(allow_extended=False)

    def _optimize_plan(self, plan: Plan) -> Plan:
        current = plan
        if self.enable_multiquery:
            current = self._pack_shared_inputs(current)
        ConfigurationTransformation.rule_of_thumb_config(current, self.cluster)
        self._enable_combiners(current)
        return current

    def _pack_shared_inputs(self, plan: Plan) -> Plan:
        """Apply horizontal packing wherever two jobs share an input dataset."""
        current = plan
        changed = True
        while changed:
            changed = False
            all_jobs = tuple(current.workflow.job_names)
            applications = [
                application
                for application in self._horizontal.find_applications(current, all_jobs)
                if not application.details.get("extended", False)
            ]
            if applications:
                current = self._horizontal.apply(current, applications[0])
                changed = True
        return current

    @staticmethod
    def _enable_combiners(plan: Plan) -> None:
        for vertex in plan.workflow.jobs:
            if vertex.job.has_combiner:
                plan.set_job_config(vertex.name, vertex.job.config.replace(combiner_enabled=True))
