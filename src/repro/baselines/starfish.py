"""Starfish comparator: cost-based configuration transformations only [8].

Starfish finds good configuration parameter settings for each MapReduce job
in the workflow using its What-if engine, but performs no vertical or
horizontal packing and no partition-function changes.  We reuse the same
What-if engine and Recursive Random Search that Stubby uses, restricted to
the configuration space of one job at a time (traversed in topological
order so upstream choices are visible when tuning downstream jobs).
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.baselines.base import BaselineOptimizer
from repro.common.rng import DeterministicRNG
from repro.core.plan import Plan
from repro.core.rrs import RecursiveRandomSearch
from repro.core.transformations.configuration import ConfigurationTransformation


class StarfishOptimizer(BaselineOptimizer):
    """Per-job cost-based configuration tuning."""

    name = "Starfish"

    def __init__(
        self,
        cluster,
        rrs: Optional[RecursiveRandomSearch] = None,
        seed: int = 23,
        cost_service=None,
        cache_path=None,
        decision_cache=None,
        decision_cache_path=None,
    ) -> None:
        super().__init__(
            cluster,
            cost_service=cost_service,
            cache_path=cache_path,
            decision_cache=decision_cache,
            decision_cache_path=decision_cache_path,
        )
        self.rrs = rrs or RecursiveRandomSearch(
            exploration_samples=10, exploitation_samples=8, restarts=1, seed=seed
        )
        self._rng = DeterministicRNG(seed)

    def _optimize_plan(self, plan: Plan) -> Plan:
        baseline = self.costs.estimate_workflow(plan.workflow)
        if baseline.cost_basis != "whatif":
            # Without profiles Starfish cannot cost configurations; fall back
            # to the rule-of-thumb settings.
            ConfigurationTransformation.rule_of_thumb_config(plan, self.cluster)
            return plan

        for vertex in plan.workflow.topological_order():
            space = ConfigurationTransformation.space_for_job(plan, vertex.name, self.cluster)
            if not space.dimensions:
                continue
            current = plan.workflow.job(vertex.name).job.config.as_dict()

            def objective(point: Mapping[str, object], job_name: str = vertex.name) -> float:
                candidate = plan.copy()
                ConfigurationTransformation.apply_settings_in_place(candidate, {job_name: point})
                return self.costs.estimate_workflow(candidate.workflow).total_s

            result = self.rrs.search(
                space, objective, initial_point=current, rng=self._rng.fork(vertex.name)
            )
            if result.best_point:
                ConfigurationTransformation.apply_settings_in_place(plan, {vertex.name: result.best_point})
                plan.record(
                    ConfigurationTransformation.application_for(vertex.name, result.best_point).as_applied()
                )
        return plan
