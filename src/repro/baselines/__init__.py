"""Baseline and state-of-the-art comparator optimizers from the paper's §7.

* :class:`PigBaselineOptimizer` — how Pig is used in production: rule-based
  multi-query (horizontal) packing plus manually tuned rule-of-thumb
  configurations.
* :class:`StarfishOptimizer` — cost-based configuration transformations only
  [8].
* :class:`YSmartOptimizer` — rule-based vertical and horizontal packing that
  aggressively minimizes the number of jobs [11], with rule-based
  configurations.
* :class:`MRShareOptimizer` — cost-based horizontal packing only [13], with
  rule-based configurations.
"""

from repro.baselines.base import BaselineOptimizer
from repro.baselines.pig_baseline import PigBaselineOptimizer
from repro.baselines.starfish import StarfishOptimizer
from repro.baselines.ysmart import YSmartOptimizer
from repro.baselines.mrshare import MRShareOptimizer

__all__ = [
    "BaselineOptimizer",
    "PigBaselineOptimizer",
    "StarfishOptimizer",
    "YSmartOptimizer",
    "MRShareOptimizer",
]
