"""YSmart comparator: rule-based packing that minimizes the number of jobs [11].

YSmart merges MapReduce jobs whenever its correctness rules allow, with the
goal of minimizing the total number of jobs — without a cost model.  This can
be suboptimal (paper §7.3: YSmart horizontally packs the two Post-processing
consumer jobs even though running them concurrently is faster).  Following
the paper's setup, the comparator is "enhanced with a rule-based approach for
selecting configuration parameter settings".
"""

from __future__ import annotations

from repro.baselines.base import BaselineOptimizer
from repro.core.plan import Plan
from repro.core.transformations.configuration import ConfigurationTransformation
from repro.core.transformations.horizontal import HorizontalPacking
from repro.core.transformations.inter_vertical import InterJobVerticalPacking
from repro.core.transformations.intra_vertical import IntraJobVerticalPacking


class YSmartOptimizer(BaselineOptimizer):
    """Aggressive rule-based vertical + horizontal packing."""

    name = "YSmart"

    def __init__(
        self,
        cluster,
        cost_service=None,
        cache_path=None,
        decision_cache=None,
        decision_cache_path=None,
    ) -> None:
        super().__init__(
            cluster,
            cost_service=cost_service,
            cache_path=cache_path,
            decision_cache=decision_cache,
            decision_cache_path=decision_cache_path,
        )
        self._intra = IntraJobVerticalPacking()
        self._inter = InterJobVerticalPacking()
        self._horizontal = HorizontalPacking(allow_extended=False)

    def _optimize_plan(self, plan: Plan) -> Plan:
        # YSmart's job-merging rules fire on its SQL operator primitives:
        # shared-scan (horizontal) merging is applied whenever jobs read the
        # same table, then remaining producer-consumer pairs are collapsed
        # vertically — always aiming for the minimum number of jobs.
        current = self._apply_exhaustively(plan, self._horizontal)
        current = self._apply_exhaustively(current, self._intra)
        current = self._apply_exhaustively(current, self._inter)
        ConfigurationTransformation.rule_of_thumb_config(current, self.cluster)
        return current

    @staticmethod
    def _apply_exhaustively(plan: Plan, transformation) -> Plan:
        current = plan
        for _ in range(32):  # generous bound; each application shrinks or constrains the plan
            all_jobs = tuple(current.workflow.job_names)
            applications = transformation.find_applications(current, all_jobs)
            if not applications:
                return current
            current = transformation.apply(current, applications[0])
        return current
