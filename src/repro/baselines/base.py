"""Common interface shared by baseline optimizers."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

from repro.cluster import ClusterSpec
from repro.core.optimizer import OptimizationResult
from repro.core.plan import Plan
from repro.whatif.model import WhatIfEngine
from repro.workflow.graph import Workflow


class BaselineOptimizer(ABC):
    """Base class giving baselines the same ``optimize`` interface as Stubby."""

    name = "baseline"

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self.whatif = WhatIfEngine(cluster)

    def optimize(self, plan_or_workflow) -> OptimizationResult:
        """Optimize a plan (or raw workflow) with this baseline's strategy."""
        plan = self._as_plan(plan_or_workflow)
        started = time.perf_counter()
        optimized = self._optimize_plan(plan.copy())
        elapsed = time.perf_counter() - started
        estimate = self.whatif.estimate_workflow(optimized.workflow)
        return OptimizationResult(
            plan=optimized,
            estimated_cost_s=estimate.total_s,
            optimization_time_s=elapsed,
            optimizer=self.name,
        )

    @abstractmethod
    def _optimize_plan(self, plan: Plan) -> Plan:
        """Strategy-specific optimization of a private plan copy."""

    @staticmethod
    def _as_plan(plan_or_workflow) -> Plan:
        if isinstance(plan_or_workflow, Plan):
            return plan_or_workflow
        if isinstance(plan_or_workflow, Workflow):
            return Plan(plan_or_workflow)
        raise TypeError("optimize() expects a Plan or a Workflow")
