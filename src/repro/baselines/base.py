"""Common interface shared by baseline optimizers."""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Optional

from repro.cluster import ClusterSpec
from repro.core.costing import CostService, StatsWindow, ensure_cost_service
from repro.core.decision_cache import DecisionCache, ensure_decision_cache
from repro.core.optimizer import OptimizationResult
from repro.core.plan import Plan
from repro.workflow.graph import Workflow


class BaselineOptimizer(ABC):
    """Base class giving baselines the same ``optimize`` interface as Stubby.

    Baselines issue their cost queries through the same shared
    :class:`CostService` as Stubby, so cost-based baselines (Starfish,
    MRShare) get the same incremental memoization — and report the same
    what-if statistics — as the main optimizer.  ``cache_path`` (or the
    ``STUBBY_COST_CACHE`` environment variable) warm-starts a standalone
    baseline's service from a persisted cache; it is ignored when an
    explicit ``cost_service`` is shared in.
    """

    name = "baseline"

    def __init__(
        self,
        cluster: ClusterSpec,
        cost_service: Optional[CostService] = None,
        cache_path: Optional[str] = None,
        decision_cache: Optional[DecisionCache] = None,
        decision_cache_path: Optional[str] = None,
    ) -> None:
        # Baselines are rule-based and never run the unit search, so the
        # decision cache is wired through for interface parity (the harness
        # hands every optimizer the same shared caches) but sees no traffic
        # from them.
        self.cluster = cluster
        self.costs = ensure_cost_service(cluster, cost_service, cache_path=cache_path)
        self.whatif = self.costs.engine
        self.decisions = ensure_decision_cache(
            cluster, decision_cache, cache_path=decision_cache_path
        )

    def optimize(self, plan_or_workflow, budget=None) -> OptimizationResult:
        """Optimize a plan (or raw workflow) with this baseline's strategy.

        ``budget`` mirrors :meth:`StubbyOptimizer.optimize`'s cooperative
        time budget.  Baselines are rule-based and effectively instant, so
        the budget is checked once up front and otherwise ignored.
        """
        plan = self._as_plan(plan_or_workflow)
        if budget is not None:
            budget.check("baseline.optimize")
        with StatsWindow(self.costs) as window:
            started = time.perf_counter()
            optimized = self._optimize_plan(plan.copy())
            # Only the strategy counts as optimization time; the final
            # estimate below is result accounting.
            elapsed = time.perf_counter() - started
            estimate = self.costs.estimate_workflow(optimized.workflow)
        return OptimizationResult(
            plan=optimized,
            estimated_cost_s=estimate.total_s,
            optimization_time_s=elapsed,
            optimizer=self.name,
            cost_stats=window.delta,
        )

    @abstractmethod
    def _optimize_plan(self, plan: Plan) -> Plan:
        """Strategy-specific optimization of a private plan copy."""

    @staticmethod
    def _as_plan(plan_or_workflow) -> Plan:
        if isinstance(plan_or_workflow, Plan):
            return plan_or_workflow
        if isinstance(plan_or_workflow, Workflow):
            return Plan(plan_or_workflow)
        raise TypeError("optimize() expects a Plan or a Workflow")
