"""Business Report Generation workload (BR): the seven-job running example (§7.1).

Seven jobs over a TPC-H-like ``lineitem`` table, emulating a report that runs
multiple group-by aggregates over a single source dataset:

* **BR_J1** — scan and perform initial processing of the lineitem data;
* **BR_J2 / BR_J3** — read, filter, and compute the sum and maximum of prices
  for the ``{orderid, partid}`` and ``{orderid, suppid}`` groupings;
* **BR_J4 / BR_J5** — aggregate those results further to per-``{orderid}``
  totals and maxima;
* **BR_J6 / BR_J7** — count the number of distinct aggregated prices of each
  branch.

The Vertical group alone packs BR_J4/BR_J5 into BR_J2/BR_J3 (7 → 5 jobs); the
Horizontal group packs BR_J2/BR_J3 (shared input) and BR_J6/BR_J7
(concurrently runnable); applying both groups yields the three-job workflow
the paper reports for Stubby.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.records import KeyValue, Record
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.workflow.annotations import FilterAnnotation, JobAnnotations, SchemaAnnotation
from repro.workflow.graph import Workflow
from repro.workloads import common, datagen
from repro.workloads.base import Workload, apply_paper_scale, attach_dataset_annotations


def _distinct_map(field: str):
    def map_fn(key: Record, value: Record) -> Iterable[KeyValue]:
        yield {"g": 0.0}, {field: value.get(field)}

    return map_fn


def build_business_report(scale: float = 1.0, seed: int = 42) -> Workload:
    """Build the BR (business report generation) workload."""
    lineitem = datagen.generate_lineitem(scale=scale, seed=seed, name="br_lineitem")
    apply_paper_scale({"br_lineitem": lineitem}, {"br_lineitem": 530.0})

    workflow = Workflow(name="business_report")

    j1 = simple_job(
        name="BR_J1",
        input_dataset="br_lineitem",
        output_dataset="br_clean",
        map_fn=common.key_by(["orderid"], value_fields=["orderid", "partid", "suppid", "price"]),
        reduce_fn=common.identity_reduce(),
        group_fields=("orderid",),
        map_cpu_cost=2.0,
        reduce_cpu_cost=2.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    workflow.add_job(
        j1,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["orderid"], v1=["orderid", "partid", "suppid", "quantity", "price"],
                k2=["orderid"], v2=["partid", "suppid", "price"],
                k3=["orderid"], v3=["partid", "suppid", "price"],
            )
        ),
    )

    group_specs = [
        ("BR_J2", "partid", "br_op", (50.0, 1.0e9)),
        ("BR_J3", "suppid", "br_os", (0.0, 500.0)),
    ]
    for job_name, second_field, output_name, (low, high) in group_specs:
        job = simple_job(
            name=job_name,
            input_dataset="br_clean",
            output_dataset=output_name,
            map_fn=common.key_by(
                ["orderid", second_field],
                value_fields=["price"],
                filter_fn=common.range_filter("price", low, high),
            ),
            reduce_fn=common.aggregate_reduce(
                {"sum_price": ("sum", "price"), "max_price": ("max", "price")}
            ),
            group_fields=("orderid", second_field),
            map_cpu_cost=2.0,
            reduce_cpu_cost=3.0,
            config=JobConfig(num_reduce_tasks=8),
        )
        workflow.add_job(
            job,
            JobAnnotations(
                schema=SchemaAnnotation.of(
                    k1=["orderid"], v1=["orderid", "partid", "suppid", "price"],
                    k2=["orderid", second_field], v2=["price"],
                    k3=["orderid", second_field], v3=["sum_price", "max_price"],
                ),
                filter=FilterAnnotation.of(price=(low, high)),
            ),
        )

    rollup_specs = [
        ("BR_J4", "br_op", "br_o1"),
        ("BR_J5", "br_os", "br_o2"),
    ]
    for job_name, input_name, output_name in rollup_specs:
        job = simple_job(
            name=job_name,
            input_dataset=input_name,
            output_dataset=output_name,
            map_fn=common.key_by(["orderid"], value_fields=["sum_price", "max_price"]),
            reduce_fn=common.aggregate_reduce(
                {"order_sum": ("sum", "sum_price"), "order_max": ("max", "max_price")}
            ),
            group_fields=("orderid",),
            map_cpu_cost=1.0,
            reduce_cpu_cost=2.0,
            config=JobConfig(num_reduce_tasks=8),
        )
        workflow.add_job(
            job,
            JobAnnotations(
                schema=SchemaAnnotation.of(
                    k1=["orderid"], v1=["orderid", "sum_price", "max_price"],
                    k2=["orderid"], v2=["sum_price", "max_price"],
                    k3=["orderid"], v3=["order_sum", "order_max"],
                )
            ),
        )

    distinct_specs = [
        ("BR_J6", "br_o1", "br_distinct1"),
        ("BR_J7", "br_o2", "br_distinct2"),
    ]
    for job_name, input_name, output_name in distinct_specs:
        job = simple_job(
            name=job_name,
            input_dataset=input_name,
            output_dataset=output_name,
            map_fn=_distinct_map("order_sum"),
            reduce_fn=common.distinct_count_reduce("order_sum", "distinct_prices"),
            group_fields=("g",),
            map_cpu_cost=1.0,
            reduce_cpu_cost=2.0,
            config=JobConfig(num_reduce_tasks=1, forced_single_reduce=True),
        )
        workflow.add_job(
            job,
            JobAnnotations(
                schema=SchemaAnnotation.of(
                    k1=["orderid"], v1=["orderid", "order_sum", "order_max"],
                    k2=["g"], v2=["order_sum"],
                    k3=["g"], v3=["distinct_prices"],
                )
            ),
        )

    datasets = {"br_lineitem": lineitem}
    attach_dataset_annotations(workflow, datasets)
    return Workload(
        name="Business Report Generation",
        abbreviation="BR",
        workflow=workflow,
        base_datasets=datasets,
        paper_dataset_gb=530.0,
        description="Seven-job report generation with multiple group-by aggregates over lineitem.",
    )
