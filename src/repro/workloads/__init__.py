"""The eight evaluation workflows of the paper's §7 (Table 1).

==== ============================== ==============
Abbr Workflow                        Paper dataset
==== ============================== ==============
IR   Information Retrieval (TF-IDF)  264 GB
SN   Social Network Analysis         267 GB
LA   Log Analysis                    500 GB
WG   Web Graph Analysis (PageRank)   255 GB
BA   Business Analytics Query (Q17)  550 GB
BR   Business Report Generation      530 GB
PJ   Post-processing Jobs            10 GB
US   User-defined Logical Splits     530 GB
==== ============================== ==============

Each builder returns a :class:`Workload` bundling the annotated workflow, the
generated base datasets (MB-scale data carrying a ``scale_factor`` so logical
sizes match the paper), and metadata.  ``build_workload("IR")`` is the main
entry point.
"""

from repro.workloads.base import Workload
from repro.workloads.information_retrieval import build_information_retrieval
from repro.workloads.social_network import build_social_network
from repro.workloads.log_analysis import build_log_analysis
from repro.workloads.web_graph import build_web_graph
from repro.workloads.business_analytics import build_business_analytics
from repro.workloads.business_report import build_business_report
from repro.workloads.post_processing import build_post_processing
from repro.workloads.logical_splits import build_logical_splits

WORKLOAD_BUILDERS = {
    "IR": build_information_retrieval,
    "SN": build_social_network,
    "LA": build_log_analysis,
    "WG": build_web_graph,
    "BA": build_business_analytics,
    "BR": build_business_report,
    "PJ": build_post_processing,
    "US": build_logical_splits,
}

WORKLOAD_ORDER = ("IR", "SN", "LA", "WG", "BA", "BR", "PJ", "US")


def build_workload(abbreviation: str, scale: float = 1.0, seed: int = 42) -> Workload:
    """Build one of the eight evaluation workloads by its abbreviation."""
    key = abbreviation.upper()
    if key not in WORKLOAD_BUILDERS:
        raise KeyError(
            f"unknown workload {abbreviation!r}; expected one of {sorted(WORKLOAD_BUILDERS)}"
        )
    return WORKLOAD_BUILDERS[key](scale=scale, seed=seed)


__all__ = [
    "Workload",
    "WORKLOAD_BUILDERS",
    "WORKLOAD_ORDER",
    "build_workload",
    "build_information_retrieval",
    "build_social_network",
    "build_log_analysis",
    "build_web_graph",
    "build_business_analytics",
    "build_business_report",
    "build_post_processing",
    "build_logical_splits",
]
