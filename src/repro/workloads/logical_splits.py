"""User-defined Logical Splits workload (US) (§7.1).

Three jobs over web-portal access logs, where the consumers analyse different
logical subsets (age groups) of the producer's output:

* **US_J1** — preprocess the logs into per-``{userid, age}`` session records;
* **US_J2** — analysis restricted to the 10–34 age group (filter in the map
  function, exposed through a filter annotation);
* **US_J3** — analysis restricted to the 35–79 age group.

Because the consumers' filters constrain the ``age`` field, which is part of
US_J1's map-output key, the partition-function transformation can switch
US_J1 to range partitioning on ``age`` and enable partition pruning in the
consumers — the behaviour §7.2 highlights for this workload.
"""

from __future__ import annotations

from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.workflow.annotations import FilterAnnotation, JobAnnotations, SchemaAnnotation
from repro.workflow.graph import Workflow
from repro.workloads import common, datagen
from repro.workloads.base import Workload, apply_paper_scale, attach_dataset_annotations

YOUNG_RANGE = (10.0, 35.0)
OLDER_RANGE = (35.0, 80.0)


def build_logical_splits(scale: float = 1.0, seed: int = 42) -> Workload:
    """Build the US (user-defined logical splits) workload."""
    logs = datagen.generate_portal_logs(scale=scale, seed=seed)
    apply_paper_scale({"portal_logs": logs}, {"portal_logs": 530.0})

    workflow = Workflow(name="logical_splits")

    j1 = simple_job(
        name="US_J1",
        input_dataset="portal_logs",
        output_dataset="us_sessions",
        map_fn=common.key_by(["userid", "age"], value_fields=["pageid", "duration"]),
        reduce_fn=common.aggregate_reduce(
            {"total_duration": ("sum", "duration"), "events": ("count", "pageid")}
        ),
        group_fields=("userid", "age"),
        map_cpu_cost=2.0,
        reduce_cpu_cost=3.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    workflow.add_job(
        j1,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["userid"], v1=["userid", "age", "pageid", "duration"],
                k2=["userid", "age"], v2=["pageid", "duration"],
                k3=["userid", "age"], v3=["total_duration", "events"],
            )
        ),
    )

    consumer_specs = [
        ("US_J2", "us_young", YOUNG_RANGE),
        ("US_J3", "us_older", OLDER_RANGE),
    ]
    for job_name, output_name, (low, high) in consumer_specs:
        job = simple_job(
            name=job_name,
            input_dataset="us_sessions",
            output_dataset=output_name,
            map_fn=common.key_by(
                ["age"],
                value_fields=["total_duration", "events"],
                filter_fn=common.range_filter("age", low, high),
            ),
            reduce_fn=common.aggregate_reduce(
                {
                    "avg_duration": ("avg", "total_duration"),
                    "avg_events": ("avg", "events"),
                    "users": ("count", "total_duration"),
                }
            ),
            group_fields=("age",),
            map_cpu_cost=2.0,
            reduce_cpu_cost=3.0,
            config=JobConfig(num_reduce_tasks=8),
        )
        workflow.add_job(
            job,
            JobAnnotations(
                schema=SchemaAnnotation.of(
                    k1=["userid", "age"], v1=["userid", "age", "total_duration", "events"],
                    k2=["age"], v2=["total_duration", "events"],
                    k3=["age"], v3=["avg_duration", "avg_events", "users"],
                ),
                filter=FilterAnnotation.of(age=(low, high)),
            ),
        )

    datasets = {"portal_logs": logs}
    attach_dataset_annotations(workflow, datasets)
    return Workload(
        name="User-defined Logical Splits",
        abbreviation="US",
        workflow=workflow,
        base_datasets=datasets,
        paper_dataset_gb=530.0,
        description="Per-age-group analyses over preprocessed portal logs with user-defined splits.",
    )
