"""Information Retrieval workload (IR): the TF-IDF workflow of §7.1.

Three jobs over a randomly generated corpus partitioned on the document name:

* **IR_J1** — term frequency: count occurrences of each ``(doc, word)`` pair;
* **IR_J2** — per-document totals: total number of words per document, joined
  back onto each ``(doc, word)`` record;
* **IR_J3** — document frequency and the final TF-IDF weight per
  ``(word, doc)`` pair.

IR_J2 groups on ``{doc}`` which is a subset of IR_J1's ``{doc, word}`` key
(and flows unchanged through IR_J1's reduce), so intra-job vertical packing
applies to IR_J2 — followed by inter-job packing that folds it into IR_J1.
IR_J3 re-groups on ``{word}``, so it must stay a separate shuffling job.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.common.records import KeyValue, Record
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.workflow.annotations import JobAnnotations, SchemaAnnotation
from repro.workflow.graph import Workflow
from repro.workloads import common, datagen
from repro.workloads.base import Workload, apply_paper_scale, attach_dataset_annotations


def _doc_totals_reduce(key: Record, values: List[Record]) -> Iterable[KeyValue]:
    total = sum(float(v.get("tf", 0.0) or 0.0) for v in values)
    for value in values:
        yield dict(key), {"word": value.get("word"), "tf": value.get("tf"), "doc_total": total}


def _tfidf_reduce(key: Record, values: List[Record]) -> Iterable[KeyValue]:
    documents = {str(v.get("doc")) for v in values}
    doc_frequency = max(1, len(documents))
    for value in values:
        tf = float(value.get("tf", 0.0) or 0.0)
        doc_total = max(1.0, float(value.get("doc_total", 1.0) or 1.0))
        weight = (tf / doc_total) * math.log(1.0 + 1000.0 / doc_frequency)
        yield dict(key), {"doc": value.get("doc"), "tfidf": round(weight, 6)}


def build_information_retrieval(scale: float = 1.0, seed: int = 42) -> Workload:
    """Build the IR (TF-IDF) workload at the given data-generation scale."""
    corpus = datagen.generate_document_corpus(scale=scale, seed=seed)
    apply_paper_scale({"corpus": corpus}, {"corpus": 264.0})

    workflow = Workflow(name="information_retrieval")

    j1 = simple_job(
        name="IR_J1",
        input_dataset="corpus",
        output_dataset="ir_tf",
        map_fn=common.key_by(["doc", "word"], value_fields=[], add_counter="n"),
        reduce_fn=common.sum_reduce("n", "tf"),
        group_fields=("doc", "word"),
        combiner=common.sum_combiner("n"),
        map_cpu_cost=3.0,
        reduce_cpu_cost=2.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    workflow.add_job(
        j1,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["doc"], v1=["doc", "word"],
                k2=["doc", "word"], v2=["n"],
                k3=["doc", "word"], v3=["tf"],
            )
        ),
    )

    j2 = simple_job(
        name="IR_J2",
        input_dataset="ir_tf",
        output_dataset="ir_doc_totals",
        map_fn=common.key_by(["doc"], value_fields=["word", "tf"]),
        reduce_fn=_doc_totals_reduce,
        group_fields=("doc",),
        map_cpu_cost=2.0,
        reduce_cpu_cost=3.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    workflow.add_job(
        j2,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["doc", "word"], v1=["doc", "word", "tf"],
                k2=["doc"], v2=["word", "tf"],
                k3=["doc"], v3=["word", "tf", "doc_total"],
            )
        ),
    )

    j3 = simple_job(
        name="IR_J3",
        input_dataset="ir_doc_totals",
        output_dataset="ir_tfidf",
        map_fn=common.key_by(["word"], value_fields=["doc", "tf", "doc_total"]),
        reduce_fn=_tfidf_reduce,
        group_fields=("word",),
        map_cpu_cost=2.0,
        reduce_cpu_cost=5.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    workflow.add_job(
        j3,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["doc"], v1=["doc", "word", "tf", "doc_total"],
                k2=["word"], v2=["doc", "tf", "doc_total"],
                k3=["word"], v3=["doc", "tfidf"],
            )
        ),
    )

    datasets = {"corpus": corpus}
    attach_dataset_annotations(workflow, datasets)
    return Workload(
        name="Information Retrieval",
        abbreviation="IR",
        workflow=workflow,
        base_datasets=datasets,
        paper_dataset_gb=264.0,
        description="TF-IDF over a randomly generated corpus partitioned on the document name.",
    )
