"""Log Analysis workload (LA): the Pavlo et al. join task (§7.1).

Four jobs over two inputs — ``uservisits`` (range-partitioned on the visit
date) and ``pageranks``:

* **LA_J1** — filter ``uservisits`` to a date range and join with
  ``pageranks`` on the page URL;
* **LA_J2** — aggregate per user: total ad revenue and average pagerank;
* **LA_J3** — sample the per-user revenue and derive partition split points;
* **LA_J4** — the user with the highest total ad revenue (single reduce).

The date filter on the base dataset is exposed through a per-input filter
annotation; because ``uservisits`` is range-partitioned on the date, Stubby's
partition-function machinery can prune the partitions LA_J1 has to read —
the partition-pruning benefit §7.3 attributes to Stubby for this workload.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.records import KeyValue, Record
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.workflow.annotations import FilterAnnotation, JobAnnotations, SchemaAnnotation
from repro.workflow.graph import Workflow
from repro.workloads import common, datagen
from repro.workloads.base import Workload, apply_paper_scale, attach_dataset_annotations

DATE_LOW = 91.0
DATE_HIGH = 182.0


def _join_map(key: Record, value: Record) -> Iterable[KeyValue]:
    if "revenue" in value:
        date = float(value.get("date", -1.0) or -1.0)
        if not DATE_LOW <= date < DATE_HIGH:
            return
        yield {"url": value.get("url")}, {
            "__side": "visits",
            "ip": value.get("ip"),
            "revenue": value.get("revenue"),
        }
    elif "rank" in value:
        yield {"url": value.get("url")}, {"__side": "ranks", "rank": value.get("rank")}


def _sample_map(key: Record, value: Record) -> Iterable[KeyValue]:
    if int(float(value.get("total_revenue", 0.0) or 0.0) * 100) % 4 == 0:
        yield {"g": 0.0}, {"total_revenue": value.get("total_revenue")}


def _top_user_map(key: Record, value: Record) -> Iterable[KeyValue]:
    yield {"g": 0.0}, {
        "ip": value.get("ip"),
        "total_revenue": value.get("total_revenue"),
        "avg_rank": value.get("avg_rank"),
    }


def build_log_analysis(scale: float = 1.0, seed: int = 42) -> Workload:
    """Build the LA (log analysis join) workload."""
    uservisits = datagen.generate_uservisits(scale=scale, seed=seed)
    pageranks = datagen.generate_pageranks(scale=scale, seed=seed + 1)
    apply_paper_scale(
        {"uservisits": uservisits, "pageranks": pageranks},
        {"uservisits": 455.0, "pageranks": 45.0},
    )

    workflow = Workflow(name="log_analysis")

    j1 = simple_job(
        name="LA_J1",
        input_dataset="uservisits",
        output_dataset="la_joined",
        map_fn=_join_map,
        reduce_fn=common.join_reduce("visits", "ranks", ["ip", "revenue", "rank"]),
        group_fields=("url",),
        map_cpu_cost=3.0,
        reduce_cpu_cost=4.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    # The join reads both inputs through one pipeline (repartition join).
    j1.pipelines[0].input_datasets = ("uservisits", "pageranks")
    workflow.add_job(
        j1,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["date"], v1=["ip", "url", "date", "revenue", "rank"],
                k2=["url"], v2=["ip", "revenue", "rank"],
                k3=["url"], v3=["ip", "revenue", "rank"],
            ),
            per_input_filters={"uservisits": FilterAnnotation.of(date=(DATE_LOW, DATE_HIGH))},
        ),
    )

    j2 = simple_job(
        name="LA_J2",
        input_dataset="la_joined",
        output_dataset="la_user_agg",
        map_fn=common.key_by(["ip"], value_fields=["revenue", "rank"]),
        reduce_fn=common.aggregate_reduce(
            {"total_revenue": ("sum", "revenue"), "avg_rank": ("avg", "rank")}
        ),
        group_fields=("ip",),
        map_cpu_cost=2.0,
        reduce_cpu_cost=3.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    workflow.add_job(
        j2,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["url"], v1=["ip", "revenue", "rank"],
                k2=["ip"], v2=["revenue", "rank"],
                k3=["ip"], v3=["total_revenue", "avg_rank"],
            )
        ),
    )

    j3 = simple_job(
        name="LA_J3",
        input_dataset="la_user_agg",
        output_dataset="la_splits",
        map_fn=_sample_map,
        reduce_fn=common.sample_split_points_reduce("total_revenue", 8),
        group_fields=("g",),
        map_cpu_cost=1.0,
        reduce_cpu_cost=1.0,
        config=JobConfig(num_reduce_tasks=1, forced_single_reduce=True),
    )
    workflow.add_job(
        j3,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["ip"], v1=["ip", "total_revenue", "avg_rank"],
                k2=["g"], v2=["total_revenue"],
                k3=["g"], v3=["split_index", "split_point"],
            )
        ),
    )

    j4 = simple_job(
        name="LA_J4",
        input_dataset="la_user_agg",
        output_dataset="la_top_user",
        map_fn=_top_user_map,
        reduce_fn=common.top_k_reduce(1, "total_revenue", ["ip", "avg_rank"]),
        group_fields=("g",),
        map_cpu_cost=1.0,
        reduce_cpu_cost=2.0,
        config=JobConfig(num_reduce_tasks=1, forced_single_reduce=True),
    )
    workflow.add_job(
        j4,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["ip"], v1=["ip", "total_revenue", "avg_rank"],
                k2=["g"], v2=["ip", "total_revenue", "avg_rank"],
                k3=["g"], v3=["ip", "total_revenue", "avg_rank", "position"],
            )
        ),
    )

    datasets = {"uservisits": uservisits, "pageranks": pageranks}
    attach_dataset_annotations(workflow, datasets)
    return Workload(
        name="Log Analysis",
        abbreviation="LA",
        workflow=workflow,
        base_datasets=datasets,
        paper_dataset_gb=500.0,
        description="Filtered join of uservisits and pageranks, per-user aggregation, and top user.",
    )
