"""Post-processing Jobs workload (PJ): small-data workflow (§7.1).

Three jobs over a small (paper: 10 GB) dataset:

* **PJ_J1** — scan and perform initial processing of the data;
* **PJ_J2** — group-by covariance of the two measures;
* **PJ_J3** — group-by correlation of the two measures.

PJ_J2 and PJ_J3 share PJ_J1's output, so horizontal packing is *applicable* —
but because the cluster can run both small jobs concurrently, packing them is
a loss.  Rule-based optimizers (the Baseline and YSmart) pack them anyway;
cost-based ones (Stubby, Horizontal, MRShare) correctly decline (§7.2/§7.3).
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.common.records import KeyValue, Record
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.workflow.annotations import JobAnnotations, SchemaAnnotation
from repro.workflow.graph import Workflow
from repro.workloads import common, datagen
from repro.workloads.base import Workload, apply_paper_scale, attach_dataset_annotations


def _covariance_reduce(key: Record, values: List[Record]) -> Iterable[KeyValue]:
    xs = [float(v.get("x", 0.0) or 0.0) for v in values]
    ys = [float(v.get("y", 0.0) or 0.0) for v in values]
    n = max(1, len(xs))
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / n
    yield dict(key), {"covariance": round(covariance, 6)}


def _correlation_reduce(key: Record, values: List[Record]) -> Iterable[KeyValue]:
    xs = [float(v.get("x", 0.0) or 0.0) for v in values]
    ys = [float(v.get("y", 0.0) or 0.0) for v in values]
    n = max(1, len(xs))
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / n
    std_x = math.sqrt(sum((x - mean_x) ** 2 for x in xs) / n)
    std_y = math.sqrt(sum((y - mean_y) ** 2 for y in ys) / n)
    correlation = covariance / (std_x * std_y) if std_x > 0 and std_y > 0 else 0.0
    yield dict(key), {"correlation": round(correlation, 6)}


def build_post_processing(scale: float = 1.0, seed: int = 42) -> Workload:
    """Build the PJ (post-processing jobs) workload."""
    metrics = datagen.generate_metrics(scale=scale, seed=seed)
    apply_paper_scale({"metrics": metrics}, {"metrics": 10.0})

    workflow = Workflow(name="post_processing")

    j1 = simple_job(
        name="PJ_J1",
        input_dataset="metrics",
        output_dataset="pj_clean",
        map_fn=common.key_by(["groupid"], value_fields=["groupid", "x", "y"]),
        reduce_fn=common.identity_reduce(),
        group_fields=("groupid",),
        map_cpu_cost=2.0,
        reduce_cpu_cost=2.0,
        config=JobConfig(num_reduce_tasks=4),
    )
    workflow.add_job(
        j1,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["groupid"], v1=["groupid", "x", "y"],
                k2=["groupid"], v2=["groupid", "x", "y"],
                k3=["groupid"], v3=["groupid", "x", "y"],
            )
        ),
    )

    analytic_specs = [
        ("PJ_J2", "pj_cov", _covariance_reduce, 4.0),
        ("PJ_J3", "pj_corr", _correlation_reduce, 5.0),
    ]
    for job_name, output_name, reduce_fn, reduce_cost in analytic_specs:
        job = simple_job(
            name=job_name,
            input_dataset="pj_clean",
            output_dataset=output_name,
            map_fn=common.key_by(["groupid"], value_fields=["x", "y"]),
            reduce_fn=reduce_fn,
            group_fields=("groupid",),
            map_cpu_cost=1.0,
            reduce_cpu_cost=reduce_cost,
            config=JobConfig(num_reduce_tasks=4),
        )
        workflow.add_job(
            job,
            JobAnnotations(
                schema=SchemaAnnotation.of(
                    k1=["groupid"], v1=["groupid", "x", "y"],
                    k2=["groupid"], v2=["x", "y"],
                    k3=["groupid"], v3=["covariance" if job_name == "PJ_J2" else "correlation"],
                )
            ),
        )

    datasets = {"metrics": metrics}
    attach_dataset_annotations(workflow, datasets)
    return Workload(
        name="Post-processing Jobs",
        abbreviation="PJ",
        workflow=workflow,
        base_datasets=datasets,
        paper_dataset_gb=10.0,
        description="Small-data covariance/correlation post-processing over a shared cleaned dataset.",
    )
