"""Web Graph Analysis workload (WG): one PageRank iteration (§7.1).

Two jobs over a power-law adjacency list and the current rank vector:

* **WG_J1** — join the adjacency list with the current ranks on the source
  page and emit a rank contribution for every outgoing link;
* **WG_J2** — sum the contributions per destination page and apply the
  damping factor to produce the new rank vector.

WG_J2 re-groups by the destination page, whose values are *not* the grouping
key of WG_J1, so no vertical packing applies — matching the paper's
observation that packing offers limited benefit for this workflow and that
most of the gain comes from cost-based configuration tuning.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.records import KeyValue, Record
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.workflow.annotations import JobAnnotations, SchemaAnnotation
from repro.workflow.graph import Workflow
from repro.workloads import common, datagen
from repro.workloads.base import Workload, apply_paper_scale, attach_dataset_annotations

DAMPING = 0.85


def _join_map(key: Record, value: Record) -> Iterable[KeyValue]:
    if "dst" in value:
        yield {"src": value.get("src")}, {"__side": "adj", "dst": value.get("dst")}
    elif "rank" in value:
        yield {"src": value.get("src")}, {"__side": "rank", "rank": value.get("rank")}


def _contrib_reduce(key: Record, values: List[Record]) -> Iterable[KeyValue]:
    links = [v.get("dst") for v in values if v.get("__side") == "adj"]
    ranks = [float(v.get("rank", 0.0) or 0.0) for v in values if v.get("__side") == "rank"]
    if not links or not ranks:
        return
    contribution = ranks[0] / len(links)
    for dst in links:
        yield dict(key), {"dst": dst, "contrib": contribution}


def _new_rank_reduce(key: Record, values: List[Record]) -> Iterable[KeyValue]:
    total = sum(float(v.get("contrib", 0.0) or 0.0) for v in values)
    yield dict(key), {"rank": round(0.15 + DAMPING * total, 9)}


def build_web_graph(scale: float = 1.0, seed: int = 42) -> Workload:
    """Build the WG (PageRank iteration) workload."""
    adjacency = datagen.generate_adjacency_list(scale=scale, seed=seed)
    ranks = datagen.generate_initial_ranks(scale=scale, seed=seed + 2)
    apply_paper_scale(
        {"adjacency": adjacency, "ranks": ranks},
        {"adjacency": 230.0, "ranks": 25.0},
    )

    workflow = Workflow(name="web_graph")

    j1 = simple_job(
        name="WG_J1",
        input_dataset="adjacency",
        output_dataset="wg_contribs",
        map_fn=_join_map,
        reduce_fn=_contrib_reduce,
        group_fields=("src",),
        map_cpu_cost=2.0,
        reduce_cpu_cost=4.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    j1.pipelines[0].input_datasets = ("adjacency", "ranks")
    workflow.add_job(
        j1,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["src"], v1=["src", "dst", "rank"],
                k2=["src"], v2=["dst", "rank"],
                k3=["src"], v3=["dst", "contrib"],
            )
        ),
    )

    j2 = simple_job(
        name="WG_J2",
        input_dataset="wg_contribs",
        output_dataset="wg_newranks",
        map_fn=common.key_by(["dst"], value_fields=["contrib"]),
        reduce_fn=_new_rank_reduce,
        group_fields=("dst",),
        map_cpu_cost=2.0,
        reduce_cpu_cost=18.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    workflow.add_job(
        j2,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["src"], v1=["dst", "contrib"],
                k2=["dst"], v2=["contrib"],
                k3=["dst"], v3=["rank"],
            )
        ),
    )

    datasets = {"adjacency": adjacency, "ranks": ranks}
    attach_dataset_annotations(workflow, datasets)
    return Workload(
        name="Web Graph Analysis",
        abbreviation="WG",
        workflow=workflow,
        base_datasets=datasets,
        paper_dataset_gb=255.0,
        description="One PageRank iteration: contribution join followed by rank aggregation.",
    )
