"""Social Network Analysis workload (SN): top-20 coauthor pairs (§7.1).

Four jobs over randomly generated ``(paper, author)`` pairs drawn from a
power-law distribution and partitioned (and sorted) on ``paper``:

* **SN_J1** — combine all authors of each paper;
* **SN_J2** — create coauthor pairs and count collaborations;
* **SN_J3** — sample the counts and create partition split points for SN_J4;
* **SN_J4** — the global top-20 coauthor pairs in decreasing order (a single
  reduce task for the final ordering).

SN_J1 groups on the field the input is already partitioned and sorted on, so
the none-to-one intra-job vertical packing applies to it; the resulting
map-only job can then be folded into SN_J2 by inter-job packing.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.records import KeyValue, Record
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.workflow.annotations import JobAnnotations, SchemaAnnotation
from repro.workflow.graph import Workflow
from repro.workloads import common, datagen
from repro.workloads.base import Workload, apply_paper_scale, attach_dataset_annotations


def _pairs_map(key: Record, value: Record) -> Iterable[KeyValue]:
    authors = str(value.get("authors", "")).split("|")
    authors = [a for a in authors if a]
    for i in range(len(authors)):
        for j in range(i + 1, len(authors)):
            yield {"a1": authors[i], "a2": authors[j]}, {"n": 1.0}


def _sample_map(key: Record, value: Record) -> Iterable[KeyValue]:
    # Deterministic 1-in-5 sample of the pair counts.
    if int(float(value.get("count", 0.0) or 0.0) * 10) % 5 == 0:
        yield {"g": 0.0}, {"count": value.get("count")}


def _top_map(key: Record, value: Record) -> Iterable[KeyValue]:
    yield {"g": 0.0}, {"a1": value.get("a1"), "a2": value.get("a2"), "count": value.get("count")}


def build_social_network(scale: float = 1.0, seed: int = 42) -> Workload:
    """Build the SN (top-20 coauthor pairs) workload."""
    paper_authors = datagen.generate_paper_authors(scale=scale, seed=seed)
    apply_paper_scale({"paper_authors": paper_authors}, {"paper_authors": 267.0})

    workflow = Workflow(name="social_network")

    j1 = simple_job(
        name="SN_J1",
        input_dataset="paper_authors",
        output_dataset="sn_authors",
        map_fn=common.key_by(["paper"], value_fields=["author"]),
        reduce_fn=common.collect_reduce("author", "authors"),
        group_fields=("paper",),
        map_cpu_cost=2.0,
        reduce_cpu_cost=2.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    workflow.add_job(
        j1,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["paper"], v1=["paper", "author"],
                k2=["paper"], v2=["author"],
                k3=["paper"], v3=["authors"],
            )
        ),
    )

    j2 = simple_job(
        name="SN_J2",
        input_dataset="sn_authors",
        output_dataset="sn_pairs",
        map_fn=_pairs_map,
        reduce_fn=common.sum_reduce("n", "count"),
        group_fields=("a1", "a2"),
        combiner=common.sum_combiner("n"),
        map_cpu_cost=6.0,
        reduce_cpu_cost=2.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    workflow.add_job(
        j2,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["paper"], v1=["paper", "authors"],
                k2=["a1", "a2"], v2=["n"],
                k3=["a1", "a2"], v3=["count"],
            )
        ),
    )

    j3 = simple_job(
        name="SN_J3",
        input_dataset="sn_pairs",
        output_dataset="sn_splits",
        map_fn=_sample_map,
        reduce_fn=common.sample_split_points_reduce("count", 8),
        group_fields=("g",),
        map_cpu_cost=1.0,
        reduce_cpu_cost=1.0,
        config=JobConfig(num_reduce_tasks=1, forced_single_reduce=True),
    )
    workflow.add_job(
        j3,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["a1", "a2"], v1=["a1", "a2", "count"],
                k2=["g"], v2=["count"],
                k3=["g"], v3=["split_index", "split_point"],
            )
        ),
    )

    j4 = simple_job(
        name="SN_J4",
        input_dataset="sn_pairs",
        output_dataset="sn_top20",
        map_fn=_top_map,
        reduce_fn=common.top_k_reduce(20, "count", ["a1", "a2"]),
        group_fields=("g",),
        map_cpu_cost=1.0,
        reduce_cpu_cost=3.0,
        config=JobConfig(num_reduce_tasks=1, forced_single_reduce=True),
    )
    workflow.add_job(
        j4,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["a1", "a2"], v1=["a1", "a2", "count"],
                k2=["g"], v2=["a1", "a2", "count"],
                k3=["g"], v3=["a1", "a2", "count", "position"],
            )
        ),
    )

    datasets = {"paper_authors": paper_authors}
    attach_dataset_annotations(workflow, datasets)
    return Workload(
        name="Social Network Analysis",
        abbreviation="SN",
        workflow=workflow,
        base_datasets=datasets,
        paper_dataset_gb=267.0,
        description="Top-20 coauthor pairs over power-law (paper, author) data partitioned on paper.",
    )
