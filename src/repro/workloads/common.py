"""Shared map/reduce function factories used by the evaluation workflows.

The factories return closures with the ``map(key, value)`` /
``reduce(key, values)`` signatures expected by
:mod:`repro.mapreduce.pipeline`.  They cover the recurring patterns of the
paper's workloads: key-by projection, filtering, group-and-aggregate
(sum/max/min/avg/count), joins on a common key, distinct counting, sampling,
and top-K selection.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.records import KeyValue, Record


# ---------------------------------------------------------------------------
# Map-side factories
# ---------------------------------------------------------------------------


def key_by(
    key_fields: Sequence[str],
    value_fields: Optional[Sequence[str]] = None,
    add_counter: Optional[str] = None,
    filter_fn: Optional[Callable[[Record], bool]] = None,
) -> Callable[[Record, Record], Iterable[KeyValue]]:
    """Map function that keys each record by ``key_fields``.

    ``value_fields`` restricts the emitted value (default: the whole record);
    ``add_counter`` adds a constant ``1`` field useful for counting via a
    summing reducer; ``filter_fn`` drops records for which it returns False.
    """
    key_fields = tuple(key_fields)
    value_fields = tuple(value_fields) if value_fields is not None else None

    def map_fn(key: Record, value: Record) -> Iterable[KeyValue]:
        if filter_fn is not None and not filter_fn(value):
            return
        out_key = {f: value.get(f) for f in key_fields}
        if value_fields is None:
            out_value = dict(value)
        else:
            out_value = {f: value.get(f) for f in value_fields}
        if add_counter is not None:
            out_value[add_counter] = 1.0
        yield out_key, out_value

    return map_fn


def range_filter(field: str, low: float, high: float) -> Callable[[Record], bool]:
    """Predicate keeping records whose ``field`` falls in ``[low, high)``."""

    def predicate(record: Record) -> bool:
        value = record.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        return low <= float(value) < high

    return predicate


def tagged_join_map(
    join_fields: Sequence[str],
    side_specs: Mapping[str, Tuple[str, Sequence[str]]],
) -> Callable[[Record, Record], Iterable[KeyValue]]:
    """Map function for a repartition join over datasets with distinct schemas.

    ``side_specs`` maps a side name to ``(marker_field, value_fields)``: a
    record belongs to the side whose ``marker_field`` it contains.  The map
    output value carries a ``__side`` tag so the join reducer can separate the
    sides.
    """
    join_fields = tuple(join_fields)

    def map_fn(key: Record, value: Record) -> Iterable[KeyValue]:
        for side, (marker_field, value_fields) in side_specs.items():
            if marker_field in value:
                out_key = {f: value.get(f) for f in join_fields}
                out_value = {f: value.get(f) for f in value_fields}
                out_value["__side"] = side
                yield out_key, out_value
                return

    return map_fn


# ---------------------------------------------------------------------------
# Reduce-side factories
# ---------------------------------------------------------------------------


def sum_reduce(
    field: str,
    out_field: str,
    extra_fields: Sequence[str] = (),
) -> Callable[[Record, List[Record]], Iterable[KeyValue]]:
    """Reducer summing ``field`` over the group into ``out_field``."""
    extra_fields = tuple(extra_fields)

    def reduce_fn(key: Record, values: List[Record]) -> Iterable[KeyValue]:
        total = sum(float(v.get(field, 0.0) or 0.0) for v in values)
        out: Record = {out_field: total}
        for extra in extra_fields:
            if values:
                out[extra] = values[0].get(extra)
        yield key, out

    return reduce_fn


def sum_combiner(field: str) -> Callable[[Record, List[Record]], Iterable[KeyValue]]:
    """Combiner that partially sums ``field`` (compatible with :func:`sum_reduce`)."""

    def combine_fn(key: Record, values: List[Record]) -> Iterable[KeyValue]:
        total = sum(float(v.get(field, 0.0) or 0.0) for v in values)
        yield key, {field: total}

    return combine_fn


def aggregate_reduce(
    aggregates: Mapping[str, Tuple[str, str]],
) -> Callable[[Record, List[Record]], Iterable[KeyValue]]:
    """Reducer computing several aggregates at once.

    ``aggregates`` maps output field -> (operation, input field) where the
    operation is one of ``sum``, ``max``, ``min``, ``avg``, ``count``.
    """

    def reduce_fn(key: Record, values: List[Record]) -> Iterable[KeyValue]:
        out: Record = {}
        for out_field, (operation, in_field) in aggregates.items():
            numbers = [
                float(v.get(in_field, 0.0) or 0.0)
                for v in values
                if isinstance(v.get(in_field), (int, float))
            ]
            if operation == "count":
                out[out_field] = float(len(values))
            elif not numbers:
                out[out_field] = 0.0
            elif operation == "sum":
                out[out_field] = sum(numbers)
            elif operation == "max":
                out[out_field] = max(numbers)
            elif operation == "min":
                out[out_field] = min(numbers)
            elif operation == "avg":
                out[out_field] = sum(numbers) / len(numbers)
            else:
                raise ValueError(f"unknown aggregate operation {operation!r}")
        yield key, out

    return reduce_fn


def collect_reduce(
    field: str,
    out_field: str,
    separator: str = "|",
) -> Callable[[Record, List[Record]], Iterable[KeyValue]]:
    """Reducer concatenating the (sorted) values of ``field`` into one string."""

    def reduce_fn(key: Record, values: List[Record]) -> Iterable[KeyValue]:
        items = sorted(str(v.get(field)) for v in values if v.get(field) is not None)
        yield key, {out_field: separator.join(items)}

    return reduce_fn


def join_reduce(
    left_side: str,
    right_side: str,
    output_fields: Sequence[str],
) -> Callable[[Record, List[Record]], Iterable[KeyValue]]:
    """Reducer producing the inner join of the two sides of a repartition join.

    Expects values produced by :func:`tagged_join_map`.  The output record
    merges the join key with the requested fields from both sides.
    """
    output_fields = tuple(output_fields)

    def reduce_fn(key: Record, values: List[Record]) -> Iterable[KeyValue]:
        left = [v for v in values if v.get("__side") == left_side]
        right = [v for v in values if v.get("__side") == right_side]
        for left_value in left:
            for right_value in right:
                merged = dict(key)
                merged.update({k: v for k, v in left_value.items() if k != "__side"})
                merged.update({k: v for k, v in right_value.items() if k != "__side"})
                out = {f: merged.get(f) for f in output_fields}
                yield dict(key), out

    return reduce_fn


def distinct_count_reduce(
    field: str,
    out_field: str,
) -> Callable[[Record, List[Record]], Iterable[KeyValue]]:
    """Reducer counting distinct values of ``field`` within the group."""

    def reduce_fn(key: Record, values: List[Record]) -> Iterable[KeyValue]:
        distinct = {str(v.get(field)) for v in values}
        yield key, {out_field: float(len(distinct))}

    return reduce_fn


def top_k_reduce(
    k: int,
    score_field: str,
    carry_fields: Sequence[str],
    descending: bool = True,
) -> Callable[[Record, List[Record]], Iterable[KeyValue]]:
    """Reducer emitting the top ``k`` values by ``score_field`` (global top-K
    when the job runs a single reduce task)."""
    carry_fields = tuple(carry_fields)

    def reduce_fn(key: Record, values: List[Record]) -> Iterable[KeyValue]:
        ranked = sorted(
            values,
            key=lambda v: float(v.get(score_field, 0.0) or 0.0),
            reverse=descending,
        )
        for position, value in enumerate(ranked[:k], start=1):
            out = {f: value.get(f) for f in carry_fields}
            out[score_field] = value.get(score_field)
            out["position"] = float(position)
            yield dict(key), out

    return reduce_fn


def sample_split_points_reduce(
    field: str,
    num_splits: int,
) -> Callable[[Record, List[Record]], Iterable[KeyValue]]:
    """Reducer deriving ``num_splits`` split points from the group's values.

    Used by the "sample and create partition split points" jobs of the Social
    Network Analysis and Log Analysis workflows.
    """

    def reduce_fn(key: Record, values: List[Record]) -> Iterable[KeyValue]:
        numbers = sorted(
            float(v.get(field, 0.0) or 0.0)
            for v in values
            if isinstance(v.get(field), (int, float))
        )
        if not numbers:
            return
        for index in range(1, num_splits + 1):
            position = min(len(numbers) - 1, int(len(numbers) * index / (num_splits + 1)))
            yield dict(key), {"split_index": float(index), "split_point": numbers[position]}

    return reduce_fn


def identity_reduce() -> Callable[[Record, List[Record]], Iterable[KeyValue]]:
    """Reducer that forwards every value of the group unchanged."""

    def reduce_fn(key: Record, values: List[Record]) -> Iterable[KeyValue]:
        for value in values:
            yield dict(key), dict(value)

    return reduce_fn
