"""Synthetic data generators for the evaluation workloads.

Each generator mirrors the data described in the paper's §7.1: a random
document corpus partitioned by document (TF-IDF), power-law paper/author
pairs (coauthorship), the uservisits/pageranks datasets of Pavlo et al. [17],
a power-law web adjacency list (PageRank), TPC-H-like lineitem/part tables
(Q17 and report generation), and small post-processing / user-log datasets.

All generators are deterministic given their seed, produce dict records, and
return :class:`~repro.dfs.dataset.Dataset` objects with the layouts
(partitioning/ordering) the paper relies on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.records import Record
from repro.common.rng import DeterministicRNG
from repro.dfs.dataset import Dataset
from repro.dfs.layout import DataLayout, PartitionScheme


def _scaled(count: int, scale: float) -> int:
    return max(8, int(count * scale))


# ---------------------------------------------------------------------------
# Information retrieval (TF-IDF)
# ---------------------------------------------------------------------------


def generate_document_corpus(scale: float = 1.0, seed: int = 42) -> Dataset:
    """Word-occurrence records ``{doc, word}`` partitioned (and sorted) on doc."""
    rng = DeterministicRNG(seed)
    num_docs = _scaled(60, scale)
    words_per_doc = _scaled(40, scale ** 0.5)
    vocabulary = [f"w{index:04d}" for index in range(_scaled(300, scale))]
    records: List[Record] = []
    for doc_id in range(num_docs):
        doc = f"doc{doc_id:05d}"
        for _ in range(words_per_doc):
            word = vocabulary[rng.zipf(len(vocabulary), alpha=1.2) - 1]
            records.append({"doc": doc, "word": word})
    layout = DataLayout(
        partitioning=PartitionScheme.hashed("doc"),
        sort_fields=("doc",),
    )
    return Dataset("corpus", records=records, layout=layout)


# ---------------------------------------------------------------------------
# Social network analysis (coauthors)
# ---------------------------------------------------------------------------


def generate_paper_authors(scale: float = 1.0, seed: int = 42) -> Dataset:
    """``{paper, author}`` pairs from a power-law author popularity distribution."""
    rng = DeterministicRNG(seed)
    num_papers = _scaled(400, scale)
    num_authors = _scaled(120, scale)
    records: List[Record] = []
    for paper_id in range(num_papers):
        paper = f"p{paper_id:06d}"
        coauthors = rng.randint(2, 5)
        chosen = set()
        while len(chosen) < coauthors:
            chosen.add(rng.zipf(num_authors, alpha=1.3))
        for author_index in sorted(chosen):
            records.append({"paper": paper, "author": f"a{author_index:05d}"})
    layout = DataLayout(
        partitioning=PartitionScheme.hashed("paper"),
        sort_fields=("paper",),
    )
    return Dataset("paper_authors", records=records, layout=layout)


# ---------------------------------------------------------------------------
# Log analysis (Pavlo et al. join task)
# ---------------------------------------------------------------------------


def generate_uservisits(scale: float = 1.0, seed: int = 42, num_days: int = 365) -> Dataset:
    """``{ip, url, date, revenue}`` range-partitioned on the visit date."""
    rng = DeterministicRNG(seed)
    num_visits = _scaled(4_000, scale)
    num_urls = _scaled(300, scale)
    records: List[Record] = []
    for _ in range(num_visits):
        records.append(
            {
                "ip": f"10.0.{rng.randint(0, 255)}.{rng.randint(0, 255)}",
                "url": f"url{rng.zipf(num_urls, alpha=1.1):05d}",
                "date": float(rng.randint(0, num_days - 1)),
                "revenue": round(rng.uniform(0.01, 10.0), 4),
            }
        )
    split_points = [float(day) for day in range(30, num_days, 30)]
    layout = DataLayout(
        partitioning=PartitionScheme.ranged("date", split_points),
        sort_fields=("date",),
    )
    return Dataset("uservisits", records=records, layout=layout)


def generate_pageranks(scale: float = 1.0, seed: int = 43) -> Dataset:
    """``{url, rank}`` records, one per URL."""
    rng = DeterministicRNG(seed)
    num_urls = _scaled(300, scale)
    records = [
        {"url": f"url{index:05d}", "rank": rng.randint(1, 1_000)}
        for index in range(1, num_urls + 1)
    ]
    layout = DataLayout(partitioning=PartitionScheme.hashed("url"))
    return Dataset("pageranks", records=records, layout=layout)


# ---------------------------------------------------------------------------
# Web graph analysis (PageRank)
# ---------------------------------------------------------------------------


def generate_adjacency_list(scale: float = 1.0, seed: int = 42) -> Dataset:
    """``{src, dst}`` edges with power-law out-degrees."""
    rng = DeterministicRNG(seed)
    num_pages = _scaled(250, scale)
    records: List[Record] = []
    for src in range(1, num_pages + 1):
        out_degree = min(num_pages - 1, rng.zipf(30, alpha=1.4) + 1)
        targets = set()
        while len(targets) < out_degree:
            dst = rng.randint(1, num_pages)
            if dst != src:
                targets.add(dst)
        for dst in sorted(targets):
            records.append({"src": f"page{src:05d}", "dst": f"page{dst:05d}"})
    layout = DataLayout(partitioning=PartitionScheme.hashed("src"))
    return Dataset("adjacency", records=records, layout=layout)


def generate_initial_ranks(scale: float = 1.0, seed: int = 44) -> Dataset:
    """``{src, rank}`` initial PageRank values (uniform)."""
    num_pages = _scaled(250, scale)
    records = [
        {"src": f"page{index:05d}", "rank": 1.0 / num_pages} for index in range(1, num_pages + 1)
    ]
    layout = DataLayout(partitioning=PartitionScheme.hashed("src"))
    return Dataset("ranks", records=records, layout=layout)


# ---------------------------------------------------------------------------
# TPC-H-like tables (business analytics query, business report generation)
# ---------------------------------------------------------------------------


def generate_lineitem(scale: float = 1.0, seed: int = 42, name: str = "lineitem") -> Dataset:
    """``{orderid, partid, suppid, quantity, price}`` partitioned on partid."""
    rng = DeterministicRNG(seed)
    num_lineitems = _scaled(5_000, scale)
    num_orders = _scaled(1_200, scale)
    num_parts = _scaled(200, scale)
    num_suppliers = _scaled(50, scale)
    records: List[Record] = []
    for _ in range(num_lineitems):
        records.append(
            {
                "orderid": float(rng.randint(1, num_orders)),
                "partid": float(rng.randint(1, num_parts)),
                "suppid": float(rng.randint(1, num_suppliers)),
                "quantity": float(rng.randint(1, 50)),
                "price": round(rng.uniform(1.0, 1_000.0), 2),
            }
        )
    layout = DataLayout(partitioning=PartitionScheme.hashed("partid"))
    return Dataset(name, records=records, layout=layout)


def generate_part(scale: float = 1.0, seed: int = 45) -> Dataset:
    """``{partid, brand, container, size}`` partitioned on partid."""
    rng = DeterministicRNG(seed)
    num_parts = _scaled(200, scale)
    brands = [f"Brand#{index}" for index in range(1, 6)]
    containers = ["JUMBO BOX", "MED BAG", "SM CASE", "LG DRUM"]
    records: List[Record] = []
    for part_id in range(1, num_parts + 1):
        records.append(
            {
                "partid": float(part_id),
                "brand": rng.choice(brands),
                "container": rng.choice(containers),
                "size": float(rng.randint(1, 50)),
            }
        )
    layout = DataLayout(partitioning=PartitionScheme.hashed("partid"))
    return Dataset("part", records=records, layout=layout)


# ---------------------------------------------------------------------------
# Post-processing jobs (small dataset)
# ---------------------------------------------------------------------------


def generate_metrics(scale: float = 1.0, seed: int = 42) -> Dataset:
    """Small ``{groupid, x, y}`` dataset for the covariance/correlation jobs."""
    rng = DeterministicRNG(seed)
    num_records = _scaled(800, scale)
    num_groups = _scaled(40, scale)
    records: List[Record] = []
    for _ in range(num_records):
        x = rng.uniform(0.0, 100.0)
        records.append(
            {
                "groupid": float(rng.randint(1, num_groups)),
                "x": round(x, 4),
                "y": round(x * 0.7 + rng.gauss(0.0, 10.0), 4),
            }
        )
    layout = DataLayout(partitioning=PartitionScheme.hashed("groupid"))
    return Dataset("metrics", records=records, layout=layout)


# ---------------------------------------------------------------------------
# User-defined logical splits (web portal logs)
# ---------------------------------------------------------------------------


def generate_portal_logs(scale: float = 1.0, seed: int = 42) -> Dataset:
    """``{userid, age, pageid, duration}`` web-portal access logs."""
    rng = DeterministicRNG(seed)
    num_events = _scaled(4_000, scale)
    num_users = _scaled(500, scale)
    ages: Dict[int, float] = {}
    records: List[Record] = []
    for _ in range(num_events):
        user = rng.randint(1, num_users)
        if user not in ages:
            ages[user] = float(rng.randint(10, 79))
        records.append(
            {
                "userid": float(user),
                "age": ages[user],
                "pageid": float(rng.zipf(200, alpha=1.2)),
                "duration": round(rng.uniform(1.0, 600.0), 2),
            }
        )
    layout = DataLayout(partitioning=PartitionScheme.hashed("userid"))
    return Dataset("portal_logs", records=records, layout=layout)
