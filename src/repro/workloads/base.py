"""The workload bundle shared by every evaluation workflow builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.plan import Plan
from repro.dfs.dataset import Dataset
from repro.workflow.graph import Workflow

GB = 1024.0 ** 3


@dataclass
class Workload:
    """An evaluation workflow plus its generated inputs and metadata."""

    name: str
    abbreviation: str
    workflow: Workflow
    base_datasets: Dict[str, Dataset] = field(default_factory=dict)
    paper_dataset_gb: float = 0.0
    description: str = ""

    @property
    def plan(self) -> Plan:
        """A fresh plan wrapping (a copy of) the workflow, ready for optimization."""
        return Plan(self.workflow.copy())

    @property
    def num_jobs(self) -> int:
        """Number of jobs in the unoptimized workflow."""
        return self.workflow.num_jobs

    @property
    def logical_dataset_gb(self) -> float:
        """Scaled (logical) size of all base datasets, in GB."""
        return sum(d.logical_bytes for d in self.base_datasets.values()) / GB

    def attach_datasets(self) -> None:
        """Attach the generated datasets to the workflow's dataset vertices."""
        for name, dataset in self.base_datasets.items():
            if self.workflow.has_dataset(name):
                self.workflow.add_dataset(name, dataset=dataset)


def attach_dataset_annotations(workflow: Workflow, datasets: Dict[str, Dataset]) -> None:
    """Attach materialized data and dataset annotations to base dataset vertices.

    Workflow generators are responsible for conveying known physical-design
    information through dataset annotations (paper §2.2); the workload
    builders derive them directly from the generated datasets' layouts.
    """
    from repro.profiler.profiler import Profiler

    profiler = Profiler()
    for name, dataset in datasets.items():
        if workflow.has_dataset(name):
            workflow.add_dataset(name, dataset=dataset, annotation=profiler.annotate_dataset(dataset))


def apply_paper_scale(datasets: Dict[str, Dataset], paper_gb_by_name: Dict[str, float]) -> None:
    """Set each dataset's ``scale_factor`` so its logical size matches the paper.

    The generated data is MB-scale; the scale factor is the ratio between the
    paper's dataset size and the generated raw bytes, which the cost model
    uses to put simulated runtimes in the paper's regime.
    """
    for name, dataset in datasets.items():
        paper_gb = paper_gb_by_name.get(name, 0.0)
        if paper_gb <= 0.0 or dataset.raw_bytes <= 0:
            continue
        dataset.scale_factor = (paper_gb * GB) / dataset.raw_bytes
