"""Business Analytics Query workload (BA): TPC-H Query 17 (§7.1).

Four jobs over TPC-H-like ``lineitem`` and ``part`` tables, both partitioned
on ``partid``:

* **BA_J1** — scan and process the lineitem table, organising it by part;
* **BA_J2** — restrict to the brand/container-filtered parts (a broadcast
  filter standing in for the dimension-table join) and compute the average
  quantity per part;
* **BA_J3** — join the processed lineitems with the per-part averages and
  keep lineitems whose quantity is below 20% of the average;
* **BA_J4** — total price of the kept lineitems divided by 7 (single reduce).

BA_J2 groups on ``{partid}`` — a subset of BA_J1's key — so intra-job
vertical packing applies to it; BA_J2 and BA_J3 both read BA_J1's output, so
horizontal packing applies as well.  This is the workload where both
transformation groups contribute (paper §7.2).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.common.records import KeyValue, Record
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.workflow.annotations import JobAnnotations, SchemaAnnotation
from repro.workflow.graph import Workflow
from repro.workloads import common, datagen
from repro.workloads.base import Workload, apply_paper_scale, attach_dataset_annotations


def _is_selected_part(record: Record) -> bool:
    # Stand-in for the Brand#.. / container predicate on the part dimension
    # table (selects ~20% of parts deterministically).
    partid = float(record.get("partid", 0.0) or 0.0)
    return int(partid) % 5 == 0


def _avgqty_join_map(key: Record, value: Record) -> Iterable[KeyValue]:
    if "price" in value:
        yield {"partid": value.get("partid")}, {
            "__side": "items",
            "quantity": value.get("quantity"),
            "price": value.get("price"),
        }
    elif "avgqty" in value:
        yield {"partid": value.get("partid")}, {"__side": "avg", "avgqty": value.get("avgqty")}


def _small_quantity_reduce(key: Record, values: List[Record]) -> Iterable[KeyValue]:
    averages = [float(v.get("avgqty", 0.0) or 0.0) for v in values if v.get("__side") == "avg"]
    if not averages:
        return
    threshold = 0.2 * averages[0]
    for value in values:
        if value.get("__side") != "items":
            continue
        if float(value.get("quantity", 0.0) or 0.0) < threshold:
            yield dict(key), {"price": value.get("price")}


def _total_map(key: Record, value: Record) -> Iterable[KeyValue]:
    yield {"g": 0.0}, {"price": value.get("price")}


def _yearly_loss_reduce(key: Record, values: List[Record]) -> Iterable[KeyValue]:
    total = sum(float(v.get("price", 0.0) or 0.0) for v in values)
    yield dict(key), {"avg_yearly_loss": round(total / 7.0, 2)}


def build_business_analytics(scale: float = 1.0, seed: int = 42) -> Workload:
    """Build the BA (TPC-H Q17) workload."""
    lineitem = datagen.generate_lineitem(scale=scale, seed=seed)
    part = datagen.generate_part(scale=scale, seed=seed + 3)
    apply_paper_scale({"lineitem": lineitem, "part": part}, {"lineitem": 500.0, "part": 50.0})

    workflow = Workflow(name="business_analytics")

    j1 = simple_job(
        name="BA_J1",
        input_dataset="lineitem",
        output_dataset="ba_items",
        map_fn=common.key_by(["partid"], value_fields=["orderid", "partid", "quantity", "price"]),
        reduce_fn=common.identity_reduce(),
        group_fields=("partid",),
        map_cpu_cost=2.0,
        reduce_cpu_cost=2.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    workflow.add_job(
        j1,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["partid"], v1=["orderid", "partid", "suppid", "quantity", "price"],
                k2=["partid"], v2=["orderid", "quantity", "price"],
                k3=["partid"], v3=["orderid", "quantity", "price"],
            )
        ),
    )

    j2 = simple_job(
        name="BA_J2",
        input_dataset="ba_items",
        output_dataset="ba_avgqty",
        map_fn=common.key_by(["partid"], value_fields=["quantity"], filter_fn=_is_selected_part),
        reduce_fn=common.aggregate_reduce({"avgqty": ("avg", "quantity")}),
        group_fields=("partid",),
        map_cpu_cost=2.0,
        reduce_cpu_cost=3.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    workflow.add_job(
        j2,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["partid"], v1=["orderid", "partid", "quantity", "price"],
                k2=["partid"], v2=["quantity"],
                k3=["partid"], v3=["avgqty"],
            )
        ),
    )

    j3 = simple_job(
        name="BA_J3",
        input_dataset="ba_items",
        output_dataset="ba_filtered",
        map_fn=_avgqty_join_map,
        reduce_fn=_small_quantity_reduce,
        group_fields=("partid",),
        map_cpu_cost=3.0,
        reduce_cpu_cost=4.0,
        config=JobConfig(num_reduce_tasks=8),
    )
    j3.pipelines[0].input_datasets = ("ba_items", "ba_avgqty")
    workflow.add_job(
        j3,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["partid"], v1=["orderid", "quantity", "price", "avgqty"],
                k2=["partid"], v2=["quantity", "price", "avgqty"],
                k3=["partid"], v3=["price"],
            )
        ),
    )

    j4 = simple_job(
        name="BA_J4",
        input_dataset="ba_filtered",
        output_dataset="ba_total",
        map_fn=_total_map,
        reduce_fn=_yearly_loss_reduce,
        group_fields=("g",),
        combiner=common.sum_combiner("price"),
        map_cpu_cost=1.0,
        reduce_cpu_cost=1.0,
        config=JobConfig(num_reduce_tasks=1, forced_single_reduce=True),
    )
    workflow.add_job(
        j4,
        JobAnnotations(
            schema=SchemaAnnotation.of(
                k1=["partid"], v1=["partid", "price"],
                k2=["g"], v2=["price"],
                k3=["g"], v3=["avg_yearly_loss"],
            )
        ),
    )

    datasets = {"lineitem": lineitem, "part": part}
    attach_dataset_annotations(workflow, datasets)
    # The part table participates through the broadcast filter, so it is kept
    # as a workflow input for completeness even though no job scans it.
    workflow.add_dataset("part", dataset=part)
    return Workload(
        name="Business Analytics Query",
        abbreviation="BA",
        workflow=workflow,
        base_datasets=datasets,
        paper_dataset_gb=550.0,
        description="TPC-H Query 17: average-quantity threshold join over lineitem and part.",
    )
