"""Pytest root configuration.

Makes the ``repro`` package importable straight from the source tree so the
test and benchmark suites run even when the package has not been installed
(e.g. on machines without the ``wheel`` package, where ``pip install -e .``
cannot build editable metadata; ``python setup.py develop`` also works).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "equivalence: differential-execution equivalence sweeps (select with "
        "`-m equivalence`; scale the random-workflow count with the "
        "EQUIVALENCE_SEEDS environment variable)",
    )
