"""Vertical + horizontal packing on the running example (Business Report).

What it demonstrates
    How the two transformation groups interact on the paper's running
    example, a seven-job report-generation workflow:

    * the Vertical group turns 7 jobs into 5 (the per-order rollups are
      packed into the group-by jobs that feed them);
    * the Horizontal group then packs the jobs that share the cleaned
      lineitem scan and the two small distinct-count jobs;
    * Stubby (both groups, cost-based) picks the combination with the
      lowest estimated runtime and beats the Pig-style Baseline.

What output to expect
    A per-variant job count + transformation listing, then a speedup table
    over the Baseline where Stubby reaches the fewest jobs (7 → 4) and the
    best speedup, with ``equivalent=True`` on every row::

        Baseline     1.00x  (6 jobs, 4947s, equivalent=True)
        Vertical     1.77x  (5 jobs, 2796s, equivalent=True)
        Horizontal   1.66x  (6 jobs, 2984s, equivalent=True)
        Stubby       1.87x  (4 jobs, 2651s, equivalent=True)

Run with::

    PYTHONPATH=src python examples/business_report_packing.py
"""

from repro import ClusterSpec, StubbyOptimizer
from repro.baselines import PigBaselineOptimizer
from repro.experiments import ExperimentHarness


def main() -> None:
    cluster = ClusterSpec.paper_cluster()
    harness = ExperimentHarness(cluster=cluster, scale=0.25)
    workload = harness.prepare_workload("BR")
    print(f"{workload.name}: {workload.num_jobs} jobs, "
          f"{workload.logical_dataset_gb:.0f} GB logical input\n")

    for name in ("Baseline", "Vertical", "Horizontal", "Stubby"):
        optimizer = harness.make_optimizer(name)
        result = optimizer.optimize(workload.plan)
        structural = [t for t in result.transformations_applied if t != "configuration"]
        print(f"{name:<11} -> {result.num_jobs} jobs; structural transformations: "
              f"{structural if structural else 'none'}")

    comparison = harness.compare(
        "BR", optimizers=("Baseline", "Vertical", "Horizontal", "Stubby"), workload=workload
    )
    print("\nSpeedup over the Baseline (simulated cluster runtime):")
    for name in ("Baseline", "Vertical", "Horizontal", "Stubby"):
        run = comparison.runs[name]
        print(f"  {name:<11} {comparison.speedup(name):5.2f}x  "
              f"({run.num_jobs} jobs, {run.actual_s:.0f}s, equivalent={run.output_equivalent})")


if __name__ == "__main__":
    main()
