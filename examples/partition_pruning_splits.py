"""Partition-function transformation and partition pruning (US workload).

What it demonstrates
    The User-defined Logical Splits workflow has one producer job and two
    consumers that each analyse a different age group of the producer's
    output.  Because the consumers expose their predicates through filter
    annotations and the filtered field is part of the producer's map-output
    key, Stubby's partition-function transformation switches the producer
    to range partitioning on ``age`` and lets each consumer read only the
    partitions overlapping its filter — trading nothing for a large
    reduction in intermediate data read.

What output to expect
    The producer's partition function after optimization (``kind: range``
    on ``('age',)`` with its split points), the disjoint partition index
    sets each consumer reads, and a closing comparison in which Stubby's
    plan reads about half the consumer-side records and runs several times
    faster than the unoptimized plan::

        US_J2 reads partitions: (1, 2)
        US_J3 reads partitions: (3, 4, 5, 6)
        unoptimized  runtime    4289s, records read by the consumer jobs: 300
        Stubby       runtime     553s, records read by the consumer jobs: 150

Run with::

    PYTHONPATH=src python examples/partition_pruning_splits.py
"""

from repro import ClusterSpec, StubbyOptimizer
from repro.profiler import Profiler
from repro.whatif import ActualCostModel
from repro.workflow.executor import WorkflowExecutor
from repro.workloads import build_workload


def main() -> None:
    cluster = ClusterSpec.paper_cluster()
    workload = build_workload("US", scale=0.3)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)

    result = StubbyOptimizer(cluster).optimize(workload.plan)
    producer = result.plan.job("US_J1").job
    print("Producer partition function after optimization:")
    print(f"  kind         : {producer.effective_partitioner.kind}")
    print(f"  fields       : {producer.effective_partitioner.fields}")
    print(f"  split points : {producer.effective_partitioner.split_points}")

    for consumer_name in ("US_J2", "US_J3"):
        if not result.plan.workflow.has_job(consumer_name):
            continue
        pipeline = result.plan.job(consumer_name).job.pipelines[0]
        allowed = pipeline.allowed_partitions("us_sessions")
        print(f"{consumer_name} reads partitions: {allowed if allowed is not None else 'all'}")

    executor = WorkflowExecutor()
    cost_model = ActualCostModel(cluster)
    for label, workflow in (("unoptimized", workload.workflow.copy()), ("Stubby", result.plan.workflow)):
        execution, filesystem = executor.execute(workflow, base_datasets=workload.base_datasets)
        cost = cost_model.workflow_cost(workflow, execution, filesystem)
        consumer_records = sum(
            execution.counters_for(name).map_input_records
            for name in execution.job_results
            if name in ("US_J2", "US_J3")
        )
        print(f"{label:<12} runtime {cost.total_s:7.0f}s, "
              f"records read by the consumer jobs: {consumer_records}")


if __name__ == "__main__":
    main()
