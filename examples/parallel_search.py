"""Parallel unit search: backend selection and cost-service stats readout.

What it demonstrates
    Running the same optimization on the three execution backends
    (``serial``, ``thread:4``, ``process:4`` — see ``docs/search.md``),
    proving that their decisions are bit-identical (same optimized plan,
    same estimated cost, same per-unit choices), and reading the
    cost-service stats the search attributes per candidate, per unit, and
    per run.  Also shows the two selection mechanisms: the ``backend=``
    argument and the ``STUBBY_SEARCH_BACKEND`` environment variable.

What output to expect
    One line per backend with identical estimated costs and plan
    signatures, e.g.::

        serial:1     wall 0.13s  estimated 1224s  plan sha 5a6e…  queries 465
        thread:4     wall 0.15s  estimated 1224s  plan sha 5a6e…  queries 465
        process:4    wall 0.52s  estimated 1224s  plan sha 5a6e…  queries 465
        decisions identical across backends: True

    followed by a per-unit attribution table and the run-level stats dict.
    Wall-clock differences depend on your core count: on a single-CPU
    machine the process backend is *slower* (fork + pipe overhead with no
    spare core); with four or more cores it pulls ahead once per-unit
    costing work dominates — the regime ``BENCH_parallel_search.json``
    benchmarks.

Run with::

    PYTHONPATH=src python examples/parallel_search.py

    # or pick the backend for any run from the environment:
    STUBBY_SEARCH_BACKEND=process:4 PYTHONPATH=src python examples/quickstart.py
"""

import hashlib
import time

from repro import ClusterSpec, StubbyOptimizer
from repro.profiler import Profiler
from repro.workloads import build_workload

BACKENDS = ("serial", "thread:4", "process:4")


def plan_sha(plan) -> str:
    """Short, printable digest of a plan's structural signature."""
    return hashlib.sha256(repr(plan.signature()).encode()).hexdigest()[:8]


def main() -> None:
    # 1. Build and profile the workload once; every backend optimizes the
    #    same annotated plan.
    workload = build_workload("IR", scale=0.3)
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)
    cluster = ClusterSpec.paper_cluster()
    print(f"Workload: {workload.name} ({workload.num_jobs} jobs)\n")

    # 2. Optimize on each backend.  ``backend=`` accepts a spec string, an
    #    ExecutionBackend instance, or None (which reads the
    #    STUBBY_SEARCH_BACKEND environment variable, defaulting to serial).
    results = {}
    for spec in BACKENDS:
        optimizer = StubbyOptimizer(cluster, seed=17, backend=spec)
        started = time.perf_counter()
        result = optimizer.optimize(workload.plan)
        wall = time.perf_counter() - started
        results[spec] = result
        print(
            f"{result.search_backend:<12} wall {wall:5.2f}s  "
            f"estimated {result.estimated_cost_s:6.0f}s  "
            f"plan sha {plan_sha(result.plan)}  "
            f"queries {result.cost_stats.queries}"
        )

    # 3. The determinism contract: every backend made the same decisions.
    reference = results["serial"]
    identical = all(
        r.plan.signature() == reference.plan.signature()
        and r.estimated_cost_s == reference.estimated_cost_s
        for r in results.values()
    )
    print(f"decisions identical across backends: {identical}\n")

    # 4. Stats attribution: the search records exact per-candidate cost
    #    deltas, so unit- and candidate-level numbers add up under any
    #    backend (here: the process run).
    result = results["process:4"]
    print("unit (producers)                  phase       cands  queries  hits  recosted")
    for report in result.unit_reports:
        producers = ",".join(report.unit.producers)
        print(
            f"{producers[:32]:<33} {report.phase:<11} {len(report.subplans):>5} "
            f"{report.cost_queries:>8} {report.job_cache_hits:>5} {report.jobs_recosted:>9}"
        )
    print("\nrun-level cost-service stats:")
    for key, value in result.cost_stats.as_dict().items():
        print(f"  {key:<26} {value:.3f}" if isinstance(value, float) else f"  {key:<26} {value}")


if __name__ == "__main__":
    main()
