"""Bring your own workflow: the program-based interface.

What it demonstrates
    Stubby optimizes *any* annotated MapReduce workflow, regardless of how
    it was generated (the paper's "interface spectrum").  This example
    plays the role of a workflow generator: it writes plain map/reduce
    callables for a two-job sessionization pipeline, wires them into a
    workflow with ``simple_job``, attaches schema annotations describing
    the key compositions, and hands the plan to Stubby.  The optimizer
    packs the second job into the first (its grouping key flows unchanged)
    and tunes the configurations.

What output to expect
    A ``Jobs before/after: 2 -> 1`` line, the applied-transformation list
    (intra- then inter-job vertical packing plus configuration changes),
    and the final one-job plan description reading ``clicks`` and writing
    ``user_sessions``.

Run with::

    PYTHONPATH=src python examples/custom_workflow.py
"""

from repro import ClusterSpec, StubbyOptimizer
from repro.common.rng import DeterministicRNG
from repro.dfs.dataset import Dataset
from repro.dfs.layout import DataLayout, PartitionScheme
from repro.mapreduce.config import JobConfig
from repro.mapreduce.job import simple_job
from repro.profiler import Profiler
from repro.workflow.annotations import JobAnnotations, SchemaAnnotation
from repro.workflow.graph import Workflow


def click_map(key, value):
    yield {"user": value["user"], "page": value["page"]}, {"dwell": value["dwell"]}


def click_reduce(key, values):
    yield key, {"visits": float(len(values)), "dwell": sum(v["dwell"] for v in values)}


def session_map(key, value):
    yield {"user": value["user"]}, {"visits": value["visits"], "dwell": value["dwell"]}


def session_reduce(key, values):
    yield key, {
        "pages": float(len(values)),
        "total_dwell": sum(v["dwell"] for v in values),
        "total_visits": sum(v["visits"] for v in values),
    }


def generate_clicks(n=3_000, seed=1):
    rng = DeterministicRNG(seed)
    return [
        {"user": f"u{rng.randint(1, 200):04d}", "page": f"p{rng.zipf(80):03d}", "dwell": rng.uniform(1, 300)}
        for _ in range(n)
    ]


def main() -> None:
    clicks = Dataset(
        "clicks",
        records=generate_clicks(),
        layout=DataLayout(partitioning=PartitionScheme.hashed("user")),
        scale_factor=5e5,  # pretend this is a few hundred GB of click logs
    )

    workflow = Workflow("sessionization")
    per_page = simple_job(
        "per_page_stats", "clicks", "page_stats", click_map, click_reduce,
        group_fields=("user", "page"), config=JobConfig(num_reduce_tasks=16),
    )
    workflow.add_job(per_page, JobAnnotations(schema=SchemaAnnotation.of(
        k1=["user"], v1=["user", "page", "dwell"],
        k2=["user", "page"], v2=["dwell"],
        k3=["user", "page"], v3=["visits", "dwell"],
    )))
    per_user = simple_job(
        "per_user_sessions", "page_stats", "user_sessions", session_map, session_reduce,
        group_fields=("user",), config=JobConfig(num_reduce_tasks=16),
    )
    workflow.add_job(per_user, JobAnnotations(schema=SchemaAnnotation.of(
        k1=["user", "page"], v1=["user", "page", "visits", "dwell"],
        k2=["user"], v2=["visits", "dwell"],
        k3=["user"], v3=["pages", "total_dwell", "total_visits"],
    )))

    Profiler().profile_workflow(workflow, {"clicks": clicks})

    result = StubbyOptimizer(ClusterSpec.paper_cluster()).optimize(workflow)
    print(f"Jobs before/after: 2 -> {result.num_jobs}")
    print("Transformations applied:")
    for applied in result.plan.history:
        print(f"  - {applied}")
    print(result.plan.describe())


if __name__ == "__main__":
    main()
