"""Quickstart: optimize a MapReduce workflow with Stubby.

What it demonstrates
    The end-to-end optimizer loop on the paper's Information Retrieval
    (TF-IDF) workflow: build the workload, profile it to produce profile
    annotations, optimize with Stubby, then execute both the original and
    the optimized plan and compare their simulated cluster runtimes —
    verifying on the way that both plans produce identical results.

What output to expect
    The applied transformation list (inter-job vertical packing of IR_J2
    into IR_J3 plus configuration changes), a 3 → 2 job reduction, and a
    runtime comparison ending in a multi-x speedup with
    ``Outputs identical : True``::

        Unoptimized runtime :     9831 s
        Optimized runtime   :     1303 s
        Speedup             :     7.55 x
        Outputs identical   : True

    (Exact numbers vary with ``scale`` and the optimizer seed.)

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from repro import ClusterSpec, StubbyOptimizer
from repro.common.records import records_equal
from repro.profiler import Profiler
from repro.whatif import ActualCostModel
from repro.workflow.executor import WorkflowExecutor
from repro.workloads import build_workload


def main() -> None:
    # 1. Build the workload: an annotated workflow plus generated input data.
    workload = build_workload("IR", scale=0.3)
    print(f"Workload: {workload.name} ({workload.num_jobs} jobs, "
          f"{workload.logical_dataset_gb:.0f} GB logical input)")

    # 2. Profile the unoptimized workflow (Starfish-style profile annotations).
    Profiler().profile_workflow(workload.workflow, workload.base_datasets)

    # 3. Optimize with Stubby on the paper's 51-node cluster.
    cluster = ClusterSpec.paper_cluster()
    optimizer = StubbyOptimizer(cluster)
    result = optimizer.optimize(workload.plan)
    print(f"\nStubby finished in {result.optimization_time_s:.2f}s and applied:")
    for applied in result.plan.history:
        print(f"  - {applied}")
    print(f"Optimized plan has {result.num_jobs} jobs "
          f"(estimated runtime {result.estimated_cost_s:.0f}s)")

    # 4. Execute both plans and compare their simulated cluster runtimes.
    executor = WorkflowExecutor()
    cost_model = ActualCostModel(cluster)

    original_exec, original_fs = executor.execute(
        workload.workflow.copy(), base_datasets=workload.base_datasets
    )
    original_cost = cost_model.workflow_cost(workload.workflow, original_exec, original_fs)

    optimized_exec, optimized_fs = executor.execute(
        result.plan.workflow, base_datasets=workload.base_datasets
    )
    optimized_cost = cost_model.workflow_cost(result.plan.workflow, optimized_exec, optimized_fs)

    print(f"\nUnoptimized runtime : {original_cost.total_s:8.0f} s")
    print(f"Optimized runtime   : {optimized_cost.total_s:8.0f} s")
    print(f"Speedup             : {original_cost.total_s / optimized_cost.total_s:8.2f} x")

    # 5. The transformed plan is equivalent: same final TF-IDF output.
    same = records_equal(
        original_fs.get("ir_tfidf").all_records(),
        optimized_fs.get("ir_tfidf").all_records(),
    )
    print(f"Outputs identical   : {same}")


if __name__ == "__main__":
    main()
