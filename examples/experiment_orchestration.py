"""Experiment orchestration: parallel cells, shared costing, warm starts.

What it demonstrates
    Running a whole experiment — every (workload × optimizer) cell — through
    ``ExperimentHarness.run`` (see ``docs/experiments.md``): fanning the
    cells out on an experiment-level execution backend, reading the
    cross-cell cache reuse the shared ``CostService`` makes possible
    (``OptimizerRun.cross_unit_hits``), persisting the cost cache to disk,
    and warm-starting a second run from it — with bit-identical results
    every time.  Also shows the selection mechanisms: the ``backend=``
    argument / ``STUBBY_EXPERIMENT_BACKEND`` for the cell fan-out and
    ``cache_path=`` / ``STUBBY_COST_CACHE`` for persistence.

What output to expect
    A per-cell table of the cold run, then the cold-vs-warm comparison,
    e.g.::

        cell                        jobs  actual_s  queries  hit_rate  cross_hits
        PJ/Baseline                    2     278.2        1     0.000           0
        PJ/Stubby                      3      89.9      461     0.081         379
        ...

        cold run:  hit rate 0.46, 13421 cross-cell hits, cells 2.1s
        warm run:  hit rate 1.00, 24064 cross-cell hits, cells 1.7s
                   (13818 entries loaded from experiment.cache)
        decisions identical (cold == warm == parallel): True

    The first cell of the cold run shows zero cross-cell hits (nothing to
    reap yet); later variants of the same workload reuse their neighbours'
    signatures heavily; in the warm run even the first cell hits the
    persisted entries.  Wall-clock differences depend on your core count:
    on a single-CPU machine the process backend is slower (fork overhead,
    no spare core) — with four or more cores the cell phase pulls ahead,
    the regime ``BENCH_experiment_orchestration.json`` benchmarks.

Run with::

    PYTHONPATH=src python examples/experiment_orchestration.py

    # or pick backend and cache from the environment:
    STUBBY_EXPERIMENT_BACKEND=process:4 STUBBY_COST_CACHE=stubby.cache \\
        PYTHONPATH=src python examples/experiment_orchestration.py
"""

import os
import tempfile

from repro.experiments import ExperimentHarness

WORKLOADS = ("PJ", "BR")
OPTIMIZERS = ("Baseline", "Stubby", "Vertical")


def print_cells(result) -> None:
    """Per-cell readout: results plus the exact per-cell cost stats."""
    print("cell                        jobs  actual_s  queries  hit_rate  cross_hits")
    for abbr, comparison in result.comparisons.items():
        for name, run in comparison.runs.items():
            print(
                f"{abbr + '/' + name:<27} {run.num_jobs:>4} {run.actual_s:>9.1f} "
                f"{run.whatif_queries:>8} {run.cache_hit_rate:>9.3f} "
                f"{run.cross_unit_hits:>11}"
            )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cache_path = os.path.join(tmp, "experiment.cache")

        # 1. Cold run.  All cells share the harness's CostService (so the
        #    Stubby/Vertical cells reap the Baseline cell's signatures), and
        #    cache_path= persists the store when the run finishes.  backend=
        #    accepts a spec string, an ExecutionBackend, or None (which
        #    reads STUBBY_EXPERIMENT_BACKEND, defaulting to serial).
        harness = ExperimentHarness(scale=0.15, cache_path=cache_path)
        cold = harness.run(workloads=WORKLOADS, optimizers=OPTIMIZERS)
        print(f"cold run on {cold.backend}")
        print_cells(cold)

        # 2. Warm run.  A *fresh* harness (imagine a fresh process) loads
        #    the persisted cache: same decisions, strictly higher hit rate.
        warm_harness = ExperimentHarness(scale=0.15, cache_path=cache_path)
        warm = warm_harness.run(workloads=WORKLOADS, optimizers=OPTIMIZERS)
        print(f"\ncold run:  hit rate {cold.cost_stats.cache_hit_rate:.2f}, "
              f"{cold.cross_unit_hits} cross-cell hits, cells {cold.cells_s:.1f}s")
        print(f"warm run:  hit rate {warm.cost_stats.cache_hit_rate:.2f}, "
              f"{warm.cross_unit_hits} cross-cell hits, cells {warm.cells_s:.1f}s")
        print(f"           ({warm.warm_start_entries} entries loaded from "
              f"{os.path.basename(cache_path)})")

        # 3. The identity contract: backends and cache warmth change where
        #    and how fast cells run — never what they report.
        parallel = ExperimentHarness(scale=0.15).run(
            workloads=WORKLOADS, optimizers=OPTIMIZERS, backend="process:2"
        )
        identical = (
            cold.decision_fingerprint()
            == warm.decision_fingerprint()
            == parallel.decision_fingerprint()
        )
        print(f"decisions identical (cold == warm == parallel): {identical}")

        # 4. The paper-style readout still works on orchestrated runs.
        print("\nspeedups over the Baseline:")
        print(cold.speedup_table())


if __name__ == "__main__":
    main()
