"""Dead-link check over the repository documentation.

Walks ``README.md`` and every Markdown file under ``docs/`` and fails on any
relative link whose target does not exist (anchors and external URLs are out
of scope).  Running inside the tier-1 suite keeps the docs build-out honest:
a renamed doc or a stale cross-reference breaks the build, not a reader.
CI additionally runs this file as an explicit docs-link-check step.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Inline Markdown links: [text](target).  Reference-style links are not
#: used in this repo's docs.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            files.append(os.path.join(docs_dir, name))
    return [path for path in files if os.path.exists(path)]


def _relative_links(path):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    # Strip fenced code blocks: link-like text inside them is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for target in LINK_PATTERN.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


def test_readme_and_docs_exist():
    assert os.path.exists(os.path.join(REPO_ROOT, "README.md"))
    for name in ("index.md", "architecture.md", "search.md", "costing.md", "verification.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", name)), name


@pytest.mark.parametrize("path", _markdown_files(), ids=lambda p: os.path.relpath(p, REPO_ROOT))
def test_no_dead_relative_links(path):
    broken = []
    base = os.path.dirname(path)
    for target in _relative_links(path):
        resolved = os.path.normpath(os.path.join(base, target.split("#", 1)[0]))
        if not os.path.exists(resolved):
            broken.append(target)
    assert not broken, (
        f"{os.path.relpath(path, REPO_ROOT)} has dead relative link(s): {broken}"
    )
