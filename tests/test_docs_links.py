"""Dead-link and dead-anchor check over the repository documentation.

Walks ``README.md`` and every Markdown file under ``docs/`` and fails on:

* any relative link whose target file does not exist;
* any ``#fragment`` — intra-doc (``#section``) or cross-doc
  (``other.md#section``) — that does not match a heading anchor of the
  target, using GitHub's heading→anchor slug rules.

External URLs are out of scope.  Running inside the tier-1 suite keeps the
docs build-out honest: a renamed doc, a reworded heading, or a stale
cross-reference breaks the build, not a reader.  CI additionally runs this
file as an explicit docs-link-check step.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Inline Markdown links: [text](target).  Reference-style links are not
#: used in this repo's docs.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: ATX headings (``#`` .. ``######``), the only heading style used here.
HEADING_PATTERN = re.compile(r"^(#{1,6})\s+(.+?)\s*$", re.MULTILINE)

#: Every doc page the index must reach (kept in sync with docs/index.md).
REQUIRED_DOCS = (
    "index.md",
    "architecture.md",
    "search.md",
    "costing.md",
    "verification.md",
    "experiments.md",
    "service.md",
    "resilience.md",
)


def _markdown_files():
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            files.append(os.path.join(docs_dir, name))
    return [path for path in files if os.path.exists(path)]


def _prose(path):
    """File content with fenced code blocks stripped (their text is not
    Markdown: link-like or heading-like lines inside them do not count)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def _relative_links(path):
    """Yield every relative link target (possibly carrying a #fragment)."""
    for target in LINK_PATTERN.findall(_prose(path)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


def _github_slug(heading):
    """GitHub's heading→anchor slug: the id ``#fragment`` links resolve to."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps its text
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links keep their text
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)  # punctuation is dropped
    return text.replace(" ", "-")


def _anchors(path):
    """All heading anchors of one file, with GitHub's -1/-2 dedup suffixes."""
    anchors = set()
    seen = {}
    for _hashes, heading in HEADING_PATTERN.findall(_prose(path)):
        slug = _github_slug(heading)
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def test_readme_and_docs_exist():
    assert os.path.exists(os.path.join(REPO_ROOT, "README.md"))
    for name in REQUIRED_DOCS:
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", name)), name


def test_index_reaches_every_doc_page():
    """Every page under docs/ is linked (directly) from docs/index.md."""
    index = os.path.join(REPO_ROOT, "docs", "index.md")
    linked = {target.split("#", 1)[0] for target in _relative_links(index)}
    for name in sorted(os.listdir(os.path.join(REPO_ROOT, "docs"))):
        if name.endswith(".md") and name != "index.md":
            assert name in linked, f"docs/index.md does not link docs/{name}"


@pytest.mark.parametrize("path", _markdown_files(), ids=lambda p: os.path.relpath(p, REPO_ROOT))
def test_no_dead_relative_links(path):
    broken = []
    base = os.path.dirname(path)
    for target in _relative_links(path):
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue  # intra-doc anchors are checked below
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            broken.append(target)
    assert not broken, (
        f"{os.path.relpath(path, REPO_ROOT)} has dead relative link(s): {broken}"
    )


@pytest.mark.parametrize("path", _markdown_files(), ids=lambda p: os.path.relpath(p, REPO_ROOT))
def test_no_dead_anchor_fragments(path):
    broken = []
    base = os.path.dirname(path)
    for target in _relative_links(path):
        if "#" not in target:
            continue
        file_part, fragment = target.split("#", 1)
        resolved = path if not file_part else os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved) or not resolved.endswith(".md"):
            continue  # dead files are reported by the link test above
        if fragment not in _anchors(resolved):
            broken.append(target)
    assert not broken, (
        f"{os.path.relpath(path, REPO_ROOT)} links to missing heading anchor(s): "
        f"{broken}"
    )
