"""Concurrent experiment orchestration: backend identity, sharing, plumbing.

The contract under test is the one ``docs/experiments.md`` documents: the
experiment scheduler changes *where* a (workload × optimizer) cell runs,
never what it reports.  ``ExperimentHarness.run`` must produce bit-identical
results on every backend at any worker count — and with a warm-started
persisted cache — while the shared :class:`CostService` reaps cross-cell
signature hits that ``OptimizerRun.cross_unit_hits`` accounts for exactly.
"""

import pytest

from repro.cluster import ClusterSpec
from repro.core.parallel import SerialBackend, ThreadBackend
from repro.experiments import (
    EXPERIMENT_BACKEND_ENV_VAR,
    ExperimentHarness,
    ExperimentScheduler,
    build_cells,
    cell_seed,
    resolve_experiment_backend,
)

#: A small grid that still exercises cross-cell sharing (three optimizer
#: variants of one workload overlap heavily in job signatures).
WORKLOADS = ("PJ",)
OPTIMIZERS = ("Baseline", "Stubby", "Vertical")

#: The backend sweep of the identity property test.
BACKEND_SPECS = ("serial", "thread:1", "thread:2", "thread:4", "process:2", "process:4")


def _fresh_harness(**kwargs):
    return ExperimentHarness(cluster=ClusterSpec.paper_cluster(), scale=0.12, **kwargs)


def _run(backend, **harness_kwargs):
    harness = _fresh_harness(**harness_kwargs)
    return harness.run(workloads=WORKLOADS, optimizers=OPTIMIZERS, backend=backend)


@pytest.fixture(scope="module")
def serial_result():
    return _run("serial")


class TestBackendIdentity:
    """run() results are bit-identical on every backend, at any worker count."""

    @pytest.mark.parametrize("spec", BACKEND_SPECS[1:])
    def test_identical_to_serial(self, spec, serial_result):
        result = _run(spec)
        assert result.decision_fingerprint() == serial_result.decision_fingerprint(), (
            f"experiment backend {spec} diverged from serial"
        )
        assert result.backend == spec

    def test_all_cells_equivalent_and_ordered(self, serial_result):
        assert tuple(serial_result.comparisons) == WORKLOADS
        for comparison in serial_result.comparisons.values():
            assert tuple(comparison.runs) == OPTIMIZERS
            assert all(run.output_equivalent for run in comparison.runs.values())

    def test_query_totals_identical_across_backends(self, serial_result):
        # Interleaving may move cache hits between cells, but every query is
        # issued (and counted) exactly once wherever a cell runs.
        for spec in ("thread:2", "process:2"):
            result = _run(spec)
            assert result.cost_stats.queries == serial_result.cost_stats.queries, spec
            assert result.cost_stats.job_queries == serial_result.cost_stats.job_queries, spec

    def test_repeated_runs_on_one_harness_are_identical(self):
        harness = _fresh_harness()
        first = harness.run(workloads=WORKLOADS, optimizers=OPTIMIZERS)
        second = harness.run(workloads=WORKLOADS, optimizers=OPTIMIZERS)
        # The second run reuses the first run's (in-memory) warm cache; the
        # exactness contract makes that invisible in the results.
        assert second.decision_fingerprint() == first.decision_fingerprint()
        assert second.cost_stats.cache_hit_rate > first.cost_stats.cache_hit_rate
        # In-memory warmth is reported honestly: no disk was involved, but
        # the second run's cells did not start cold.
        assert first.warm_start_entries == 0 and second.warm_start_entries == 0
        assert first.cache_entries_at_start == 0
        assert second.cache_entries_at_start > 0

    def test_nested_search_backend_keeps_identity_and_attribution(self, serial_result):
        # Experiment-level and search-level backends nest; the inner search
        # workers must inherit the cell's origin label, or same-cell reuse
        # would masquerade as cross_unit_hits.  A single worker thread keeps
        # execution sequential (so per-cell stats are exactly comparable)
        # while still running every chunk off the cell's own thread — the
        # path that loses the thread-local label without propagation.
        harness = _fresh_harness(search_backend="thread:1")
        result = harness.run(workloads=WORKLOADS, optimizers=OPTIMIZERS)
        assert result.decision_fingerprint() == serial_result.decision_fingerprint()
        assert result.comparisons["PJ"].runs["Baseline"].cross_unit_hits == 0
        # The nested run attributes exactly the same cross-cell reuse as the
        # serial reference (placement-independent by the origin contract).
        serial_runs = serial_result.comparisons["PJ"].runs
        for name in OPTIMIZERS:
            assert (
                result.comparisons["PJ"].runs[name].cross_unit_hits
                == serial_runs[name].cross_unit_hits
            ), name


class TestCrossCellSharing:
    """Cells of one run share the service; the reuse is attributed exactly."""

    def test_cross_unit_hits_surface_on_optimizer_runs(self, serial_result):
        runs = serial_result.comparisons["PJ"].runs
        # The first cell can only hit entries it stored itself.
        assert runs["Baseline"].cross_unit_hits == 0
        # Later variants re-cost the same annotated plan: they must reap
        # signature hits from their neighbours.
        assert runs["Stubby"].cross_unit_hits > 0
        assert runs["Vertical"].cross_unit_hits > 0
        assert serial_result.cross_unit_hits == sum(r.cross_unit_hits for r in runs.values())

    @pytest.mark.parametrize("spec", ["serial", "process:2"])
    def test_per_cell_sinks_sum_to_run_totals(self, spec):
        result = _run(spec)
        runs = [
            run
            for comparison in result.comparisons.values()
            for run in comparison.runs.values()
        ]
        assert all(run.cost_stats is not None for run in runs)
        assert sum(run.cost_stats.queries for run in runs) == result.cost_stats.queries
        assert sum(run.cost_stats.job_queries for run in runs) == result.cost_stats.job_queries
        for run in runs:
            stats = run.cost_stats
            assert (
                stats.job_cache_hits + stats.job_dataflow_hits + stats.job_full_recosts
                == stats.job_queries
            )
            assert run.whatif_queries == stats.queries
            assert run.cross_unit_hits == stats.cross_origin_hits


class TestWarmStart:
    """A persisted cache warm-starts the next run without changing it."""

    def test_warm_run_identical_with_higher_hit_rate(self, tmp_path, serial_result):
        path = str(tmp_path / "costs.cache")
        cold = _run("serial", cache_path=path)
        assert cold.warm_start_entries == 0
        assert cold.cache_path == path

        warm = _run("serial", cache_path=path)
        assert warm.warm_start_entries > 0
        assert warm.decision_fingerprint() == cold.decision_fingerprint()
        assert warm.cost_stats.cache_hit_rate > cold.cost_stats.cache_hit_rate
        # Warm-started entries come from a previous run's cells: even the
        # first cell now sees cross-origin hits.
        assert warm.comparisons["PJ"].runs["Baseline"].cross_unit_hits > 0
        # And the cache never changes results relative to a no-cache run.
        assert cold.decision_fingerprint() == serial_result.decision_fingerprint()

    def test_persist_false_leaves_no_file(self, tmp_path):
        path = str(tmp_path / "unused.cache")
        harness = _fresh_harness(cache_path=path)
        harness.run(workloads=WORKLOADS, optimizers=("Baseline",), persist=False)
        assert not (tmp_path / "unused.cache").exists()
        # persist_cache() writes it on demand.
        assert harness.persist_cache() > 0
        assert (tmp_path / "unused.cache").exists()

    def test_persist_cache_without_path_is_a_noop(self):
        assert _fresh_harness().persist_cache() == 0


class TestSchedulerPlumbing:
    def test_resolve_backend_env_and_passthrough(self, monkeypatch):
        backend = ThreadBackend(workers=2)
        assert resolve_experiment_backend(backend) is backend
        monkeypatch.delenv(EXPERIMENT_BACKEND_ENV_VAR, raising=False)
        assert isinstance(resolve_experiment_backend(None), SerialBackend)
        monkeypatch.setenv(EXPERIMENT_BACKEND_ENV_VAR, "thread:3")
        resolved = resolve_experiment_backend(None)
        assert isinstance(resolved, ThreadBackend)
        assert resolved.workers == 3
        with pytest.raises(TypeError):
            resolve_experiment_backend(3.14)
        with pytest.raises(ValueError):
            resolve_experiment_backend("warp:9")

    def test_cells_are_deterministic(self):
        cells = build_cells(("PJ", "BR"), ("Baseline", "Stubby"), base_seed=42)
        assert [cell.label for cell in cells] == [
            "PJ/Baseline",
            "PJ/Stubby",
            "BR/Baseline",
            "BR/Stubby",
        ]
        assert [cell.index for cell in cells] == [0, 1, 2, 3]
        # Seeds derive from the cell key alone: stable across calls and
        # independent of grid position.
        again = build_cells(("BR",), ("Stubby",), base_seed=42)
        assert again[0].seed == cells[3].seed
        assert cells[1].seed == cell_seed(42, "PJ", "Stubby")
        assert cells[1].seed != cells[3].seed

    def test_map_cells_preserves_cell_order(self):
        scheduler = ExperimentScheduler("thread:2")
        cells = build_cells(("PJ", "BR", "IR"), ("A", "B"), base_seed=1)
        labels = scheduler.map_cells(cells, lambda cell: cell.label)
        assert labels == [cell.label for cell in cells]

    def test_env_var_drives_harness_run(self, monkeypatch):
        monkeypatch.setenv(EXPERIMENT_BACKEND_ENV_VAR, "thread:2")
        result = _fresh_harness().run(workloads=WORKLOADS, optimizers=("Baseline",))
        assert result.backend == "thread:2"
